"""Fine-tune BERT on a GLUE-style task with Cuttlefish-factorized attention.

Reproduces the paper's GLUE setup (§C.2) at reduced scale: the attention
projections of every encoder block are factorized after one warm-up epoch
(E = 1, the paper's choice for short fine-tuning runs), the feed-forward
layers are frozen (LoRA-style), and the compressed model is compared against
ordinary full fine-tuning.

Run with:  python examples/glue_finetune.py [task]     (default: sst2)
"""

import sys

import numpy as np

from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_text_task
from repro.models import BertForSequenceClassification, bert_micro
from repro.optim import AdamW
from repro.tensor import functional as F, no_grad
from repro.train import Trainer, classification_metric
from repro.utils import seed_everything


def forward(model, batch):
    tokens, mask = batch[0], batch[1].astype(bool)
    return model(tokens, attn_mask=mask)


def loss_fn(model, batch):
    return F.cross_entropy(forward(model, batch), batch[-1])


def evaluate(model, loader, metric):
    logits, labels = [], []
    model.eval()
    with no_grad():
        for batch in loader:
            logits.append(forward(model, batch).data)
            labels.append(batch[-1])
    return classification_metric(metric, np.concatenate(logits), np.concatenate(labels))


def main(task: str = "sst2"):
    seed_everything(0)
    epochs = 3
    train_ds, val_ds, spec = make_text_task(task)
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=64)

    # --- full fine-tuning baseline -------------------------------------------------
    teacher = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
    trainer = Trainer(teacher, AdamW(teacher.parameters(), lr=5e-4, weight_decay=0.0),
                      train_loader, loss_fn=loss_fn, forward_fn=forward)
    trainer.fit(epochs)
    full_score = evaluate(teacher, val_loader, spec.metric)

    # --- Cuttlefish-factorized fine-tuning -----------------------------------------
    seed_everything(0)
    model = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
    for path in model.feed_forward_paths():            # freeze FFN layers (§C.2)
        for param in model.get_submodule(path).parameters():
            param.requires_grad = False
    config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                              profile_mode="none", rank_ratio_override=0.5)
    trainer, manager = train_cuttlefish(
        model, AdamW([p for p in model.parameters() if p.requires_grad], lr=5e-4),
        train_loader, epochs=epochs, config=config, loss_fn=loss_fn, forward_fn=forward)
    cuttle_score = evaluate(model, val_loader, spec.metric)

    print(f"\nGLUE task: {task} (metric: {spec.metric})")
    print(f"{'model':24s} {'params':>10s} {'score':>8s}")
    print(f"{'BERT (full fine-tune)':24s} {teacher.num_parameters():10,d} {full_score:8.4f}")
    print(f"{'Cuttlefish BERT':24s} {model.num_parameters():10,d} {cuttle_score:8.4f}")
    print(f"factorized layers: {len(manager.report.factorized_paths)} "
          f"(compression {manager.report.compression_ratio:.2f}x)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sst2")
