"""BERT masked-language-model pre-training with Cuttlefish (Table 17 scenario).

Pre-trains a small BERT encoder on the synthetic MLM corpus twice — once
full-rank and once with Cuttlefish, which factorizes the attention and
feed-forward weights once their stable ranks converge (the paper's BERT_LARGE
experiment shrinks 345M parameters to 249M at the same MLM loss).

Transformer weights are far from low rank, so the paper's Appendix C.2 rule is
used: a global rank ratio ρ = 1/2 for every factorized layer, with layers whose
factorization would not reduce the parameter count left full rank.

Run with:  python examples/bert_mlm_pretraining.py
"""

import numpy as np

from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_mlm_corpus
from repro.models import BertForMaskedLM, bert_micro
from repro.optim import AdamW
from repro.tensor import functional as F, no_grad
from repro.train import Trainer, mlm_loss
from repro.utils import seed_everything

EPOCHS = 6


def masked_lm_loss(spec):
    """Cross-entropy over masked positions only (labels are -100 elsewhere)."""
    def loss_fn(model, batch):
        inputs, labels = batch
        logits = model(inputs)
        return F.cross_entropy(logits.reshape((-1, spec.vocab_size)), labels.reshape(-1),
                               ignore_index=-100)
    return loss_fn


def evaluate_mlm(model, val_ds):
    loader = DataLoader(val_ds, batch_size=64)
    model.eval()
    losses = []
    with no_grad():
        for inputs, labels in loader:
            losses.append(mlm_loss(model(inputs).data, labels))
    return float(np.mean(losses))


def pretrain(use_cuttlefish: bool):
    seed_everything(0)
    train_ds, val_ds, spec = make_mlm_corpus()
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
    model = BertForMaskedLM(bert_micro(vocab_size=spec.vocab_size, max_seq_len=spec.seq_len))
    optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.01)
    loss_fn = masked_lm_loss(spec)

    if use_cuttlefish:
        config = CuttlefishConfig(
            min_full_rank_epochs=1,
            max_full_rank_epochs=EPOCHS // 2,
            profile_mode="none",             # every encoder block has the same cost profile
            rank_ratio_override=0.5,         # Appendix C.2 transformer rule
        )
        trainer, manager = train_cuttlefish(
            model, optimizer, train_loader, epochs=EPOCHS, config=config,
            loss_fn=loss_fn, forward_fn=lambda m, b: m(b[0]))
        report = manager.report
        print(f"  switch epoch Ê = {report.switch_epoch}, "
              f"factorized {len(report.factorized_paths)} layers, "
              f"{report.compression_ratio:.2f}x smaller")
    else:
        trainer = Trainer(model, optimizer, train_loader, loss_fn=loss_fn)
        trainer.fit(EPOCHS)

    return model.num_parameters(), evaluate_mlm(model, val_ds)


def main():
    print("vanilla BERT pre-training …")
    vanilla_params, vanilla_loss = pretrain(use_cuttlefish=False)
    print("Cuttlefish BERT pre-training …")
    cuttle_params, cuttle_loss = pretrain(use_cuttlefish=True)

    print("\n--- Table 17 scenario (synthetic corpus) ---")
    print(f"{'model':>22} {'params':>10} {'val MLM loss':>14}")
    print(f"{'vanilla BERT':>22} {vanilla_params:>10d} {vanilla_loss:>14.4f}")
    print(f"{'Cuttlefish BERT':>22} {cuttle_params:>10d} {cuttle_loss:>14.4f}")
    print(f"\nCuttlefish keeps {100 * cuttle_params / vanilla_params:.1f}% of the parameters "
          f"at {cuttle_loss / vanilla_loss:.2f}x the vanilla MLM loss.")


if __name__ == "__main__":
    main()
