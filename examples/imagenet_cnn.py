"""ImageNet-style CNN training comparison (Table 2 scenario).

Runs ResNet-50 on the synthetic ImageNet stand-in with three methods —
full-rank training, Pufferfish (manually tuned E and a fixed global rank
ratio) and Cuttlefish — and prints the paper's Table 2 columns: parameters,
validation accuracy, and the end-to-end time projected onto a V100 roofline at
the paper's batch size.

The paper's finding reproduced here in shape: Cuttlefish lands at (or below)
Pufferfish's size with at least comparable accuracy, and both factorized
methods are projected faster end-to-end than full-rank training.

Run with:  python examples/imagenet_cnn.py
"""

from repro.baselines import PufferfishConfig
from repro.train.experiments import ExperimentSpec, VisionExperimentConfig, format_rows, run_experiment
from repro.utils import seed_everything

EPOCHS = 8


def main():
    seed_everything(0)
    config = VisionExperimentConfig(
        task="imagenet_small",
        model="resnet50",
        width_mult=0.0625,            # reduced width for the CPU budget
        epochs=EPOCHS,
        batch_size=32,
        peak_lr=0.25,
        warmup_epochs=1,
        weight_decay=3e-3,
        label_smoothing=0.1,
        paper_batch_size=256,         # the Table 2 setting used for time projection
        paper_steps_per_epoch=5005,
    )

    rows = [
        run_experiment(ExperimentSpec(method="full_rank", config=config)),
        run_experiment(ExperimentSpec(
            method="pufferfish", config=config,
            method_kwargs=dict(pufferfish_config=PufferfishConfig(full_rank_epochs=EPOCHS // 4,
                                                                  rank_ratio=0.25)))),
        run_experiment(ExperimentSpec(method="cuttlefish", config=config)),
    ]

    print("\n--- Table 2 scenario (ResNet-50 on the ImageNet stand-in) ---")
    print(format_rows(rows))
    full, pufferfish, cuttlefish = rows
    print(f"\nCuttlefish: {100 * cuttlefish.params_fraction:.1f}% of the parameters, "
          f"accuracy {cuttlefish.val_accuracy:.3f} vs full-rank {full.val_accuracy:.3f}, "
          f"projected {cuttlefish.speedup_vs_full_rank:.2f}x end-to-end speedup "
          f"(Ê = {cuttlefish.extra['switch_epoch']:.0f}, K̂ = {cuttlefish.extra['k_hat']:.0f}).")


if __name__ == "__main__":
    main()
