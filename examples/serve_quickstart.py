"""Serving quickstart: train → factorize → export → serve → query.

The end-to-end deployment path the paper's compression argument pays off on:

1. train a small ResNet briefly (full-rank),
2. factorize its large-spatial stacks Cuttlefish-style (truncated SVD at the
   selected ranks),
3. export a versioned serving artifact — the low-rank factors stay
   factorized, so the artifact is smaller and the served FLOP path is the
   compressed one,
4. boot the micro-batching HTTP server on an ephemeral port,
5. fire concurrent single-sample requests and read back ``/metrics``.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

import os
import tempfile
import threading

import numpy as np

from repro.core import factorize_model, full_rank_of
from repro.data import DataLoader, make_vision_task
from repro.models import build_model
from repro.optim import SGD
from repro.serve import (
    BatchingPolicy,
    ModelServer,
    ServeClient,
    artifact_size_bytes,
    export_artifact,
)
from repro.train.trainer import Trainer
from repro.utils import get_rng, seed_everything


def main():
    seed_everything(0)

    # 1. A quick full-rank training run on the synthetic CIFAR stand-in.
    #    The 32x32 task keeps the conv GEMMs in the geometry regime where the
    #    serving path is bit-reproducible across batch compositions (see
    #    DESIGN.md §9.3); the batch-invariance self-check below verifies it.
    train_ds, val_ds, spec = make_vision_task("cifar10")
    model = build_model("resnet18", num_classes=spec.num_classes, width_mult=0.125)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                      DataLoader(train_ds, batch_size=32, shuffle=True),
                      DataLoader(val_ds, batch_size=32),
                      max_batches_per_epoch=40)
    trainer.fit(epochs=1)
    accuracy = float(trainer.evaluate().get("accuracy", 0.0))
    print(f"trained: val_accuracy={accuracy:.3f}")

    # 2. Factorize the large-spatial stacks at rank ~1/4 (the regime where
    #    serving stays bit-reproducible across batch compositions).
    paths = [p for p in model.factorization_candidates()
             if p.startswith(("layer1.", "layer2.", "layer3."))]
    ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 4) for p in paths}
    factorized = factorize_model(model, ranks, skip_non_reducing=False)
    model.eval()
    print(f"factorized {len(factorized)} layers; params now {model.num_parameters():,}")

    # 3. Export the artifact (factors stay factorized; invariance self-check).
    shape = (3, spec.image_size, spec.image_size)
    example = get_rng(offset=42).standard_normal((8,) + shape).astype(np.float32)
    artifact = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "resnet_lowrank.npz")
    manifest = export_artifact(
        artifact, model,
        model_spec={"name": "resnet18",
                    "kwargs": {"num_classes": spec.num_classes, "width_mult": 0.125}},
        input_shape=shape,
        metadata={"val_accuracy": accuracy},
        example_batch=example,
    )
    print(f"exported {artifact} ({artifact_size_bytes(artifact):,} bytes, "
          f"batch_invariant={manifest['batch_invariant']})")

    # 4 + 5. Serve it and hit it with concurrent single-sample requests.
    policy = BatchingPolicy(max_batch_size=16, max_wait_ms=3.0)
    with ModelServer(artifact, policy=policy, port=0) as server:
        print(f"serving on {server.url}")
        client = ServeClient(server.url)
        print("healthz:", client.healthz())

        queries = get_rng(offset=7).standard_normal((24,) + shape).astype(np.float32)
        predictions = [None] * len(queries)

        def ask(i):
            predictions[i] = int(np.argmax(ServeClient(server.url).predict_one(queries[i])))

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(len(queries))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print("predicted classes:", predictions)

        metrics = client.metrics()
        engine = metrics["engine"]
        print(f"served {engine['samples_total']} samples in {engine['batches_total']} batches "
              f"(mean batch {engine['mean_batch_size']:.1f}); "
              f"p50={metrics['e2e_latency_ms']['p50']:.1f}ms "
              f"p99={metrics['e2e_latency_ms']['p99']:.1f}ms")


if __name__ == "__main__":
    main()
