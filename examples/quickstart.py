"""Quickstart: automated low-rank training with Cuttlefish in ~30 lines.

Trains a small ResNet-18 on the synthetic CIFAR-10 stand-in.  The only thing
the caller provides is what full-rank training would need (model, optimizer,
data, epoch count); Cuttlefish chooses the warm-up length Ê, the layers to
factorize (K̂, via profiling on a GPU roofline model) and the per-layer ranks
R on the fly.

Run with:  python examples/quickstart.py
"""

from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD, build_paper_cifar_schedule
from repro.utils import seed_everything


def main():
    seed_everything(0)
    epochs = 12

    # 1. Data: a synthetic stand-in for CIFAR-10 (offline environment).
    train_ds, val_ds, spec = make_vision_task("cifar10_small")
    train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=128)

    # 2. Model + optimizer, exactly as for full-rank training.
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    scheduler = build_paper_cifar_schedule(optimizer, epochs, peak_lr=0.2, start_lr=0.05)

    # 3. Train with Cuttlefish — no factorization hyper-parameters to tune.
    config = CuttlefishConfig(
        min_full_rank_epochs=3,
        max_full_rank_epochs=epochs // 2,   # safety net for this very short demo run
        profile_mode="roofline",            # Algorithm 2 on a V100 roofline model
        profile_batch_scale=256.0,          # evaluate the cost model at batch ≈1024
    )
    trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                        epochs=epochs, config=config, verbose=True)

    # 4. Inspect what Cuttlefish selected.
    report = manager.report
    print("\n--- Cuttlefish report ---")
    print(f"full-rank warm-up epochs Ê : {report.switch_epoch}")
    print(f"layers kept full-rank K̂   : {report.k_hat}")
    print(f"factorized layers          : {len(report.factorized_paths)}")
    print(f"parameters                 : {report.params_before:,} → {report.params_after:,} "
          f"({report.compression_ratio:.2f}x smaller)")
    print(f"final validation accuracy  : {trainer.final_val_accuracy():.4f}")


if __name__ == "__main__":
    main()
