"""Streaming data pipeline: vectorized loading, prefetch, deterministic bits.

Demonstrates the three properties the pipeline subsystem adds:

1. **Speed** — the vectorized ``PipelineLoader`` materialises whole batches
   by fancy indexing + batch-level transforms, several times faster than the
   per-sample legacy ``DataLoader``;
2. **Determinism** — augmentation randomness is counter-based, keyed on
   ``(root_seed, epoch, sample_id)``, so a sample's augmented pixels do not
   depend on batch size, iteration order, prefetch depth or worker count;
3. **Overlap** — ``PrefetchingLoader`` materialises upcoming batches on
   producer threads while the model computes, and the ``Trainer`` reports
   how much of each epoch was data stall vs step compute.

Run with:  python examples/data_pipeline.py
"""

import time

import numpy as np

from repro.data import DataLoader, PipelineLoader, PrefetchingLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD
from repro.train.trainer import Trainer
from repro.utils import seed_everything


def main():
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task("cifar10_small")

    # 1. Loader-only throughput: legacy vs vectorized.
    def drain(loader, epochs=3):
        samples = 0
        start = time.perf_counter()
        for epoch in range(epochs):
            loader.set_epoch(epoch)
            for batch in loader:
                samples += len(batch[0])
        return samples / (time.perf_counter() - start)

    legacy = drain(DataLoader(train_ds, batch_size=64, shuffle=True))
    vectorized = drain(PipelineLoader(train_ds, batch_size=64, shuffle=True))
    print(f"loader samples/sec   legacy={legacy:8.0f}  vectorized={vectorized:8.0f} "
          f"({vectorized / legacy:.2f}x)")

    # 2. Determinism: the same sample gets the same augmentation bits no
    #    matter how it is batched or prefetched.
    sync = PipelineLoader(train_ds, batch_size=64, shuffle=True)
    sync.set_epoch(1)
    reference = list(sync)
    prefetched = PrefetchingLoader(PipelineLoader(train_ds, batch_size=64, shuffle=True),
                                   depth=2, workers=2)
    prefetched.set_epoch(1)
    for expected, got in zip(reference, prefetched):
        np.testing.assert_array_equal(expected[0], got[0])
    print("prefetched batches are bit-identical to the synchronous loader")

    # 3. A short training run with prefetch + the stall/compute split.
    model = resnet18(num_classes=spec.num_classes, width_mult=0.125)
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    train_loader = PrefetchingLoader(PipelineLoader(train_ds, batch_size=64, shuffle=True),
                                     depth=2)
    val_loader = PipelineLoader(val_ds, batch_size=128)
    trainer = Trainer(model, optimizer, train_loader, val_loader)
    trainer.fit(epochs=2)
    print(f"trained 2 epochs: val_acc={trainer.final_val_accuracy():.4f}")
    print(f"pipeline: {trainer.pipeline_stats.describe()}")


if __name__ == "__main__":
    main()
