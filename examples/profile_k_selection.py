"""Algorithm 2 in isolation: which layer stacks are worth factorizing? (Figure 4)

Evaluates Cuttlefish's profiling step on paper-scale ResNet-18 and VGG-19
under the roofline model of several devices.  The point the paper makes in
Section 3.5: the early convolution stacks have low arithmetic intensity, so
factorizing them barely helps — Cuttlefish therefore keeps them full rank
(K̂ > 1), and only the deeper, compute-bound stacks are factorized.

No training happens here; the script finishes in a few seconds.

Run with:  python examples/profile_k_selection.py
"""

import numpy as np

from repro.core import profile_layer_stacks
from repro.models import resnet18, vgg19
from repro.profiling import A100, T4, V100
from repro.utils import get_rng, seed_everything

PAPER_BATCH = 1024          # the CIFAR batch size used in the paper's Figure 4
PROBE_BATCH = 2


def profile(model_name: str, device):
    seed_everything(0)
    if model_name == "resnet18":
        model = resnet18(num_classes=10, width_mult=1.0, small_input=True)
    else:
        model = vgg19(num_classes=10, width_mult=1.0)
    probe = get_rng(offset=1).standard_normal((PROBE_BATCH, 3, 32, 32)).astype(np.float32)
    labels = np.zeros(PROBE_BATCH, dtype=np.int64)
    return profile_layer_stacks(
        model, model.layer_stack_paths(), (probe, labels),
        rank_ratio=0.25,                      # the paper's probe ratio ρ̄
        speedup_threshold=1.5,                # υ
        mode="roofline",
        device=device,
        batch_scale=PAPER_BATCH / PROBE_BATCH,
    )


def main():
    for model_name in ("resnet18", "vgg19"):
        print(f"\n=== {model_name} (batch {PAPER_BATCH}, rank ratio 1/4) ===")
        for device in (V100, T4, A100):
            result = profile(model_name, device)
            speedups = "  ".join(f"{name}:{speedup:4.1f}x"
                                 for name, speedup in result.speedup_table().items())
            decision = ", ".join(result.factorize_stacks) or "none"
            print(f"{device.name:>5}:  {speedups}   →  factorize [{decision}]  (K̂ = {result.k_hat})")
        print("Early stacks stay full rank: their arithmetic intensity is too low for the")
        print("FLOP reduction to translate into wall-clock savings (Section 3.5).")


if __name__ == "__main__":
    main()
