"""Reproduce a miniature version of the paper's Table 1 comparison.

Runs full-rank training, Pufferfish (manually tuned E/K/ρ), SI&FD (spectral
initialisation + Frobenius decay, trained factorized from scratch) and
Cuttlefish on the synthetic CIFAR-10 stand-in and prints a comparison table:
parameters, accuracy, measured CPU time, and the end-to-end GPU time projected
by the roofline model at the paper's batch size.

Run with:  python examples/compare_baselines.py
"""

from repro.train.experiments import ExperimentSpec, VisionExperimentConfig, format_rows, run_experiment


def main():
    config = VisionExperimentConfig(
        task="cifar10_small",
        model="resnet18",
        width_mult=0.25,
        epochs=10,
        batch_size=64,
        peak_lr=0.2,
        weight_decay=5e-4,
    )

    methods = ["full_rank", "pufferfish", "si_fd", "cuttlefish"]
    rows = []
    for method in methods:
        print(f"running {method} ...")
        rows.append(run_experiment(ExperimentSpec(method=method, config=config)))

    print("\nMiniature Table 1 (synthetic CIFAR-10 stand-in, ResNet-18 at 1/4 width):")
    print(format_rows(rows))
    print(
        "\nReading guide: the factorized methods should be several times smaller than\n"
        "full-rank with comparable accuracy; 'proj_gpu_h' projects the end-to-end time\n"
        "at the paper's scale, where Cuttlefish and Pufferfish beat full-rank training."
    )


if __name__ == "__main__":
    main()
