"""Visualise the phenomenon Cuttlefish is built on: stable ranks stabilise early.

Trains a small ResNet-18 while tracking every candidate layer's stable rank
and prints (i) a per-epoch text plot of three representative layers and
(ii) the epoch at which the ε-stabilisation rule would switch to low-rank
training — the paper's Figure 2 as a terminal plot.

Run with:  python examples/rank_dynamics.py
"""

from repro.core import RankTracker
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD, build_paper_cifar_schedule
from repro.train import Trainer
from repro.utils import seed_everything


def sparkline(values, width=40, vmax=1.0):
    """Render a sequence of ratios in [0, vmax] as a row of block characters."""
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(blocks[min(int(v / vmax * (len(blocks) - 1)), len(blocks) - 1)] for v in values)


def main():
    seed_everything(0)
    epochs = 12
    train_ds, _, spec = make_vision_task("cifar10_small")
    loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    scheduler = build_paper_cifar_schedule(optimizer, epochs, 0.2, start_lr=0.05)
    tracker = RankTracker(model, model.factorization_candidates(), epsilon=0.1)
    trainer = Trainer(model, optimizer, loader, scheduler=scheduler)

    stabilised_at = None
    for epoch in range(epochs):
        trainer.fit(1)
        tracker.update(model)
        if stabilised_at is None and tracker.has_converged():
            stabilised_at = epoch + 1

    print(f"stable-rank ratio trajectories over {epochs} epochs "
          f"(each column = one epoch, higher block = higher rank ratio)\n")
    paths = tracker.candidate_paths
    for path in (paths[0], paths[len(paths) // 2], paths[-1]):
        history = tracker.histories[path]
        print(f"{path:24s} |{sparkline(history.rank_ratios)}|  "
              f"{history.rank_ratios[0]:.2f} → {history.rank_ratios[-1]:.2f}")
    print(f"\nall layers stabilised (|dϱ/dt| ≤ ε) at epoch: {stabilised_at}")
    print("this is the epoch Ê at which Cuttlefish would switch to low-rank training.")


if __name__ == "__main__":
    main()
