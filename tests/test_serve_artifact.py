"""Serving artifacts (repro.serve.artifact): versioned export/load, factorized
round-trips, fusion state, validation errors, and batch canonicalization."""

import json

import numpy as np
import pytest

from repro import nn
from repro.core import (
    factorize_model,
    full_rank_of,
    materialize_low_rank,
    merge_factorized,
)
from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear, is_low_rank
from repro.models import build_model
from repro.serve import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    Predictor,
    artifact_size_bytes,
    check_batch_invariance,
    export_artifact,
    load_artifact,
    read_manifest,
)
from repro.tensor import no_grad
from repro.utils import get_rng, seed_everything

MLP_SPEC = {"name": "mlp",
            "kwargs": {"in_features": 24, "hidden_sizes": [48, 48], "num_classes": 6}}
RESNET_SPEC = {"name": "resnet18", "kwargs": {"num_classes": 10, "width_mult": 0.125}}


def _mlp():
    seed_everything(11)
    model = build_model(**{"name": MLP_SPEC["name"]}, **MLP_SPEC["kwargs"])
    model.eval()
    return model


def _resnet(factorize_prefixes=None, rank_divisor=4):
    seed_everything(3)
    model = build_model(RESNET_SPEC["name"], **RESNET_SPEC["kwargs"])
    if factorize_prefixes:
        paths = [p for p in model.factorization_candidates()
                 if p.startswith(tuple(factorize_prefixes))]
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // rank_divisor)
                 for p in paths}
        factorize_model(model, ranks, skip_non_reducing=False)
    model.eval()
    return model


class TestDenseRoundtrip:
    def test_outputs_bit_identical_after_reload(self, tmp_path):
        model = _mlp()
        x = get_rng(offset=5).standard_normal((8, 24)).astype(np.float32)
        path = str(tmp_path / "mlp.npz")
        export_artifact(path, model, model_spec=MLP_SPEC, input_shape=(24,))
        predictor = load_artifact(path)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(predictor(x), direct)

    def test_manifest_describes_the_model(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "mlp.npz")
        manifest = export_artifact(path, model, model_spec=MLP_SPEC, input_shape=(24,),
                                   metadata={"val_accuracy": 0.91})
        assert manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert manifest["num_parameters"] == model.num_parameters()
        assert manifest["ranks"] == {}
        assert manifest["metadata"]["val_accuracy"] == 0.91
        on_disk = read_manifest(path)
        assert on_disk["state_keys"] == manifest["state_keys"]

    def test_load_into_supplied_skeleton(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "mlp.npz")
        export_artifact(path, model)                 # no spec: needs a skeleton
        seed_everything(99)
        skeleton = build_model("mlp", **MLP_SPEC["kwargs"])
        predictor = load_artifact(path, model=skeleton)
        x = get_rng(offset=5).standard_normal((4, 24)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(predictor(x), direct)


class TestFactorizedRoundtrip:
    def test_low_rank_layers_stay_factorized(self, tmp_path):
        model = _resnet(factorize_prefixes=("layer1.", "layer2."))
        path = str(tmp_path / "fac.npz")
        manifest = export_artifact(path, model, model_spec=RESNET_SPEC,
                                   input_shape=(3, 32, 32))
        assert len(manifest["ranks"]) > 0
        predictor = load_artifact(path)
        reloaded_ranks = {p: int(m.rank) for p, m in predictor.model.named_modules()
                         if p and is_low_rank(m)}
        assert reloaded_ranks == {k: int(v) for k, v in manifest["ranks"].items()}
        assert predictor.model.num_parameters() == model.num_parameters()

    def test_factorized_outputs_bit_identical(self, tmp_path):
        model = _resnet(factorize_prefixes=("layer1.", "layer2.", "layer3."))
        x = get_rng(offset=9).standard_normal((8, 3, 32, 32)).astype(np.float32)
        path = str(tmp_path / "fac.npz")
        export_artifact(path, model, model_spec=RESNET_SPEC, input_shape=(3, 32, 32))
        predictor = load_artifact(path)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(predictor(x), direct)

    def test_factorized_artifact_smaller_than_dense_export(self, tmp_path):
        factorized = _resnet(factorize_prefixes=("layer1.", "layer2.", "layer3."))
        dense = _resnet()
        fac_path, dense_path = str(tmp_path / "fac.npz"), str(tmp_path / "dense.npz")
        export_artifact(fac_path, factorized, model_spec=RESNET_SPEC)
        export_artifact(dense_path, dense, model_spec=RESNET_SPEC)
        assert artifact_size_bytes(fac_path) < artifact_size_bytes(dense_path)
        assert factorized.num_parameters() < dense.num_parameters()

    def test_merged_dense_matches_factorized_closely(self, tmp_path):
        model = _resnet(factorize_prefixes=("layer1.", "layer2."))
        x = get_rng(offset=9).standard_normal((4, 3, 32, 32)).astype(np.float32)
        with no_grad():
            factorized_out = model(x).data
        merged = merge_factorized(model)
        model.eval()
        assert merged > 0
        assert not any(is_low_rank(m) for m in model.modules())
        with no_grad():
            dense_out = model(x).data
        np.testing.assert_allclose(dense_out, factorized_out, rtol=1e-4, atol=1e-5)


class TestMixedExtraBnRoundtrip:
    def test_per_layer_extra_bn_flags_survive_reload(self, tmp_path):
        seed_everything(3)
        model = build_model(RESNET_SPEC["name"], **RESNET_SPEC["kwargs"])
        candidates = model.factorization_candidates()
        plain_path, bn_path = candidates[0], candidates[1]
        factorize_model(model, {plain_path: 2}, extra_bn=False, skip_non_reducing=False)
        factorize_model(model, {bn_path: 2}, extra_bn=True, skip_non_reducing=False)
        model.eval()
        path = str(tmp_path / "mixed.npz")
        manifest = export_artifact(path, model, model_spec=RESNET_SPEC,
                                   input_shape=(3, 32, 32))
        assert manifest["extra_bn_paths"] == [bn_path]
        predictor = load_artifact(path)
        assert predictor.model.get_submodule(plain_path).bn is None
        assert predictor.model.get_submodule(bn_path).bn is not None
        x = get_rng(offset=9).standard_normal((4, 3, 32, 32)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(predictor(x), direct)


class TestFusionRoundtrip:
    def test_fused_activations_survive_reload(self, tmp_path):
        model = _mlp()
        x = get_rng(offset=7).standard_normal((8, 24)).astype(np.float32)
        fused = nn.fuse_linear_activations(model)
        assert fused > 0
        with no_grad():
            direct = model(x).data
        path = str(tmp_path / "fused.npz")
        manifest = export_artifact(path, model, model_spec=MLP_SPEC, input_shape=(24,))
        assert len(manifest["fused_activations"]) == fused
        predictor = load_artifact(path)
        reloaded = dict(nn.fused_activation_map(predictor.model))
        assert reloaded == manifest["fused_activations"]
        np.testing.assert_array_equal(predictor(x), direct)


class TestValidation:
    def test_not_an_artifact(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ArtifactError, match="manifest"):
            read_manifest(path)

    def test_version_mismatch_is_loud(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "old.npz")
        export_artifact(path, model, model_spec=MLP_SPEC)
        # Rewrite the embedded manifest with a bumped version.
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        manifest = json.loads(arrays["__artifact_manifest__"].tobytes().decode())
        manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        arrays["__artifact_manifest__"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(path)

    def test_no_spec_and_no_skeleton_is_actionable(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "nospec.npz")
        export_artifact(path, model)
        with pytest.raises(ArtifactError, match="model spec"):
            load_artifact(path)

    def test_mismatched_skeleton_is_loud(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "mlp.npz")
        export_artifact(path, model)
        wrong = build_model("mlp", in_features=24, hidden_sizes=[16], num_classes=6)
        with pytest.raises((ArtifactError, ValueError, KeyError)):
            load_artifact(path, model=wrong)

    def test_non_json_spec_rejected_at_export(self, tmp_path):
        model = _mlp()
        with pytest.raises(ArtifactError, match="model_spec"):
            export_artifact(str(tmp_path / "bad.npz"), model,
                            model_spec={"name": "mlp", "kwargs": {"rng": object()}})

    def test_non_json_metadata_rejected_at_export(self, tmp_path):
        model = _mlp()
        with pytest.raises(ArtifactError, match="metadata"):
            export_artifact(str(tmp_path / "bad.npz"), model, model_spec=MLP_SPEC,
                            metadata={"val_accuracy": np.float32(0.91)})

    def test_garbled_manifest_json_is_an_artifact_error(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "garbled.npz")
        export_artifact(path, model, model_spec=MLP_SPEC)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["__artifact_manifest__"] = np.frombuffer(b'{"truncated', dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ArtifactError, match="cannot read artifact"):
            read_manifest(path)

    def test_predictor_validates_input_shape(self, tmp_path):
        model = _mlp()
        path = str(tmp_path / "mlp.npz")
        export_artifact(path, model, model_spec=MLP_SPEC, input_shape=(24,))
        predictor = load_artifact(path)
        with pytest.raises(ValueError, match="shape"):
            predictor(np.zeros((2, 7), dtype=np.float32))


class TestBatchCanonicalization:
    def test_single_sample_matches_batch_rows(self):
        model = _mlp()
        predictor = Predictor(model)
        x = get_rng(offset=8).standard_normal((8, 24)).astype(np.float32)
        batch = predictor(x)
        singles = np.concatenate([predictor(x[i:i + 1]) for i in range(8)], axis=0)
        np.testing.assert_array_equal(singles, batch)

    def test_invariance_check_passes_for_resnet(self):
        predictor = Predictor(_resnet())
        x = get_rng(offset=8).standard_normal((16, 3, 32, 32)).astype(np.float32)
        assert check_batch_invariance(predictor, x, max_batch_size=16)

    def test_invariance_recorded_in_manifest(self, tmp_path):
        model = _mlp()
        x = get_rng(offset=8).standard_normal((8, 24)).astype(np.float32)
        manifest = export_artifact(str(tmp_path / "m.npz"), model, model_spec=MLP_SPEC,
                                   input_shape=(24,), example_batch=x)
        assert manifest["batch_invariant"] in (True, False)
        assert manifest["batch_invariance_checked_up_to"] == 8

    def test_canonicalize_false_gives_raw_forward(self):
        model = _mlp()
        raw = Predictor(model, canonicalize=False)
        x = get_rng(offset=8).standard_normal((3, 24)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(raw(x), direct)


class TestCuttlefishExportHook:
    def test_manager_export_stamps_selection_metadata(self, tmp_path):
        from repro.core import CuttlefishConfig, CuttlefishManager

        seed_everything(5)
        model = build_model("resnet18", num_classes=10, width_mult=0.125)
        manager = CuttlefishManager(
            model,
            config=CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                    profile_mode="none"),
        )
        # Plant genuine low-rank structure so the forced switch compresses.
        rng = get_rng(offset=31)
        for path in manager.candidate_paths:
            module = model.get_submodule(path)
            w = module.weight.data
            flat = w.reshape(w.shape[0], -1)
            u = rng.standard_normal((flat.shape[0], 2)).astype(np.float32)
            v = rng.standard_normal((2, flat.shape[1])).astype(np.float32)
            module.weight.data = (u @ v).reshape(w.shape)
        assert manager.observe_epoch(model, epoch=0)
        model.eval()

        path = str(tmp_path / "cuttlefish.npz")
        manifest = manager.export_artifact(path, model, model_spec=RESNET_SPEC,
                                           input_shape=(3, 32, 32),
                                           metadata={"note": "forced switch"})
        assert manifest["metadata"]["method"] == "cuttlefish"
        assert manifest["metadata"]["switch_epoch"] == manager.report.switch_epoch
        assert manifest["metadata"]["compression_ratio"] > 1.0
        assert manifest["metadata"]["note"] == "forced switch"
        assert manifest["ranks"]  # factors exported factorized

        predictor = load_artifact(path)
        x = get_rng(offset=13).standard_normal((4, 3, 32, 32)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        np.testing.assert_array_equal(predictor(x), direct)


class TestLowRankHooks:
    def test_linear_to_dense_preserves_function(self):
        layer = LowRankLinear(12, 8, rank=3)
        x = get_rng(offset=2).standard_normal((5, 12)).astype(np.float32)
        with no_grad():
            factorized = layer(x).data
        dense = layer.to_dense()
        assert isinstance(dense, nn.Linear)
        with no_grad():
            merged = dense(x).data
        np.testing.assert_allclose(merged, factorized, rtol=1e-5, atol=1e-6)

    def test_conv_to_dense_preserves_function(self):
        layer = LowRankConv2d(4, 6, 3, rank=2, stride=1, padding=1)
        x = get_rng(offset=2).standard_normal((2, 4, 8, 8)).astype(np.float32)
        with no_grad():
            factorized = layer(x).data
        dense = layer.to_dense()
        assert isinstance(dense, nn.Conv2d)
        with no_grad():
            merged = dense(x).data
        np.testing.assert_allclose(merged, factorized, rtol=1e-4, atol=1e-5)

    def test_extra_bn_refuses_merge(self):
        layer = LowRankLinear(12, 8, rank=3, extra_bn=True)
        with pytest.raises(ValueError, match="extra_bn"):
            layer.to_dense()

    def test_export_factors_orientation(self):
        layer = LowRankLinear(12, 8, rank=3)
        factors = layer.export_factors()
        assert factors["u"].shape == (12, 3)
        assert factors["vt"].shape == (3, 8)
        np.testing.assert_allclose(factors["u"] @ factors["vt"], layer.composed_weight())

    def test_materialize_low_rank_builds_structure_without_svd(self):
        model = _resnet()
        paths = model.factorization_candidates()[:3]
        ranks = {p: 2 for p in paths}
        installed = materialize_low_rank(model, ranks)
        assert installed == paths
        for path in paths:
            assert model.get_submodule(path).rank == 2

    def test_materialize_rejects_conflicting_rank(self):
        model = _resnet()
        path = model.factorization_candidates()[0]
        materialize_low_rank(model, {path: 2})
        with pytest.raises(ValueError, match="already factorized"):
            materialize_low_rank(model, {path: 3})

    def test_materialize_rejects_unsupported_module(self):
        model = _resnet()
        with pytest.raises(TypeError, match="unsupported"):
            materialize_low_rank(model, {"bn1": 2})
