"""Tests for factorized layers and the SVD factorization step."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    LowRankConv2d,
    LowRankLinear,
    factorize_conv2d,
    factorize_linear,
    factorize_model,
    factorize_module,
    hybrid_parameter_count,
    is_low_rank,
    reconstruction_error,
    svd_factorize,
    would_reduce_parameters,
)
from repro.models import MLP, resnet18
from repro.tensor import Tensor


class TestSVDFactorize:
    def test_full_rank_reconstruction_exact(self, rng):
        matrix = rng.standard_normal((10, 6)).astype(np.float32)
        u, vt = svd_factorize(matrix, rank=6)
        np.testing.assert_allclose(u @ vt, matrix, atol=1e-4)

    def test_error_decreases_with_rank(self, rng):
        matrix = rng.standard_normal((20, 20))
        errors = [reconstruction_error(matrix, *svd_factorize(matrix, r)) for r in (2, 5, 10, 20)]
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))
        assert errors[-1] < 1e-4

    def test_rank_clamped_to_valid_range(self, rng):
        matrix = rng.standard_normal((5, 3))
        u, vt = svd_factorize(matrix, rank=100)
        assert u.shape == (5, 3) and vt.shape == (3, 3)
        u, vt = svd_factorize(matrix, rank=0)
        assert u.shape == (5, 1)

    def test_factors_balanced_by_sqrt_sigma(self, rng):
        """Both factors carry Σ^{1/2}, so their norms are comparable (not U=orthogonal)."""
        matrix = 10 * rng.standard_normal((16, 16))
        u, vt = svd_factorize(matrix, rank=4)
        assert 0.2 < np.linalg.norm(u) / np.linalg.norm(vt) < 5.0


class TestLowRankLinear:
    def test_forward_shape(self, rng):
        layer = LowRankLinear(12, 8, rank=3)
        out = layer(Tensor(rng.random((5, 12)).astype(np.float32)))
        assert out.shape == (5, 8)

    def test_parameter_count_smaller_than_dense(self):
        dense = nn.Linear(64, 64)
        low = LowRankLinear(64, 64, rank=8)
        assert low.num_parameters() < dense.num_parameters()

    def test_rank_clamped(self):
        layer = LowRankLinear(6, 4, rank=100)
        assert layer.rank == 4

    def test_composed_weight_matches_forward(self, rng):
        layer = LowRankLinear(10, 7, rank=4, bias=False)
        x = rng.random((3, 10)).astype(np.float32)
        manual = x @ layer.composed_weight()
        np.testing.assert_allclose(layer(Tensor(x)).data, manual, atol=1e-4)

    def test_from_factors_roundtrip(self, rng):
        u = rng.random((9, 3)).astype(np.float32)
        vt = rng.random((3, 5)).astype(np.float32)
        bias = rng.random(5).astype(np.float32)
        layer = LowRankLinear.from_factors(u, vt, bias=bias)
        x = rng.random((2, 9)).astype(np.float32)
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ u @ vt + bias, atol=1e-4)

    def test_extra_bn_inserted(self, rng):
        layer = LowRankLinear(8, 8, rank=2, extra_bn=True)
        assert isinstance(layer.bn, nn.BatchNorm1d)
        out = layer(Tensor(rng.random((4, 8)).astype(np.float32)))
        assert out.shape == (4, 8)

    def test_extra_bn_handles_3d_input(self, rng):
        layer = LowRankLinear(8, 8, rank=2, extra_bn=True)
        out = layer(Tensor(rng.random((2, 5, 8)).astype(np.float32)))
        assert out.shape == (2, 5, 8)

    def test_backward_reaches_both_factors(self, rng):
        layer = LowRankLinear(6, 6, rank=2)
        layer(Tensor(rng.random((3, 6)).astype(np.float32))).sum().backward()
        assert layer.u.grad is not None and layer.vt.grad is not None

    def test_factor_parameters(self):
        layer = LowRankLinear(4, 4, rank=2)
        u, vt = layer.factor_parameters()
        assert u is layer.u and vt is layer.vt


class TestLowRankConv2d:
    def test_forward_shape_matches_dense(self, rng):
        dense = nn.Conv2d(4, 8, 3, stride=2, padding=1)
        low = LowRankConv2d(4, 8, 3, rank=2, stride=2, padding=1)
        x = Tensor(rng.random((2, 4, 8, 8)).astype(np.float32))
        assert low(x).shape == dense(x).shape

    def test_parameter_reduction(self):
        dense = nn.Conv2d(32, 32, 3, bias=False)
        low = LowRankConv2d(32, 32, 3, rank=4, bias=False)
        assert low.num_parameters() < dense.num_parameters() / 3

    def test_composed_weight_consistent_with_forward(self, rng):
        """Composing U·Vᵀ back into a dense kernel reproduces the factorized output."""
        low = LowRankConv2d(3, 6, 3, rank=2, padding=1, bias=False)
        composed = low.composed_weight()            # (in·k², out)
        dense_weight = composed.reshape(3, 3, 3, 6).transpose(3, 0, 1, 2)
        dense = nn.Conv2d(3, 6, 3, padding=1, bias=False)
        dense.weight.data = dense_weight.astype(np.float32)
        x = Tensor(rng.random((2, 3, 5, 5)).astype(np.float32))
        np.testing.assert_allclose(low(x).data, dense(x).data, atol=1e-4)

    def test_extra_bn(self, rng):
        low = LowRankConv2d(3, 6, 3, rank=2, padding=1, extra_bn=True)
        assert isinstance(low.bn, nn.BatchNorm2d)
        assert low(Tensor(rng.random((2, 3, 5, 5)).astype(np.float32))).shape == (2, 6, 5, 5)

    def test_is_low_rank_helper(self):
        assert is_low_rank(LowRankLinear(4, 4, 2))
        assert is_low_rank(LowRankConv2d(2, 2, 3, 1))
        assert not is_low_rank(nn.Linear(4, 4))


class TestFactorizeModules:
    def test_factorize_linear_preserves_function_at_full_rank(self, rng):
        dense = nn.Linear(10, 8)
        low = factorize_linear(dense, rank=8)
        x = Tensor(rng.random((4, 10)).astype(np.float32))
        np.testing.assert_allclose(low(x).data, dense(x).data, atol=1e-4)

    def test_factorize_conv_preserves_function_at_full_rank(self, rng):
        dense = nn.Conv2d(3, 5, 3, padding=1)
        low = factorize_conv2d(dense, rank=min(3 * 9, 5))
        x = Tensor(rng.random((2, 3, 6, 6)).astype(np.float32))
        np.testing.assert_allclose(low(x).data, dense(x).data, atol=1e-3)

    def test_factorize_low_rank_weight_is_near_lossless(self, rng):
        dense = nn.Linear(20, 20, bias=False)
        u = rng.standard_normal((20, 3)).astype(np.float32)
        v = rng.standard_normal((3, 20)).astype(np.float32)
        dense.weight.data = (u @ v).T.astype(np.float32) / 5
        low = factorize_linear(dense, rank=3)
        x = Tensor(rng.random((4, 20)).astype(np.float32))
        np.testing.assert_allclose(low(x).data, dense(x).data, atol=1e-3)

    def test_factorize_module_dispatch(self):
        assert isinstance(factorize_module(nn.Linear(4, 4), 2), LowRankLinear)
        assert isinstance(factorize_module(nn.Conv2d(2, 2, 3), 1), LowRankConv2d)
        with pytest.raises(TypeError):
            factorize_module(nn.ReLU(), 2)

    def test_would_reduce_parameters(self):
        assert would_reduce_parameters(nn.Linear(64, 64), 8)
        assert not would_reduce_parameters(nn.Linear(64, 64), 64)
        assert would_reduce_parameters(nn.Conv2d(32, 32, 3), 8)
        assert not would_reduce_parameters(nn.ReLU(), 1)

    def test_factorize_model_in_place(self):
        model = MLP(16, [32, 32], 4)
        candidates = model.factorization_candidates()
        before = model.num_parameters()
        factorized = factorize_model(model, {p: 2 for p in candidates})
        assert set(factorized) == set(candidates)
        assert model.num_parameters() < before
        for path in candidates:
            assert is_low_rank(model.get_submodule(path))

    def test_factorize_model_skips_non_reducing(self):
        model = MLP(16, [32, 32], 4)
        candidates = model.factorization_candidates()
        factorized = factorize_model(model, {candidates[0]: 32})
        assert factorized == []

    def test_factorize_model_idempotent_on_low_rank_layers(self):
        model = MLP(16, [32, 32], 4)
        candidates = model.factorization_candidates()
        factorize_model(model, {candidates[0]: 2})
        again = factorize_model(model, {candidates[0]: 2})
        assert again == []

    def test_factorized_resnet_still_trains(self, rng):
        model = resnet18(num_classes=4, width_mult=0.125)
        candidates = model.factorization_candidates()[-4:]
        factorize_model(model, {p: 4 for p in candidates})
        out = model(rng.random((2, 3, 16, 16)).astype(np.float32))
        from repro.tensor import functional as F
        F.cross_entropy(out, np.array([0, 1])).backward()
        low_rank_modules = [m for m in model.modules() if is_low_rank(m)]
        assert low_rank_modules
        assert all(m.u_weight.grad is not None for m in low_rank_modules)

    def test_hybrid_parameter_count(self):
        model = MLP(16, [32, 32], 4)
        candidates = model.factorization_candidates()
        factorize_model(model, {p: 2 for p in candidates})
        counts = hybrid_parameter_count(model)
        assert counts["total"] == counts["full_rank"] + counts["low_rank"]
        assert counts["low_rank"] > 0
