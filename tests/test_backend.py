"""Tests for the execution-backend layer.

Covers the registry surface, exact numerical equivalence between the
``numpy`` and ``numpy-fast`` backends on a real training run, bit-exact
fused-vs-unfused kernel parity, per-op counters, the arena allocator, the
graph-free inference mode, and the small Tensor API fixes that rode along
(``item()`` errors, numpy scalar exponents, deterministic dropout fallback).
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import (
    Tensor,
    available_backends,
    backend_descriptions,
    functional as F,
    get_backend,
    no_grad,
    set_backend,
    use_backend,
)
from repro.tensor.backend import Backend, NumpyFastBackend, register_backend
from repro.utils import seed_everything


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "numpy" in available_backends()
        assert "numpy-fast" in available_backends()

    def test_descriptions_are_non_empty(self):
        descriptions = backend_descriptions()
        assert descriptions["numpy"]
        assert descriptions["numpy-fast"]

    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_set_backend_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            set_backend("no-such-backend")

    def test_set_backend_bad_type_raises(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_backend("numpy")
            class Duplicate(Backend):
                pass

    def test_register_non_backend_raises(self):
        with pytest.raises(TypeError):
            register_backend("bogus-backend")(dict)

    def test_use_backend_restores_previous(self):
        assert get_backend().name == "numpy"
        with use_backend("numpy-fast") as be:
            assert be.name == "numpy-fast"
            assert get_backend() is be
        assert get_backend().name == "numpy"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("numpy-fast"):
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"


# --------------------------------------------------------------------------- #
# Backend equivalence on a real training run
# --------------------------------------------------------------------------- #
def _train_small_model(backend, steps=6):
    """Train a conv+bn+linear model for a few steps; return losses + params."""
    from repro.optim import SGD

    with use_backend(backend):
        seed_everything(123)
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.AvgPool2d(2),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 5),
        )
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-3)
        rng = np.random.default_rng(9)
        x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
        y = rng.integers(0, 5, size=8)
        losses = []
        for _ in range(steps):
            optimizer.zero_grad()
            loss = F.softmax_cross_entropy(model(x), y)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        with no_grad():
            eval_logits = model(x).data.copy()
        return losses, [p.data.copy() for p in model.parameters()], eval_logits


class TestBackendEquivalence:
    def test_training_run_is_bit_identical(self):
        losses_np, params_np, eval_np = _train_small_model("numpy")
        losses_fast, params_fast, eval_fast = _train_small_model("numpy-fast")
        # *Identical*, not allclose: the fused kernels and the arena replicate
        # the reference float-op sequence exactly.
        assert losses_np == losses_fast
        for a, b in zip(params_np, params_fast):
            assert np.array_equal(a, b)
        assert np.array_equal(eval_np, eval_fast)

    def test_adamw_transformer_step_is_bit_identical(self):
        from repro.optim import AdamW

        def run(backend):
            with use_backend(backend):
                seed_everything(5)
                attn = nn.MultiHeadAttention(8, 2)
                optimizer = AdamW(attn.parameters(), lr=1e-3, weight_decay=0.01)
                rng = np.random.default_rng(2)
                x = rng.standard_normal((2, 5, 8)).astype(np.float32)
                mask = np.array([[True] * 5, [True, True, True, False, False]])
                for _ in range(3):
                    optimizer.zero_grad()
                    out = attn(Tensor(x), attn_mask=mask)
                    (out * out).mean().backward()
                    optimizer.step()
                return [p.data.copy() for p in attn.parameters()]

        for a, b in zip(run("numpy"), run("numpy-fast")):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# Fused vs unfused kernel parity (bit-exact)
# --------------------------------------------------------------------------- #
class TestFusedKernelParity:
    def _forward_backward(self, fn, arrays, backend):
        with use_backend(backend):
            tensors = [Tensor(a, requires_grad=True) for a in arrays]
            out = fn(*tensors)
            loss = out if out.size == 1 else out.sum()
            loss.backward()
            return out.data.copy(), [t.grad.copy() for t in tensors]

    def _assert_bit_equal(self, fn, arrays):
        out_np, grads_np = self._forward_backward(fn, arrays, "numpy")
        out_fast, grads_fast = self._forward_backward(fn, arrays, "numpy-fast")
        assert np.array_equal(out_np, out_fast)
        for a, b in zip(grads_np, grads_fast):
            assert np.array_equal(a, b)

    def test_linear(self):
        rng = np.random.default_rng(0)
        self._assert_bit_equal(
            lambda x, w, b: F.linear(x, w, b),
            [rng.standard_normal((6, 4)).astype(np.float32),
             rng.standard_normal((3, 4)).astype(np.float32),
             rng.standard_normal(3).astype(np.float32)])

    def test_softmax_cross_entropy(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((16, 7)).astype(np.float32)
        targets = rng.integers(0, 7, size=16)
        self._assert_bit_equal(
            lambda x: F.softmax_cross_entropy(x, targets, label_smoothing=0.1), [logits])

    def test_attention_weights(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal((2, 2, 5, 3)).astype(np.float32)
        k = rng.standard_normal((2, 2, 5, 3)).astype(np.float32)
        probe = rng.random((2, 2, 5, 5)).astype(np.float32)
        self._assert_bit_equal(
            lambda qt, kt: (F.attention_weights(qt, kt, scale=0.4) * Tensor(probe)).sum(),
            [q, k])

    def test_batch_norm2d(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        w = rng.random(3).astype(np.float32) + 0.5
        b = rng.standard_normal(3).astype(np.float32)
        probe = rng.random(x.shape).astype(np.float32)

        def fn(xt, wt, bt):
            out, _, _ = F.batch_norm2d_train(xt, wt, bt, eps=1e-5)
            return (out * Tensor(probe)).sum()

        self._assert_bit_equal(fn, [x, w, b])

    def test_linear_act_matches_manual_chain(self):
        # Explicit fused call vs the composed matmul+bias+activation graph.
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        w = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        for activation in [None, "relu", "gelu"]:
            xt, wt, bt = (Tensor(a, requires_grad=True) for a in (x, w, b))
            fused = F.linear_act(xt, wt, bt, activation=activation)
            fused.sum().backward()

            xc, wc, bc = (Tensor(a, requires_grad=True) for a in (x, w, b))
            chain = xc.matmul(wc.transpose()) + bc
            if activation == "relu":
                chain = chain.relu()
            elif activation == "gelu":
                chain = chain.gelu()
            chain.sum().backward()

            assert np.array_equal(fused.data, chain.data)
            assert np.array_equal(xt.grad, xc.grad)
            assert np.array_equal(wt.grad, wc.grad)
            assert np.array_equal(bt.grad, bc.grad)

    def test_linear_act_rejects_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            F.linear_act(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))), activation="swish")


# --------------------------------------------------------------------------- #
# Per-op counters
# --------------------------------------------------------------------------- #
class TestOpCounters:
    def test_counts_and_flops_recorded(self):
        from repro.profiling import count_ops

        x = Tensor(np.ones((4, 8), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((8, 3), dtype=np.float32), requires_grad=True)
        with count_ops() as counts:
            (x @ w).sum().backward()
        assert counts["matmul"].calls == 1
        assert counts["matmul"].flops == pytest.approx(2.0 * 4 * 3 * 8)
        assert counts["sum"].calls == 1

    def test_conv_flops_match_analytic_count(self):
        from repro.profiling import conv2d_cost, count_ops

        x = Tensor(np.ones((2, 3, 8, 8), dtype=np.float32))
        w = Tensor(np.ones((4, 3, 3, 3), dtype=np.float32), requires_grad=True)
        with count_ops() as counts:
            F.conv2d(x, w, stride=1, padding=1)
        analytic = conv2d_cost(batch=2, in_channels=3, out_channels=4, kernel=3,
                               out_h=8, out_w=8)
        assert counts["conv2d"].calls == 1
        assert counts["conv2d"].flops == pytest.approx(analytic.flops)

    def test_optimizer_steps_counted(self):
        from repro.optim import SGD
        from repro.profiling import count_ops

        p = nn.Parameter(np.ones(4, dtype=np.float32))
        optimizer = SGD([p], lr=0.1)
        p.grad = np.ones(4, dtype=np.float32)
        with count_ops() as counts:
            optimizer.step()
        assert counts["sgd_step"].calls == 1

    def test_reset(self):
        from repro.profiling import op_counters, reset_op_counters

        Tensor(np.ones(3)) + Tensor(np.ones(3))
        assert op_counters()
        reset_op_counters()
        assert not op_counters()


# --------------------------------------------------------------------------- #
# Arena allocator
# --------------------------------------------------------------------------- #
class TestArena:
    def test_take_give_roundtrip(self):
        be = NumpyFastBackend()
        buf = be.take((4, 4))
        be.give(buf)
        assert be.take((4, 4)) is buf

    def test_views_are_not_pooled(self):
        be = NumpyFastBackend()
        base = np.empty((4, 4), dtype=np.float32)
        be.give(base[:2])
        assert be.take((2, 4)) is not base

    def test_layout_is_part_of_the_key(self):
        be = NumpyFastBackend()
        proto = np.empty((2, 3, 4, 5), dtype=np.float32).transpose(0, 2, 3, 1)
        buf = be.take_like(proto)
        assert buf.strides == np.zeros_like(proto).strides
        be.give(buf)
        assert be.take_like(proto) is buf
        # A C-contiguous request of the same shape must not receive it.
        c_buf = be.take(proto.shape)
        assert c_buf.flags.c_contiguous

    def test_intermediate_grads_released_and_recycled(self):
        with use_backend("numpy-fast") as be:
            be.clear_arena()
            x = Tensor(np.ones((32, 32), dtype=np.float32), requires_grad=True)
            y = (x * 2.0)
            y.sum().backward()
            # Leaf keeps its grad; the intermediate's buffer went to the arena.
            assert x.grad is not None
            assert y.grad is None
            assert any(bucket for bucket in be._arena.values())

    def test_double_backward_raises_on_pooling_backend(self):
        with use_backend("numpy-fast"):
            x = Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
            loss = (x * 2.0).sum()
            loss.backward()
            with pytest.raises(RuntimeError, match="already backpropagated"):
                loss.backward()

    def test_double_backward_still_allowed_on_reference_backend(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        loss = (x * 2.0).sum()
        loss.backward()
        loss.backward()
        # Historical semantics: intermediate grads persist, so the second
        # pass compounds through them (2 + 4).
        np.testing.assert_allclose(x.grad, 6 * np.ones(3))

    def test_zero_grad_recycles_parameter_grads(self):
        with use_backend("numpy-fast") as be:
            be.clear_arena()
            p = nn.Parameter(np.ones((8, 8), dtype=np.float32))
            (p * 3.0).sum().backward()
            buf = p.grad
            p.zero_grad()
            assert p.grad is None
            assert be.take_like(p.data) is buf


# --------------------------------------------------------------------------- #
# Graph-free inference mode
# --------------------------------------------------------------------------- #
class TestGraphFreeInference:
    @pytest.mark.parametrize("backend", ["numpy", "numpy-fast"])
    def test_no_grad_builds_no_graph(self, backend):
        with use_backend(backend):
            x = Tensor(np.ones((2, 3)), requires_grad=True)
            with no_grad():
                out = (x * 2.0).relu().sum()
            assert out._op_obj is None
            assert out._prev == ()
            assert not out.requires_grad

    def test_conv_inference_reuses_cached_col_buffer(self):
        from repro.tensor.functional import _IM2COL_CACHE, clear_im2col_cache

        clear_im2col_cache()
        conv = nn.Conv2d(3, 4, 3, padding=1)
        x = np.ones((2, 3, 8, 8), dtype=np.float32)
        with no_grad():
            first = conv(Tensor(x)).data.copy()
            assert len(_IM2COL_CACHE) == 1
            second = conv(Tensor(x)).data.copy()
            assert len(_IM2COL_CACHE) == 1
        assert np.array_equal(first, second)
        # Training-mode forward must not touch the inference cache.
        conv(Tensor(x, requires_grad=True))
        assert len(_IM2COL_CACHE) == 1
        clear_im2col_cache()

    def test_inference_forward_matches_training_forward(self):
        seed_everything(0)
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.ReLU(),
                              nn.Flatten(), nn.Linear(4 * 64, 5))
        model.eval()
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
        with no_grad():
            graph_free = model(Tensor(x)).data.copy()
        graphed = model(Tensor(x, requires_grad=True)).data
        np.testing.assert_array_equal(graph_free, graphed)


# --------------------------------------------------------------------------- #
# Satellite API fixes
# --------------------------------------------------------------------------- #
class TestTensorApiFixes:
    def test_item_multi_element_raises_value_error(self):
        with pytest.raises(ValueError, match="one element"):
            Tensor(np.ones((2, 3))).item()

    def test_item_scalar_still_works(self):
        assert Tensor(np.asarray(2.5)).item() == 2.5
        assert Tensor(np.asarray([[4.0]])).item() == 4.0

    @pytest.mark.parametrize("exponent", [np.int64(2), np.float32(2.0), np.float64(2.0)])
    def test_pow_accepts_numpy_scalars(self, exponent):
        t = Tensor([2.0, 3.0], requires_grad=True)
        out = t ** exponent
        np.testing.assert_allclose(out.data, [4.0, 9.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 6.0])

    def test_pow_still_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_dropout_fallback_rng_is_seeded(self):
        x = Tensor(np.ones((64, 64)))

        seed_everything(77)
        a = F.dropout(x, 0.5, training=True).data.copy()
        seed_everything(77)
        b = F.dropout(x, 0.5, training=True).data.copy()
        assert np.array_equal(a, b)

        # Consecutive calls under one seed draw different masks.
        seed_everything(77)
        first = F.dropout(x, 0.5, training=True).data.copy()
        second = F.dropout(x, 0.5, training=True).data.copy()
        assert not np.array_equal(first, second)

    def test_dropout_explicit_rng_still_honoured(self):
        x = Tensor(np.ones((16, 16)))
        a = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(3)).data
        b = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(3)).data
        assert np.array_equal(a, b)


def test_fuse_linear_activations_preserves_values():
    seed_everything(11)
    model = nn.Sequential(nn.Linear(6, 8), nn.ReLU(), nn.Linear(8, 4), nn.GELU(),
                          nn.Linear(4, 2))
    x = np.random.default_rng(1).standard_normal((3, 6)).astype(np.float32)
    before = model(Tensor(x)).data.copy()
    fused = nn.fuse_linear_activations(model)
    assert fused == 2
    assert model[0].activation == "relu"
    assert isinstance(model[1], nn.Identity)
    after = model(Tensor(x)).data
    assert np.array_equal(before, after)
    # Idempotent: a second pass finds nothing new.
    assert nn.fuse_linear_activations(model) == 0
