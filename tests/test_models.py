"""Tests for the model zoo: shapes, structure hooks and the registry."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MLP,
    BertForMaskedLM,
    BertForSequenceClassification,
    available_models,
    bert_micro,
    build_model,
    deit_micro,
    resmlp_micro,
    resnet18,
    resnet50,
    vgg19,
    wide_resnet50_2,
)
from repro.tensor import Tensor, functional as F


@pytest.fixture
def images(rng):
    return rng.random((2, 3, 16, 16)).astype(np.float32)


class TestResNet:
    def test_resnet18_forward_and_backward(self, images):
        model = resnet18(num_classes=5, width_mult=0.125)
        out = model(images)
        assert out.shape == (2, 5)
        F.cross_entropy(out, np.array([0, 1])).backward()
        assert model.conv1.weight.grad is not None

    def test_resnet50_structure(self, images):
        model = resnet50(num_classes=4, width_mult=0.0625, small_input=True)
        assert model(images).shape == (2, 4)
        # Bottleneck blocks: 3+4+6+3 blocks, 3 convs each (plus downsamples).
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) >= 49

    def test_wide_resnet_has_more_parameters_than_resnet50(self):
        wide = wide_resnet50_2(num_classes=10, width_mult=0.0625, small_input=True)
        narrow = resnet50(num_classes=10, width_mult=0.0625, small_input=True)
        assert wide.num_parameters() > narrow.num_parameters()

    def test_layer_stack_paths_cover_four_stacks(self):
        model = resnet18(num_classes=10, width_mult=0.125)
        stacks = model.layer_stack_paths()
        assert list(stacks) == ["layer1", "layer2", "layer3", "layer4"]
        for paths in stacks.values():
            assert paths and all(isinstance(model.get_submodule(p), nn.Conv2d) for p in paths)

    def test_factorization_candidates_exclude_first_and_last(self):
        model = resnet18(num_classes=10, width_mult=0.125)
        candidates = model.factorization_candidates()
        assert "conv1" not in candidates and "fc" not in candidates
        assert len(candidates) > 10

    def test_imagenet_stem(self, rng):
        model = resnet18(num_classes=8, width_mult=0.125, small_input=False)
        out = model(rng.random((1, 3, 32, 32)).astype(np.float32))
        assert out.shape == (1, 8)

    def test_width_mult_scales_parameters(self):
        small = resnet18(num_classes=10, width_mult=0.125)
        large = resnet18(num_classes=10, width_mult=0.25)
        assert large.num_parameters() > 3 * small.num_parameters()


class TestVGG:
    def test_forward_shape(self, images):
        model = vgg19(num_classes=7, width_mult=0.125)
        assert model(images).shape == (2, 7)

    def test_has_16_conv_layers(self):
        model = vgg19(num_classes=10, width_mult=0.125)
        assert len(model.conv_layer_paths()) == 16

    def test_stack_paths_partition_convs(self):
        model = vgg19(num_classes=10, width_mult=0.125)
        stacks = model.layer_stack_paths()
        assert len(stacks) == 5
        total = sum(len(v) for v in stacks.values())
        assert total == 16
        assert [len(v) for v in stacks.values()] == [2, 2, 4, 4, 4]

    def test_candidates_exclude_first_conv_and_classifier(self):
        model = vgg19(num_classes=10, width_mult=0.125)
        candidates = model.factorization_candidates()
        assert len(candidates) == 15
        assert model.conv_layer_paths()[0] not in candidates

    def test_works_on_32px_input(self, rng):
        model = vgg19(num_classes=3, width_mult=0.125)
        out = model(rng.random((1, 3, 32, 32)).astype(np.float32))
        assert out.shape == (1, 3)


class TestTransformers:
    def test_deit_forward(self, images):
        model = deit_micro(image_size=16, num_classes=6, depth=2)
        assert model(images).shape == (2, 6)

    def test_deit_candidates_exclude_head_and_out_proj(self):
        model = deit_micro(image_size=16, num_classes=6, depth=2)
        candidates = model.factorization_candidates()
        assert candidates
        assert all("head" != c and not c.endswith("out_proj") for c in candidates)

    def test_deit_stacks_one_per_block(self):
        model = deit_micro(image_size=16, num_classes=6, depth=3)
        assert len(model.layer_stack_paths()) == 3

    def test_deit_rejects_indivisible_patches(self):
        with pytest.raises(ValueError):
            deit_micro(image_size=15, num_classes=2)

    def test_resmlp_forward_backward(self, images):
        model = resmlp_micro(image_size=16, num_classes=4, depth=2)
        out = model(images)
        assert out.shape == (2, 4)
        F.cross_entropy(out, np.array([0, 1])).backward()
        assert model.head.weight.grad is not None

    def test_resmlp_candidates_include_token_mix(self):
        model = resmlp_micro(image_size=16, num_classes=4, depth=2)
        assert any("token_mix" in c for c in model.factorization_candidates())


class TestBert:
    def test_sequence_classification_forward(self, rng):
        model = BertForSequenceClassification(bert_micro(), num_classes=3)
        tokens = rng.integers(4, 200, size=(2, 12))
        mask = np.ones((2, 12), dtype=bool)
        out = model(tokens, attn_mask=mask)
        assert out.shape == (2, 3)

    def test_sequence_length_guard(self, rng):
        model = bert_micro(max_seq_len=8)
        with pytest.raises(ValueError):
            model(rng.integers(4, 200, size=(1, 16)))

    def test_mlm_head_shape(self, rng):
        backbone = bert_micro()
        model = BertForMaskedLM(backbone)
        tokens = rng.integers(4, 200, size=(2, 10))
        out = model(tokens)
        assert out.shape == (2, 10, backbone.vocab_size)

    def test_candidates_are_attention_projections(self):
        model = BertForSequenceClassification(bert_micro(), num_classes=2)
        candidates = model.factorization_candidates()
        assert candidates and all(".attn." in c for c in candidates)

    def test_feed_forward_paths(self):
        backbone = bert_micro()
        paths = backbone.feed_forward_paths()
        assert paths and all(p.endswith(("fc1", "fc2")) for p in paths)

    def test_backward_through_embeddings(self, rng):
        model = BertForSequenceClassification(bert_micro(), num_classes=2)
        out = model(rng.integers(4, 200, size=(2, 8)))
        F.cross_entropy(out, np.array([0, 1])).backward()
        assert model.backbone.token_embed.weight.grad is not None


class TestMLPAndRegistry:
    def test_mlp_forward_flattens(self, rng):
        model = MLP(3 * 4 * 4, [32, 16], 5)
        out = model(rng.random((2, 3, 4, 4)).astype(np.float32))
        assert out.shape == (2, 5)

    def test_mlp_candidates(self):
        model = MLP(10, [20, 20, 20], 2)
        assert len(model.factorization_candidates()) == 2

    def test_registry_lists_all_paper_models(self):
        names = available_models()
        for expected in ("resnet18", "resnet50", "wide_resnet50_2", "vgg19",
                         "deit_base", "resmlp_s36", "bert_base"):
            assert expected in names

    def test_build_model_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_build_model_kwargs_forwarded(self):
        model = build_model("resnet18", num_classes=3, width_mult=0.125)
        assert model.fc.out_features == 3

    def test_paper_scale_parameter_counts_are_plausible(self):
        """Full-width ResNet-18 ≈ 11M and VGG-19 ≈ 20M parameters (Table 1)."""
        r18 = build_model("resnet18", num_classes=10, width_mult=1.0)
        assert 10e6 < r18.num_parameters() < 12.5e6
        v19 = build_model("vgg19", num_classes=10, width_mult=1.0)
        assert 18e6 < v19.num_parameters() < 22e6
