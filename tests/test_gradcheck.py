"""Numerical gradient checks for every autograd Op, on both backends.

Each case builds a scalar loss from one op, backpropagates analytically and
compares against central-difference numeric gradients.  Every case runs on
the ``numpy`` backend (unfused reference chains) and on ``numpy-fast``
(arena buffers + fused kernels), so fused and pooled execution paths are
grad-checked too.
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, functional as F, use_backend

BACKENDS = ["numpy", "numpy-fast"]


def _numeric_gradient(fn, array, eps=1e-3):
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(op_fn, arrays, backend, atol=2e-2, rtol=1e-2):
    """Grad-check ``op_fn(*tensors) -> Tensor`` against numeric differences."""
    with use_backend(backend):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        loss = op_fn(*tensors)
        if loss.size != 1:
            loss = loss.sum()
        loss.backward()
        analytic = [t.grad for t in tensors]

        for i, array in enumerate(arrays):
            def scalar():
                out = op_fn(*[Tensor(a) for a in arrays])
                if out.size != 1:
                    out = out.sum()
                return float(out.data)

            numeric = _numeric_gradient(scalar, array)
            assert analytic[i] is not None, f"missing grad for input {i}"
            np.testing.assert_allclose(
                analytic[i], numeric, atol=atol, rtol=rtol,
                err_msg=f"input {i} on backend {backend}",
            )


@pytest.fixture
def arr():
    rng = np.random.default_rng(42)

    def make(*shape, positive=False, spread=1.0):
        data = rng.random(shape) * spread + (0.5 if positive else -spread / 2)
        return data.astype(np.float64)

    return make


# --------------------------------------------------------------------------- #
# Core elementwise / reduction / shape / linalg ops
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestCoreOps:
    def test_add_broadcast(self, arr, backend):
        check_gradients(lambda a, b: a + b, [arr(3, 4), arr(4)], backend)

    def test_mul(self, arr, backend):
        check_gradients(lambda a, b: a * b, [arr(3, 4), arr(3, 4)], backend)

    def test_neg(self, arr, backend):
        check_gradients(lambda a: -a, [arr(5)], backend)

    def test_div(self, arr, backend):
        check_gradients(lambda a, b: a / b, [arr(3, 3, positive=True), arr(3, 3, positive=True)], backend)

    def test_pow(self, arr, backend):
        check_gradients(lambda a: a ** 3, [arr(4, positive=True)], backend)

    def test_pow_numpy_scalar_exponent(self, arr, backend):
        check_gradients(lambda a: a ** np.int64(2), [arr(4, positive=True)], backend)

    @pytest.mark.parametrize("name", ["exp", "log", "tanh", "sigmoid", "relu", "gelu", "abs", "sqrt"])
    def test_unary(self, arr, backend, name):
        check_gradients(lambda a: getattr(a, name)(), [arr(4, 3, positive=True)], backend)

    def test_clip(self, arr, backend):
        # Stay away from the clip boundaries so numeric grads are clean.
        data = np.array([-2.0, -0.4, 0.3, 1.8], dtype=np.float64)
        check_gradients(lambda a: a.clip(-1.0, 1.0), [data], backend)

    def test_sum_axis(self, arr, backend):
        check_gradients(lambda a: a.sum(axis=1), [arr(3, 4)], backend)

    def test_sum_keepdims(self, arr, backend):
        check_gradients(lambda a: a.sum(axis=(0, 2), keepdims=True), [arr(2, 3, 4)], backend)

    def test_mean(self, arr, backend):
        check_gradients(lambda a: a.mean(axis=0), [arr(3, 4)], backend)

    def test_var(self, arr, backend):
        check_gradients(lambda a: a.var(axis=1), [arr(3, 4)], backend)

    def test_max(self, arr, backend):
        data = np.array([[1.0, 5.0, 3.0], [0.2, 0.1, 7.0]], dtype=np.float64)
        check_gradients(lambda a: a.max(axis=1), [data], backend)

    def test_reshape(self, arr, backend):
        check_gradients(lambda a: (a.reshape((2, 6)) * 2.0), [arr(3, 4)], backend)

    def test_transpose(self, arr, backend):
        check_gradients(lambda a: a.transpose((2, 0, 1)) * 3.0, [arr(2, 3, 4)], backend)

    def test_getitem(self, arr, backend):
        check_gradients(lambda a: a[1:3] * 2.0, [arr(5, 2)], backend)

    def test_pad(self, arr, backend):
        check_gradients(lambda a: a.pad(((1, 1), (0, 2))) * 2.0, [arr(2, 3)], backend)

    def test_clone(self, arr, backend):
        check_gradients(lambda a: a.clone() * 2.0, [arr(4)], backend)

    def test_concat(self, arr, backend):
        check_gradients(lambda a, b: Tensor.concatenate([a, b], axis=0) * 2.0,
                        [arr(2, 3), arr(4, 3)], backend)

    def test_matmul_2d(self, arr, backend):
        check_gradients(lambda a, b: a @ b, [arr(3, 4), arr(4, 2)], backend)

    def test_matmul_batched(self, arr, backend):
        check_gradients(lambda a, b: a @ b, [arr(2, 3, 4), arr(2, 4, 2)], backend)

    def test_matmul_broadcast(self, arr, backend):
        check_gradients(lambda a, b: a @ b, [arr(2, 3, 4), arr(4, 2)], backend)

    def test_matmul_vector(self, arr, backend):
        check_gradients(lambda a, b: a @ b, [arr(4), arr(4)], backend)


# --------------------------------------------------------------------------- #
# NN ops (conv, pooling, softmax family, fused kernels)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestNNOps:
    def test_conv2d(self, arr, backend):
        check_gradients(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [arr(2, 3, 5, 5), arr(4, 3, 3, 3), arr(4)], backend)

    def test_conv2d_strided(self, arr, backend):
        check_gradients(
            lambda x, w: F.conv2d(x, w, stride=2, padding=0),
            [arr(2, 2, 6, 6), arr(3, 2, 2, 2)], backend)

    def test_max_pool2d(self, arr, backend):
        check_gradients(lambda x: F.max_pool2d(x, 2, stride=2), [arr(2, 2, 4, 4, spread=4.0)], backend)

    def test_avg_pool2d(self, arr, backend):
        check_gradients(lambda x: F.avg_pool2d(x, 2, stride=2), [arr(2, 2, 4, 4)], backend)

    def test_softmax(self, arr, backend):
        check_gradients(lambda x: (F.softmax(x, axis=-1) * Tensor(np.arange(4.0))).sum(),
                        [arr(3, 4)], backend)

    def test_log_softmax(self, arr, backend):
        check_gradients(lambda x: (F.log_softmax(x, axis=-1) * Tensor(np.arange(4.0))).sum(),
                        [arr(3, 4)], backend)

    def test_softmax_cross_entropy(self, arr, backend):
        targets = np.array([0, 2, 1])
        check_gradients(lambda x: F.softmax_cross_entropy(x, targets), [arr(3, 4)], backend)

    def test_softmax_cross_entropy_smoothed(self, arr, backend):
        targets = np.array([3, 1, 0])
        check_gradients(lambda x: F.softmax_cross_entropy(x, targets, label_smoothing=0.1),
                        [arr(3, 4)], backend)

    def test_softmax_cross_entropy_ignore_index(self, arr, backend):
        targets = np.array([0, -100, 1])
        check_gradients(lambda x: F.softmax_cross_entropy(x, targets, ignore_index=-100),
                        [arr(3, 4)], backend)

    @pytest.mark.parametrize("activation", [None, "relu", "gelu"])
    def test_linear_act(self, arr, backend, activation):
        check_gradients(
            lambda x, w, b: F.linear_act(x, w, b, activation=activation),
            [arr(3, 4), arr(5, 4), arr(5)], backend)

    def test_linear_act_no_bias_3d(self, arr, backend):
        check_gradients(
            lambda x, w: F.linear_act(x, w, activation="relu"),
            [arr(2, 3, 4), arr(5, 4)], backend)

    def test_linear_dispatch(self, arr, backend):
        check_gradients(lambda x, w, b: F.linear(x, w, b), [arr(3, 4), arr(5, 4), arr(5)], backend)

    def test_attention_weights(self, arr, backend):
        probe = np.random.default_rng(3).random((1, 2, 4, 4))

        def fn(q, k):
            return (F.attention_weights(q, k, scale=0.5) * Tensor(probe)).sum()

        check_gradients(fn, [arr(1, 2, 4, 3), arr(1, 2, 4, 3)], backend,
                        atol=3e-2)

    def test_attention_weights_masked(self, arr, backend):
        bias = np.where(np.array([[True, True, False]])[:, None, None, :], 0.0, -1e9).astype(np.float32)
        probe = np.random.default_rng(0).random((1, 2, 3, 3))

        def fn(q, k):
            return (F.attention_weights(q, k, scale=0.7, bias=bias) * Tensor(probe)).sum()

        check_gradients(fn, [arr(1, 2, 3, 2), arr(1, 2, 3, 2)], backend, atol=3e-2)

    def test_batch_norm2d_train(self, arr, backend):
        def fn(x, w, b):
            out, _, _ = F.batch_norm2d_train(x, w, b, eps=1e-5)
            return (out * Tensor(np.random.default_rng(1).random(out.shape).astype(np.float32))).sum()

        check_gradients(fn, [arr(3, 2, 4, 4, spread=2.0), arr(2, positive=True), arr(2)],
                        backend, atol=5e-2)


# --------------------------------------------------------------------------- #
# Whole-module smoke gradcheck (fused kernels composed end to end)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_small_mlp_end_to_end(backend):
    rng = np.random.default_rng(0)
    x = rng.random((4, 6)).astype(np.float64)
    targets = np.array([0, 1, 2, 1])

    with use_backend(backend):
        from repro.utils import seed_everything
        seed_everything(7)
        model = nn.Sequential(nn.Linear(6, 8), nn.ReLU(), nn.Linear(8, 3))
        loss = F.softmax_cross_entropy(model(Tensor(x)), targets)
        loss.backward()
        grads = [p.grad.copy() for p in model.parameters()]
        assert all(g is not None and np.isfinite(g).all() for g in grads)

        # Numeric check on the first weight matrix only (cost).
        w = model.parameters()[0]
        numeric = np.zeros_like(w.data, dtype=np.float64)
        eps = 1e-2
        it = np.nditer(w.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = w.data[idx]
            w.data[idx] = orig + eps
            plus = float(F.softmax_cross_entropy(model(Tensor(x)), targets).data)
            w.data[idx] = orig - eps
            minus = float(F.softmax_cross_entropy(model(Tensor(x)), targets).data)
            w.data[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(grads[0], numeric, atol=5e-2, rtol=5e-2)
