"""Command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.train.methods import available_methods


def _run(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serving_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["export", "--checkpoint", "c.npz", "--output", "a.npz"])
        assert args.command == "export" and args.model == "resnet18"
        args = parser.parse_args(["serve", "--artifact", "a.npz", "--port", "0"])
        assert args.command == "serve" and args.max_batch_size == 32
        args = parser.parse_args(["bench-serve", "--artifact", "a.npz",
                                  "--transports", "engine"])
        assert args.command == "bench-serve" and args.transports == ["engine"]

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.method == "cuttlefish"
        assert args.task == "cifar10_small"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--method", "does_not_exist"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--model", "alexnet"])

    def test_compare_accepts_multiple_methods(self):
        args = build_parser().parse_args(["compare", "--methods", "full_rank", "pufferfish"])
        assert args.methods == ["full_rank", "pufferfish"]

    def test_train_accepts_every_registered_method(self):
        for method in available_methods():
            args = build_parser().parse_args(["train", "--method", method])
            assert args.method == method


class TestListMethodsCommand:
    def test_table_lists_all_methods(self):
        code, out = _run(["list-methods"])
        assert code == 0
        for method in available_methods():
            assert method in out

    def test_json_maps_names_to_descriptions(self):
        code, out = _run(["list-methods", "--json"])
        assert code == 0
        payload = json.loads(out)
        assert sorted(payload) == available_methods()
        assert all(isinstance(text, str) and text for text in payload.values())


class TestProfileCommand:
    def test_table_output_contains_stacks_and_khat(self):
        code, out = _run(["profile", "--model", "resnet18", "--batch-size", "256"])
        assert code == 0
        assert "layer1" in out and "layer4" in out
        assert "K̂ =" in out

    def test_json_output_is_machine_readable(self):
        code, out = _run(["profile", "--model", "resnet18", "--json"])
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"k_hat", "factorize_stacks", "skip_stacks", "speedups"}
        assert payload["k_hat"] >= 1
        assert set(payload["speedups"]) == {"layer1", "layer2", "layer3", "layer4"}

    def test_cpu_device_accepted(self):
        code, out = _run(["profile", "--model", "resnet18", "--device", "cpu", "--json"])
        assert code == 0
        assert json.loads(out)["k_hat"] >= 1


class TestTrainCommand:
    def test_smoke_full_rank_json_row(self):
        code, out = _run([
            "train", "--method", "full_rank", "--epochs", "1", "--max-batches", "2",
            "--width-mult", "0.125", "--json",
        ])
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 1 and rows[0]["method"] == "full_rank"
        assert rows[0]["params"] > 0

    def test_smoke_cuttlefish_table_row(self):
        code, out = _run([
            "train", "--method", "cuttlefish", "--epochs", "2", "--max-batches", "2",
            "--width-mult", "0.125",
        ])
        assert code == 0
        assert "cuttlefish" in out
        assert "params" in out  # table header

    @pytest.mark.parametrize("method", sorted(set(available_methods())
                                              - {"full_rank", "cuttlefish"}))
    def test_smoke_every_registered_method(self, method):
        code, out = _run([
            "train", "--method", method, "--epochs", "2", "--max-batches", "2",
            "--width-mult", "0.125", "--json",
        ])
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 1 and rows[0]["method"] == method
        assert rows[0]["params"] > 0


class TestCompareCommand:
    def test_compare_emits_one_row_per_method(self):
        code, out = _run([
            "compare", "--methods", "full_rank", "pufferfish", "--epochs", "2",
            "--max-batches", "2", "--width-mult", "0.125", "--json",
        ])
        assert code == 0
        rows = json.loads(out)
        assert [r["method"] for r in rows] == ["full_rank", "pufferfish"]


class TestRankTraceCommand:
    def test_trace_table_lists_candidate_layers(self):
        code, out = _run([
            "rank-trace", "--model", "resnet18", "--epochs", "2", "--width-mult", "0.125",
        ])
        assert code == 0
        assert "layer1.0.conv1" in out
        assert "ep 1" in out or "ep1" in out.replace(" ", "")

    def test_trace_json_has_one_series_per_layer(self):
        code, out = _run([
            "rank-trace", "--model", "resnet18", "--epochs", "2", "--width-mult", "0.125", "--json",
        ])
        assert code == 0
        table = json.loads(out)
        assert all(len(series) == 2 for series in table.values())
        assert all(0.0 < ratio <= 1.0 for series in table.values() for ratio in series)


class TestServingCommands:
    def _train_artifact(self, tmp_path):
        """Train a tiny model and export checkpoint + artifact in one CLI call."""
        checkpoint = str(tmp_path / "ckpt.npz")
        artifact = str(tmp_path / "model.npz")
        code, out = _run([
            "train", "--method", "full_rank", "--epochs", "1", "--max-batches", "2",
            "--width-mult", "0.125", "--save-checkpoint", checkpoint,
            "--export", artifact,
        ])
        assert code == 0
        assert "checkpoint written" in out and "artifact written" in out
        return checkpoint, artifact

    def test_train_exports_checkpoint_and_artifact(self, tmp_path):
        import numpy as np

        from repro.serve import load_artifact
        from repro.utils import read_checkpoint_meta

        checkpoint, artifact = self._train_artifact(tmp_path)
        meta = read_checkpoint_meta(checkpoint)
        assert meta["metadata"]["method"] == "full_rank"
        predictor = load_artifact(artifact)
        assert predictor.input_shape is not None    # recorded from the task spec
        out = predictor(np.zeros((4,) + predictor.input_shape, dtype=np.float32))
        assert out.shape[0] == 4

    def test_export_command_roundtrips_a_checkpoint(self, tmp_path):
        checkpoint, _ = self._train_artifact(tmp_path)
        artifact = str(tmp_path / "exported.npz")
        code, out = _run([
            "export", "--checkpoint", checkpoint, "--output", artifact,
        ])
        assert code == 0
        assert "artifact written" in out

        from repro.serve import read_manifest

        # Builder spec and input shape come from the checkpoint metadata.
        manifest = read_manifest(artifact)
        assert manifest["model"]["name"] == "resnet18"
        assert manifest["input_shape"] == [3, 16, 16]

    def test_bench_serve_emits_speedup_json(self, tmp_path):
        _, artifact = self._train_artifact(tmp_path)
        code, out = _run([
            "bench-serve", "--artifact", artifact, "--duration", "0.3",
            "--concurrency", "4", "--transports", "engine",
        ])
        assert code == 0
        payload = json.loads(out)
        engine = payload["transports"]["engine"]
        assert engine["batched"]["requests"] > 0
        assert engine["batch1"]["requests"] > 0
        assert engine["speedup"] > 0.0


class TestTraceFlagAndCommand:
    def _traced_train(self, path):
        return _run([
            "train", "--method", "full_rank", "--epochs", "1", "--max-batches", "2",
            "--width-mult", "0.125", "--trace", path,
        ])

    def test_trace_flag_registered_on_all_four_verbs(self):
        parser = build_parser()
        for argv in (["train", "--trace", "t.json"],
                     ["compare", "--trace", "t.json"],
                     ["serve", "--artifact", "a.npz", "--trace", "t.json"],
                     ["bench-serve", "--artifact", "a.npz", "--trace", "t.json"]):
            assert parser.parse_args(argv).trace == "t.json"

    def test_train_trace_writes_loadable_chrome_trace(self, tmp_path):
        from repro.telemetry import tracing

        path = str(tmp_path / "run.json")
        code, out = self._traced_train(path)
        assert code == 0
        assert f"spans written to {path}" in out
        assert not tracing.enabled()  # the CLI turned recording back off
        events, meta = tracing.load_trace(path)
        assert meta["schema"] == "repro.telemetry.trace"
        names = {ev["name"] for ev in events}
        assert {"step", "forward", "backward", "optimizer", "data_wait"} <= names
        summary = tracing.summarize_trace(events)
        assert summary["coverage"]["fraction"] >= 0.95

    def test_trace_flag_jsonl_format_by_extension(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code, _ = self._traced_train(path)
        assert code == 0
        header = json.loads(open(path).readline())
        assert header["schema"] == "repro.telemetry.trace"

    def test_json_mode_keeps_stdout_machine_readable(self, tmp_path):
        path = str(tmp_path / "run.json")
        code, out = _run([
            "train", "--method", "full_rank", "--epochs", "1", "--max-batches", "2",
            "--width-mult", "0.125", "--trace", path, "--json",
        ])
        assert code == 0
        rows = json.loads(out)  # the trace line went to stderr, not stdout
        assert rows[0]["method"] == "full_rank"

    def test_trace_summary_table(self, tmp_path):
        path = str(tmp_path / "run.json")
        self._traced_train(path)
        code, out = _run(["trace", "summary", path])
        assert code == 0
        assert "step coverage:" in out
        assert "forward" in out and "backward" in out

    def test_trace_summary_json(self, tmp_path):
        path = str(tmp_path / "run.json")
        self._traced_train(path)
        code, out = _run(["trace", "summary", path, "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["meta"]["session"] == "trainer"
        assert payload["summary"]["coverage"]["fraction"] >= 0.95

    def test_trace_export_converts_formats(self, tmp_path):
        src = str(tmp_path / "run.json")
        dst = str(tmp_path / "run.jsonl")
        self._traced_train(src)
        code, out = _run(["trace", "export", src, dst])
        assert code == 0
        assert f"events to {dst}" in out
        from repro.telemetry import tracing

        original, _ = tracing.load_trace(src)
        converted, _ = tracing.load_trace(dst)
        assert len(original) == len(converted)

    def test_trace_summary_missing_file_is_clean_error(self, tmp_path):
        code, out = _run(["trace", "summary", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in out
