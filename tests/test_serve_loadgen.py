"""Traffic shapes, open-loop load generation, and client retry behaviour
(repro.serve.{loadgen,client}): bit-reproducible arrival schedules and
jittered-backoff retries that fail loudly when the budget runs out."""

import http.server
import json
import threading

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeClientError,
    TrafficShape,
    arrival_times,
    run_open_loop,
)


# --------------------------------------------------------------------------- #
# Traffic shapes
# --------------------------------------------------------------------------- #
class TestTrafficShape:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            TrafficShape(kind="tsunami")
        with pytest.raises(ValueError):
            TrafficShape(mean_rps=0.0)
        with pytest.raises(ValueError):
            TrafficShape(amplitude=1.5)
        with pytest.raises(ValueError):
            TrafficShape(kind="burst", burst_factor=6.0, burst_duty=0.2)
        with pytest.raises(ValueError, match="pareto_alpha"):
            TrafficShape(kind="heavy_tail", pareto_alpha=0.9)

    @pytest.mark.parametrize("kind", ["constant", "diurnal", "burst", "heavy_tail"])
    def test_schedule_is_bit_reproducible(self, kind):
        shape = TrafficShape(kind=kind, mean_rps=150.0, duration_s=3.0, seed=11)
        first = arrival_times(shape)
        second = arrival_times(shape)
        assert np.array_equal(first, second)
        assert len(first) > 0
        assert np.all(np.diff(first) >= 0.0)
        assert first[0] >= 0.0 and first[-1] < shape.duration_s

    @pytest.mark.parametrize("kind", ["constant", "diurnal", "burst", "heavy_tail"])
    def test_mean_rate_is_respected(self, kind):
        shape = TrafficShape(kind=kind, mean_rps=200.0, duration_s=5.0, seed=4,
                             period_s=1.0)
        rate = len(arrival_times(shape)) / shape.duration_s
        # Whole periods fit the duration, so the realized mean should sit
        # near the nominal one for every shape (heavy-tail is the noisiest).
        assert 0.5 * shape.mean_rps < rate < 1.6 * shape.mean_rps

    def test_different_seeds_give_different_schedules(self):
        a = arrival_times(TrafficShape(mean_rps=100.0, duration_s=2.0, seed=1))
        b = arrival_times(TrafficShape(mean_rps=100.0, duration_s=2.0, seed=2))
        n = min(len(a), len(b))
        assert not np.array_equal(a[:n], b[:n])

    def test_burst_concentrates_arrivals_in_duty_window(self):
        shape = TrafficShape(kind="burst", mean_rps=200.0, duration_s=4.0,
                             seed=3, period_s=1.0, burst_factor=4.0,
                             burst_duty=0.2)
        times = arrival_times(shape)
        in_burst = (np.mod(times, shape.period_s) / shape.period_s
                    < shape.burst_duty).mean()
        # 20% of the time carries 80% of the arrivals at factor 4.
        assert in_burst > 0.6

    def test_heavy_tail_has_heavier_gap_tail_than_constant(self):
        heavy = arrival_times(TrafficShape(kind="heavy_tail", mean_rps=200.0,
                                           duration_s=5.0, seed=9,
                                           pareto_alpha=1.3))
        const = arrival_times(TrafficShape(kind="constant", mean_rps=200.0,
                                           duration_s=5.0, seed=9))
        ratio_heavy = np.percentile(np.diff(heavy), 99) / np.median(np.diff(heavy))
        ratio_const = np.percentile(np.diff(const), 99) / np.median(np.diff(const))
        assert ratio_heavy > ratio_const


# --------------------------------------------------------------------------- #
# Open-loop driver
# --------------------------------------------------------------------------- #
class TestOpenLoop:
    def test_all_arrivals_fire_and_offered_rate_reported(self):
        seen = []
        lock = threading.Lock()

        def send(sample):
            with lock:
                seen.append(float(sample[0]))

        samples = np.arange(8, dtype=np.float32).reshape(8, 1)
        arrivals = arrival_times(TrafficShape(mean_rps=400.0, duration_s=0.5,
                                              seed=5))
        result = run_open_loop(send, samples, arrivals, max_inflight=4,
                               transport="unit")
        assert result.requests == len(arrivals) == len(seen)
        assert result.errors == 0
        assert result.offered_rps == pytest.approx(len(arrivals) / arrivals[-1])
        # Round-robin over the sample pool, scheduled order.
        assert seen[:8] == [float(i % 8) for i in range(8)]

    def test_send_errors_are_counted_not_raised(self):
        def flaky(sample):
            raise ServeClientError(503, {"error": "full"})

        arrivals = np.linspace(0.0, 0.05, 20)
        result = run_open_loop(flaky, np.zeros((4, 1), np.float32), arrivals,
                               max_inflight=4)
        assert result.requests == 0
        assert result.errors == 20

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_open_loop(lambda s: None, np.zeros((1, 1), np.float32),
                          np.array([]))


# --------------------------------------------------------------------------- #
# Client retry behaviour (against a scripted stdlib HTTP server)
# --------------------------------------------------------------------------- #
class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Replays a per-server list of (status, body) responses, then 200s."""

    script = []
    hits = 0

    def _respond(self):
        cls = type(self)
        cls.hits += 1
        if cls.script:
            status, body = cls.script.pop(0)
        else:
            status, body = 200, {"outputs": [[1.0]]}
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):
        self._respond()

    def do_POST(self):
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        self._respond()

    def log_message(self, *args):  # noqa: D102 — silence test noise
        pass


@pytest.fixture
def scripted_server():
    created = []

    def start(script):
        handler = type("Handler", (_ScriptedHandler,),
                       {"script": list(script), "hits": 0})
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        created.append(server)
        return f"http://127.0.0.1:{server.server_address[1]}", handler

    yield start
    for server in created:
        server.shutdown()
        server.server_close()


class TestClientRetry:
    def test_retries_503_then_succeeds(self, scripted_server):
        url, handler = scripted_server([(503, {"error": "busy", "retry": True})])
        client = ServeClient(url, retries=2, backoff_base_s=0.001)
        out = client.predict_one(np.zeros(1, dtype=np.float32))
        assert out.shape == (1, 1)
        assert handler.hits == 2

    def test_final_error_is_loud_after_budget_exhausted(self, scripted_server):
        url, handler = scripted_server([(503, {"error": "busy"})] * 10)
        client = ServeClient(url, retries=2, backoff_base_s=0.001)
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert excinfo.value.attempts == 3
        assert handler.hits == 3
        message = str(excinfo.value)
        assert "gave up after 3 attempts" in message and url in message

    def test_retry_false_fails_fast(self, scripted_server):
        url, handler = scripted_server(
            [(503, {"error": "shutting down", "retry": False})] * 5)
        client = ServeClient(url, retries=5, backoff_base_s=0.001)
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert handler.hits == 1          # no retry against a closing server
        assert excinfo.value.attempts == 1

    def test_non_retryable_status_fails_immediately(self, scripted_server):
        url, handler = scripted_server([(400, {"error": "bad input"})] * 3)
        client = ServeClient(url, retries=3, backoff_base_s=0.001)
        with pytest.raises(ServeClientError) as excinfo:
            client.predict(np.zeros((1, 1), dtype=np.float32))
        assert excinfo.value.status == 400
        assert handler.hits == 1

    def test_connection_refused_retries_then_reports_transport_error(self):
        client = ServeClient("http://127.0.0.1:9",    # discard port: refused
                             retries=1, backoff_base_s=0.001, timeout=1.0)
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.attempts == 2
