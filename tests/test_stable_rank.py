"""Tests for stable-rank estimation (the heart of Cuttlefish's R selection)."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    accumulative_rank,
    full_rank_of,
    initial_scale_factor,
    module_rank_estimate,
    module_stable_rank,
    scaled_stable_rank,
    singular_value_cdf,
    singular_values,
    stable_rank,
    weight_to_matrix,
)


def low_rank_matrix(m, n, r, rng, noise=0.0):
    base = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    if noise:
        base = base + noise * rng.standard_normal((m, n))
    return base


class TestStableRank:
    def test_identity_matrix_has_full_stable_rank(self):
        sigma = singular_values(np.eye(8))
        assert stable_rank(sigma) == pytest.approx(8.0)

    def test_rank_one_matrix(self, rng):
        matrix = np.outer(rng.random(6), rng.random(9))
        assert stable_rank(singular_values(matrix)) == pytest.approx(1.0, abs=1e-6)

    def test_stable_rank_bounded_by_true_rank(self, rng):
        matrix = low_rank_matrix(20, 15, 5, rng)
        sr = stable_rank(singular_values(matrix))
        assert 1.0 <= sr <= 5.0 + 1e-6

    def test_stable_rank_ignores_tiny_singular_values(self, rng):
        matrix = low_rank_matrix(20, 20, 3, rng, noise=1e-4)
        assert stable_rank(singular_values(matrix)) < 4.0

    def test_scale_invariance(self, rng):
        matrix = rng.standard_normal((10, 10))
        sigma = singular_values(matrix)
        sigma_scaled = singular_values(5.0 * matrix)
        assert stable_rank(sigma) == pytest.approx(stable_rank(sigma_scaled), rel=1e-6)

    def test_zero_matrix(self):
        assert stable_rank(singular_values(np.zeros((4, 4)))) == 0.0

    def test_empty_sigma(self):
        assert stable_rank(np.array([])) == 0.0

    def test_singular_values_requires_2d(self):
        with pytest.raises(ValueError):
            singular_values(np.zeros(5))


class TestScaledStableRank:
    def test_scaling_recovers_full_rank_at_init(self, rng):
        matrix = rng.standard_normal((64, 64))
        sigma0 = singular_values(matrix)
        xi = initial_scale_factor(sigma0, 64)
        assert scaled_stable_rank(sigma0, xi) == pytest.approx(64.0, rel=1e-6)

    def test_cap_limits_to_full_rank(self, rng):
        matrix = rng.standard_normal((16, 16))
        sigma = singular_values(matrix)
        assert scaled_stable_rank(sigma, xi=100.0, cap=16) == 16.0

    def test_scaled_larger_than_vanilla(self, rng):
        """ξ ≥ 1 for random init, so scaled stable rank never under-shoots vanilla."""
        matrix = rng.standard_normal((32, 32))
        sigma = singular_values(matrix)
        xi = initial_scale_factor(sigma, 32)
        assert xi >= 1.0
        assert scaled_stable_rank(sigma, xi) >= stable_rank(sigma)

    def test_zero_initial_rank_gives_unit_scale(self):
        assert initial_scale_factor(np.zeros(4), 10) == 1.0


class TestAccumulativeRank:
    def test_uniform_spectrum(self):
        sigma = np.ones(10)
        assert accumulative_rank(sigma, p=0.8) == 8

    def test_concentrated_spectrum(self):
        sigma = np.array([100.0, 1.0, 1.0, 1.0])
        assert accumulative_rank(sigma, p=0.8) == 1

    def test_zero_spectrum(self):
        assert accumulative_rank(np.zeros(5)) == 0

    def test_monotone_in_p(self, rng):
        sigma = np.sort(rng.random(20))[::-1]
        assert accumulative_rank(sigma, 0.5) <= accumulative_rank(sigma, 0.9)


class TestModuleRankEstimation:
    def test_weight_to_matrix_linear(self):
        layer = nn.Linear(6, 4)
        assert weight_to_matrix(layer).shape == (4, 6)

    def test_weight_to_matrix_conv_unrolls_paper_orientation(self):
        conv = nn.Conv2d(3, 8, 3)
        matrix = weight_to_matrix(conv)
        assert matrix.shape == (3 * 3 * 3, 8)

    def test_weight_to_matrix_rejects_unknown(self):
        with pytest.raises(TypeError):
            weight_to_matrix(nn.ReLU())

    def test_full_rank_of(self):
        assert full_rank_of(nn.Linear(10, 4)) == 4
        assert full_rank_of(nn.Conv2d(3, 64, 3)) == 27

    def test_module_stable_rank_positive(self):
        assert module_stable_rank(nn.Linear(16, 16)) > 1.0

    @pytest.mark.parametrize("mode", ["stable", "scaled_stable", "accumulative",
                                      "scaled_stable_or_accumulative"])
    def test_estimate_modes_within_bounds(self, mode):
        layer = nn.Linear(24, 24)
        estimate = module_rank_estimate(layer, xi=1.3, mode=mode)
        assert 0 < estimate <= 24

    def test_unknown_mode_raises(self):
        with pytest.raises(KeyError):
            module_rank_estimate(nn.Linear(4, 4), mode="spectral")

    def test_transformer_rule_takes_max(self):
        layer = nn.Linear(32, 32)
        scaled = module_rank_estimate(layer, xi=0.01, mode="scaled_stable")
        combined = module_rank_estimate(layer, xi=0.01, mode="scaled_stable_or_accumulative")
        assert combined >= scaled

    def test_trained_low_rank_weight_detected(self, rng):
        """A layer whose weight is genuinely low rank gets a low estimate."""
        layer = nn.Linear(32, 32)
        layer.weight.data = low_rank_matrix(32, 32, 4, rng).astype(np.float32)
        assert module_stable_rank(layer) < 6.0


class TestSingularValueCDF:
    def test_monotone_and_normalised(self, rng):
        cdf = singular_value_cdf(rng.standard_normal((12, 20)))
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[-1] == pytest.approx(1.0)

    def test_low_rank_matrix_has_steep_cdf(self, rng):
        low = singular_value_cdf(low_rank_matrix(30, 30, 2, rng, noise=1e-3))
        full = singular_value_cdf(rng.standard_normal((30, 30)))
        # The low-rank matrix accumulates its mass in far fewer directions.
        assert low[1] > full[1]
