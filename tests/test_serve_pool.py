"""Predictor pool (repro.serve.{engine,pool,admission,cache,slo}): replication
bit-invariance, admission control, response cache, SLO adaptation, and
fault injection (dead workers must fail loudly and respawn cleanly)."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.distributed.process import fork_available
from repro.models import build_model
from repro.serve import (
    AdmissionPolicy,
    BatchingPolicy,
    DynamicBatcher,
    LoadShedError,
    Predictor,
    QueueFullError,
    ResponseCache,
    SLOController,
    SLOPolicy,
    WorkerDiedError,
    batch_cache_key,
)
from repro.serve.engine import InlineEngine, ProcessEngine, probe_output_shape
from repro.telemetry.metrics import MetricsRegistry
from repro.utils import seed_everything
from repro.utils.shm import active_owned_segments

fork_only = pytest.mark.skipif(not fork_available(),
                               reason="fork start method unavailable")


def _wait_until(condition, timeout=5.0, interval=0.01):
    """Poll until ``condition()`` is true (worker retirement is async: the
    in-flight future fails a moment before the worker thread finishes)."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return condition()


def _mlp_predictor():
    seed_everything(7)
    model = build_model("mlp", in_features=16, hidden_sizes=[32, 32], num_classes=5)
    model.eval()
    return Predictor(model)


def _echo_predict(batch):
    return np.asarray(batch, dtype=np.float32)


def _samples(n=24, dim=16, seed=3):
    return np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)


# --------------------------------------------------------------------------- #
# Bit-invariance across pool sizes and modes (the tentpole guarantee)
# --------------------------------------------------------------------------- #
class TestPoolBitInvariance:
    def _outputs(self, workers, mode):
        predictor = _mlp_predictor()
        samples = _samples()
        batcher = DynamicBatcher(
            predictor,
            policy=BatchingPolicy(max_batch_size=8, max_wait_ms=1.0),
            name=f"inv-{mode}{workers}", workers=workers, mode=mode,
            input_shape=(16,))
        try:
            futures = [batcher.submit(s, timeout=None) for s in samples]
            return np.concatenate([f.result(timeout=30.0) for f in futures])
        finally:
            batcher.close(drain=True)

    def test_thread_pool_sizes_bit_identical(self):
        reference = self._outputs(1, "thread")
        for workers in (2, 4):
            assert np.array_equal(reference, self._outputs(workers, "thread"))

    @fork_only
    def test_process_pool_sizes_bit_identical_to_thread_pool1(self):
        reference = self._outputs(1, "thread")
        for workers in (1, 2, 4):
            assert np.array_equal(reference, self._outputs(workers, "process"))

    def test_pool1_matches_direct_predictor_call(self):
        predictor = _mlp_predictor()
        samples = _samples()
        direct = predictor(samples)
        batcher = DynamicBatcher(predictor, name="direct-parity")
        try:
            pooled = batcher.submit_batch(samples, timeout=None).result(timeout=30.0)
        finally:
            batcher.close(drain=True)
        assert np.array_equal(direct, pooled)

    @fork_only
    def test_process_pool_leaves_no_shm_segments(self):
        predictor = _mlp_predictor()
        batcher = DynamicBatcher(predictor, workers=2, mode="process",
                                 input_shape=(16,), name="leakcheck")
        try:
            batcher.submit_batch(_samples(8), timeout=None).result(timeout=30.0)
        finally:
            batcher.close(drain=True)
        assert active_owned_segments() == []

    @fork_only
    def test_process_mode_without_input_shape_fails_loudly(self):
        with pytest.raises(ValueError, match="input_shape"):
            DynamicBatcher(_echo_predict, workers=2, mode="process")


# --------------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------------- #
class TestEngines:
    def test_inline_engine_is_transparent(self):
        engine = InlineEngine(_echo_predict)
        batch = _samples(4)
        assert np.array_equal(engine.predict(batch), batch)
        assert engine.alive and engine.pid is None
        assert engine.respawn() is False

    @fork_only
    def test_process_engine_roundtrip_and_close(self):
        engine = ProcessEngine(_echo_predict, input_shape=(16,),
                               output_shape=(16,), max_rows=8, name="eng")
        try:
            batch = _samples(5)
            assert np.array_equal(engine.predict(batch), batch)
            assert engine.alive and isinstance(engine.pid, int)
        finally:
            engine.close()
        assert not engine.alive
        assert active_owned_segments() == []

    @fork_only
    def test_process_engine_model_error_is_recoverable(self):
        def sometimes_broken(batch):
            if batch.shape[0] == 3:
                raise ValueError("bad rows")
            return batch

        engine = ProcessEngine(sometimes_broken, input_shape=(16,),
                               output_shape=(16,), max_rows=8)
        try:
            with pytest.raises(RuntimeError, match="bad rows"):
                engine.predict(_samples(3))
            # The child survived the exception and keeps serving.
            assert engine.alive
            assert np.array_equal(engine.predict(_samples(4)), _samples(4))
        finally:
            engine.close()

    @fork_only
    def test_process_engine_sigkill_raises_worker_died(self):
        slow = _SlowPredict(0.5)
        engine = ProcessEngine(slow, input_shape=(16,),
                               output_shape=(16,), max_rows=8)
        try:
            pid = engine.pid
            killer = threading.Timer(0.1, os.kill, (pid, signal.SIGKILL))
            killer.start()
            with pytest.raises(WorkerDiedError):
                engine.predict(_samples(4))
            killer.cancel()
            assert not engine.alive
            # Respawn forks a fresh child with fresh handshake state.
            assert engine.respawn() is True
            assert np.array_equal(engine.predict(_samples(4)), _samples(4))
        finally:
            engine.close()

    def test_probe_output_shape_validates_batch_axis(self):
        assert probe_output_shape(_echo_predict, (16,)) == (16,)
        with pytest.raises(ValueError, match="batch axis"):
            probe_output_shape(lambda b: np.float32(1.0), (16,))


class _SlowPredict:
    """Module-level picklable slow echo (fork inherits it either way)."""

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def __call__(self, batch):
        time.sleep(self.delay_s)
        return np.asarray(batch, dtype=np.float32)


# --------------------------------------------------------------------------- #
# Fault injection through the full batcher stack
# --------------------------------------------------------------------------- #
class TestFaultInjection:
    def test_thread_worker_crash_fails_inflight_and_respawns(self):
        trigger = threading.Event()

        def unstable(batch):
            if trigger.is_set():
                trigger.clear()
                raise KeyboardInterrupt("simulated worker death")
            return np.asarray(batch, dtype=np.float32)

        batcher = DynamicBatcher(unstable, name="crashy",
                                 policy=BatchingPolicy(max_batch_size=4,
                                                       max_wait_ms=0.5))
        try:
            ok = batcher.submit(_samples(1)[0], timeout=None).result(timeout=10.0)
            assert ok.shape == (1, 16)
            trigger.set()
            with pytest.raises(WorkerDiedError):
                batcher.submit(_samples(1)[0], timeout=None).result(timeout=10.0)
            assert _wait_until(lambda: batcher.alive_workers == 0)
            assert not batcher.worker_alive
            # New work fails loudly instead of hanging on a dead pool.
            with pytest.raises(WorkerDiedError):
                batcher.submit(_samples(1)[0], timeout=None).result(timeout=10.0)
            assert batcher.respawn_workers() == 1
            assert batcher.alive_workers == 1
            again = batcher.submit(_samples(1)[0], timeout=None).result(timeout=10.0)
            assert again.shape == (1, 16)
            assert batcher.stats()["pool"]["respawns_total"] == 1
        finally:
            batcher.close(drain=True)

    @fork_only
    def test_process_worker_sigkill_detected_and_respawned(self):
        batcher = DynamicBatcher(_SlowPredict(0.3), workers=1, mode="process",
                                 input_shape=(16,), name="killpool",
                                 policy=BatchingPolicy(max_batch_size=4,
                                                       max_wait_ms=0.5))
        try:
            sample = _samples(1)[0]
            assert batcher.submit(sample, timeout=None).result(
                timeout=10.0).shape == (1, 16)
            (pid,) = batcher.worker_pids()
            future = batcher.submit(sample, timeout=None)
            time.sleep(0.1)          # let the worker pick the batch up
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerDiedError):
                future.result(timeout=10.0)
            assert _wait_until(lambda: batcher.alive_workers == 0)
            assert batcher.respawn_workers() == 1
            recovered = batcher.submit(sample, timeout=None).result(timeout=10.0)
            assert recovered.shape == (1, 16)
            new_pid = batcher.worker_pids()[0]
            assert new_pid is not None and new_pid != pid
        finally:
            batcher.close(drain=True)
        assert active_owned_segments() == []


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmission:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(kind="nope")
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_watermark=1.5)

    def _stalled_batcher(self, admission, max_queue=4):
        release = threading.Event()

        def slow(batch):
            release.wait(timeout=10.0)
            return np.asarray(batch, dtype=np.float32)

        batcher = DynamicBatcher(
            slow, name="admit",
            policy=BatchingPolicy(max_batch_size=1, max_wait_ms=0.0,
                                  max_queue=max_queue),
            admission=admission)
        return batcher, release

    def test_priority_sheds_low_priority_when_nearly_full(self):
        batcher, release = self._stalled_batcher(
            AdmissionPolicy(kind="priority", shed_watermark=0.5,
                            shed_below_priority=1), max_queue=4)
        try:
            sample = _samples(1)[0]
            futures = [batcher.submit(sample, timeout=None)]  # occupies worker
            time.sleep(0.05)
            futures += [batcher.submit(sample, timeout=None) for _ in range(2)]
            # Queue is at/over the watermark: priority 0 is shed...
            with pytest.raises(LoadShedError):
                batcher.submit(sample, timeout=None, priority=0)
            # ...but priority >= shed_below_priority still gets in.
            futures.append(batcher.submit(sample, timeout=None, priority=1))
            shed = batcher.stats()["admission"]["shed_total"]
            assert shed == 1
        finally:
            release.set()
            batcher.close(drain=True)
        assert all(f.result(timeout=1.0).shape == (1, 16) for f in futures)

    def test_reject_kind_is_default_queue_full_contract(self):
        batcher, release = self._stalled_batcher(AdmissionPolicy(), max_queue=2)
        try:
            sample = _samples(1)[0]
            batcher.submit(sample, timeout=None)
            time.sleep(0.05)
            batcher.submit(sample)
            batcher.submit(sample)
            with pytest.raises(QueueFullError):
                batcher.submit(sample)   # timeout=0.0 -> immediate reject
        finally:
            release.set()
            batcher.close(drain=True)

    def test_load_shed_error_is_a_queue_full_error(self):
        assert issubclass(LoadShedError, QueueFullError)


# --------------------------------------------------------------------------- #
# Response cache
# --------------------------------------------------------------------------- #
class TestResponseCache:
    def test_cache_key_distinguishes_contents_and_shape(self):
        a = _samples(4)
        assert batch_cache_key(a) == batch_cache_key(a.copy())
        b = a.copy()
        b[0, 0] += 1.0
        assert batch_cache_key(a) != batch_cache_key(b)
        assert batch_cache_key(a) != batch_cache_key(a[:2])

    def test_lru_eviction_and_stats(self):
        cache = ResponseCache(capacity=2)
        batches = [_samples(2, seed=i) for i in range(3)]
        for i, batch in enumerate(batches):
            cache.put(batch, np.full((2, 5), float(i), dtype=np.float32))
        assert cache.get(batches[0]) is None        # evicted
        assert cache.get(batches[2])[0, 0] == 2.0
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits_total"] == 1 and stats["misses_total"] == 1

    def test_cached_batcher_hits_are_bit_equal_and_skip_inference(self):
        calls = {"n": 0}

        def counting(batch):
            calls["n"] += 1
            return np.asarray(batch, dtype=np.float32) * 2.0

        batcher = DynamicBatcher(counting, name="cached", cache_size=8)
        try:
            batch = _samples(4)
            first = batcher.submit_batch(batch, timeout=None).result(timeout=10.0)
            after_first = calls["n"]
            second = batcher.submit_batch(batch, timeout=None).result(timeout=10.0)
            assert np.array_equal(first, second)
            assert calls["n"] == after_first     # served from cache
            assert batcher.stats()["cache"]["hits_total"] == 1
        finally:
            batcher.close(drain=True)


# --------------------------------------------------------------------------- #
# SLO controller
# --------------------------------------------------------------------------- #
class TestSLO:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(target_p99_ms=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(target_p99_ms=10.0, headroom=1.5)

    def _controller(self, target_ms=10.0):
        policy = BatchingPolicy(max_batch_size=8, max_wait_ms=2.0)
        slo = SLOPolicy(target_p99_ms=target_ms, min_samples=4)
        return policy, SLOController(policy, slo, MetricsRegistry())

    def test_step_tightens_on_violated_target(self):
        policy, controller = self._controller(target_ms=10.0)
        for _ in range(8):
            controller.observe(0.050)          # 50 ms >> 10 ms target
        assert controller.step() == "tighten"
        assert policy.max_wait_ms < 2.0
        assert policy.max_batch_size < 8

    def test_step_relaxes_with_headroom(self):
        policy, controller = self._controller(target_ms=100.0)
        policy.max_wait_ms = 0.5
        policy.max_batch_size = 2
        for _ in range(8):
            controller.observe(0.001)          # 1 ms << 70 ms relax threshold
        assert controller.step() == "relax"
        assert policy.max_wait_ms > 0.5
        assert policy.max_batch_size > 2

    def test_step_holds_in_deadband_and_below_min_samples(self):
        policy, controller = self._controller(target_ms=10.0)
        controller.observe(0.009)
        assert controller.step() is None        # not enough samples
        for _ in range(8):
            controller.observe(0.0085)          # between 7 ms and 10 ms
        assert controller.step() is None

    def test_knobs_respect_floors_and_ceilings(self):
        policy, controller = self._controller(target_ms=1.0)
        for _ in range(100):
            for _ in range(8):
                controller.observe(1.0)
            controller.step()
        assert policy.max_batch_size >= 1
        assert policy.max_wait_ms >= 0.0

    def test_batcher_wires_slo_from_float_target(self):
        batcher = DynamicBatcher(_echo_predict, name="slo", slo=25.0)
        try:
            batcher.submit_batch(_samples(4), timeout=None).result(timeout=10.0)
            stats = batcher.stats()["slo"]
            assert stats["target_p99_ms"] == 25.0
        finally:
            batcher.close(drain=True)


# --------------------------------------------------------------------------- #
# Stats surface
# --------------------------------------------------------------------------- #
class TestStats:
    def test_pool_sections_present(self):
        batcher = DynamicBatcher(_echo_predict, workers=2, name="statsy",
                                 cache_size=4, slo=50.0)
        try:
            batcher.submit_batch(_samples(4), timeout=None).result(timeout=10.0)
            stats = batcher.stats()
        finally:
            batcher.close(drain=True)
        assert stats["pool"]["size"] == 2
        assert stats["pool"]["mode"] == "thread"
        assert len(stats["workers"]) == 2
        assert {"admitted_total", "rejected_total",
                "shed_total"} <= set(stats["admission"])
        assert "cache" in stats and "slo" in stats
        # Legacy keys survive the refactor.
        for key in ("requests_total", "batches_total", "queue_wait_ms",
                    "compute_ms", "worker"):
            assert key in stats
