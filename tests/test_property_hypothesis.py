"""Property-based tests (hypothesis) for core numerical invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    accumulative_rank,
    scaled_stable_rank,
    singular_values,
    stable_rank,
    svd_factorize,
)
from repro.tensor import Tensor, functional as F

settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def matrices(max_dim=12):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, max_dim), st.integers(2, max_dim)),
        elements=finite_floats,
    )


def vectors(max_len=64):
    return hnp.arrays(dtype=np.float64, shape=st.integers(1, max_len), elements=finite_floats)


class TestStableRankProperties:
    @given(matrices())
    def test_stable_rank_bounded_by_dimensions(self, matrix):
        sr = stable_rank(singular_values(matrix))
        assert 0.0 <= sr <= min(matrix.shape) + 1e-6

    @given(matrices(), st.floats(min_value=0.1, max_value=10.0))
    def test_stable_rank_scale_invariant(self, matrix, scale):
        a = stable_rank(singular_values(matrix))
        b = stable_rank(singular_values(scale * matrix))
        assert abs(a - b) < 1e-6 * max(a, 1.0)

    @given(matrices())
    def test_scaled_stable_rank_respects_cap(self, matrix):
        sigma = singular_values(matrix)
        cap = min(matrix.shape)
        assert scaled_stable_rank(sigma, xi=1e6, cap=cap) <= cap

    @given(matrices(), st.floats(min_value=0.05, max_value=0.95))
    def test_accumulative_rank_in_valid_range(self, matrix, p):
        sigma = singular_values(matrix)
        rank = accumulative_rank(sigma, p=p)
        assert 0 <= rank <= len(sigma)

    @given(matrices(), st.integers(1, 6))
    def test_svd_factorize_error_bounded_by_frobenius_norm(self, matrix, rank):
        u, vt = svd_factorize(matrix, rank)
        error = np.linalg.norm(matrix - u.astype(np.float64) @ vt.astype(np.float64))
        assert error <= np.linalg.norm(matrix) + 1e-3

    @given(matrices())
    def test_svd_full_rank_is_lossless(self, matrix):
        rank = min(matrix.shape)
        u, vt = svd_factorize(matrix, rank)
        np.testing.assert_allclose(u @ vt, matrix, atol=1e-3)


class TestTensorOpProperties:
    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=6), elements=finite_floats))
    def test_sum_matches_numpy(self, array):
        assert np.isclose(Tensor(array).sum().item(), np.float32(array).astype(np.float64).sum(),
                          rtol=1e-3, atol=1e-3)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2, max_side=8),
                      elements=finite_floats))
    def test_softmax_rows_are_distributions(self, array):
        probs = F.softmax(Tensor(array), axis=-1).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-4)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=2, max_side=8),
                      elements=finite_floats))
    def test_relu_idempotent(self, array):
        once = Tensor(array).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2, max_side=6),
                      elements=finite_floats))
    def test_transpose_involution(self, array):
        np.testing.assert_allclose(Tensor(array).T.T.data, np.asarray(array, dtype=np.float32))

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                      elements=finite_floats),
           hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                      elements=finite_floats))
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(vectors())
    def test_backward_of_sum_is_ones(self, vector):
        x = Tensor(vector, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(vector, dtype=np.float32))
