"""Span tracing (repro.telemetry.tracing): nesting, thread lanes, export
round-trips, cross-process merge, and the near-zero-disabled guarantee.

The contracts under test (DESIGN.md §14):

* ``span()`` while disabled returns one shared no-op and records nothing;
* nesting is tracked per thread — children carry ``parent``/``depth`` and the
  ordering of recorded events is deterministic on one thread (children close
  before parents);
* ``write_trace`` emits Chrome trace-event JSON or a JSONL event log that
  ``load_trace`` reads back losslessly (and plain ``json.load`` validates the
  Chrome schema for external tools);
* a 2-rank ``dp_mode="process"`` run merges worker timelines into the parent
  session with one labeled lane per rank and ≥95% step coverage.
"""

import json
import threading

import numpy as np
import pytest

from repro.telemetry import tracing
from repro.telemetry.tracing import (
    TRACE_SCHEMA_VERSION,
    convert_trace,
    format_summary,
    load_trace,
    record_span,
    span,
    summarize_trace,
    write_trace,
)


@pytest.fixture(autouse=True)
def tracing_disabled_after():
    """No test may leak an enabled session into the rest of the suite."""
    yield
    tracing.disable()


def events_named(session, name):
    return [ev for ev in session.events if ev[0] == name]


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing.enabled()
        first = span("anything")
        second = span("other", cat="x", key=1)
        assert first is second  # the singleton: no allocation per call

    def test_disabled_record_span_is_silent(self):
        record_span("step", 0.0, 1.0)  # must not raise, must not record
        assert tracing.current_session() is None

    def test_disabled_spans_record_nothing_once_reenabled(self):
        with span("ghost"):
            pass
        session = tracing.enable("t")
        assert len(session) == 0


class TestNesting:
    def test_child_carries_parent_and_depth(self):
        session = tracing.enable("t")
        with span("step"):
            with span("forward"):
                pass
        tracing.disable()
        (forward,) = events_named(session, "forward")
        (step,) = events_named(session, "step")
        assert forward[7] == "step" and forward[6] == 1  # parent, depth
        assert step[7] is None and step[6] == 0

    def test_children_close_before_parents_deterministically(self):
        session = tracing.enable("t")
        with span("a"):
            with span("b"):
                with span("c"):
                    pass
        tracing.disable()
        assert [ev[0] for ev in session.events] == ["c", "b", "a"]

    def test_sibling_order_preserved(self):
        session = tracing.enable("t")
        with span("step"):
            for name in ("data_wait", "forward", "backward"):
                with span(name):
                    pass
        tracing.disable()
        assert [ev[0] for ev in session.events] == \
            ["data_wait", "forward", "backward", "step"]

    def test_record_span_with_explicit_parent(self):
        session = tracing.enable("t")
        record_span("forward", 1.0, 2.0, cat="train", parent="step", batch=3)
        tracing.disable()
        (ev,) = session.events
        assert ev[7] == "step" and ev[6] == 1
        assert ev[3] == pytest.approx(1e9)  # duration in ns
        assert ev[8] == {"batch": 3}

    def test_threads_get_independent_stacks_and_lanes(self):
        session = tracing.enable("t")
        barrier = threading.Barrier(2)

        def work(tag):
            barrier.wait()
            with span("step"):
                with span(tag):
                    pass

        threads = [threading.Thread(target=work, args=(f"phase{i}",), name=f"w{i}")
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracing.disable()
        # Each thread nested correctly regardless of interleaving...
        for i in range(2):
            (child,) = events_named(session, f"phase{i}")
            assert child[7] == "step" and child[6] == 1
        # ...and events landed on two distinct lanes with registered names.
        tids = {ev[5] for ev in session.events}
        assert len(tids) == 2
        labels = {m["args"]["name"] for m in session.lane_metadata()
                  if m["name"] == "thread_name"}
        assert {"w0", "w1"} <= labels


class TestExportRoundTrip:
    def _record(self):
        session = tracing.enable("roundtrip")
        with span("step", cat="train", batch=0):
            with span("forward"):
                pass
        record_span("optimizer", 10.0, 10.5, parent="step")
        tracing.disable()
        return session

    def test_chrome_json_schema(self, tmp_path):
        session = self._record()
        path = str(tmp_path / "trace.json")
        written = write_trace(path, session)
        assert written == 3
        document = json.load(open(path))  # what Perfetto would parse
        assert document["displayTimeUnit"] == "ms"
        other = document["otherData"]
        assert other["schema"] == "repro.telemetry.trace"
        assert other["schema_version"] == TRACE_SCHEMA_VERSION
        assert other["session"] == "roundtrip"
        complete = [ev for ev in document["traceEvents"] if ev["ph"] == "X"]
        assert len(complete) == 3
        for ev in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(ev)
        meta = [ev for ev in document["traceEvents"] if ev["ph"] == "M"]
        assert any(m["name"] == "process_name" for m in meta)
        assert any(m["name"] == "thread_name" for m in meta)

    def test_chrome_load_trace_roundtrip(self, tmp_path):
        session = self._record()
        path = str(tmp_path / "trace.json")
        write_trace(path, session)
        events, meta = load_trace(path)
        assert meta["session"] == "roundtrip"
        by_name = {ev["name"]: ev for ev in events}
        assert by_name["forward"]["parent"] == "step"
        assert by_name["forward"]["depth"] == 1
        assert by_name["optimizer"]["dur_us"] == pytest.approx(5e5)
        assert meta["lanes"]  # labeled lanes survive the round-trip

    def test_jsonl_roundtrip(self, tmp_path):
        session = self._record()
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(path, session)
        assert written == 3
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == "repro.telemetry.trace"
        assert len(lines) == 1 + written  # header + one record per event
        events, meta = load_trace(path)
        assert {ev["name"] for ev in events} == {"step", "forward", "optimizer"}
        assert meta["schema_version"] == TRACE_SCHEMA_VERSION

    def test_convert_between_formats_losslessly(self, tmp_path):
        session = self._record()
        chrome = str(tmp_path / "a.json")
        jsonl = str(tmp_path / "b.jsonl")
        back = str(tmp_path / "c.json")
        write_trace(chrome, session)
        assert convert_trace(chrome, jsonl) == 3
        assert convert_trace(jsonl, back) == 3
        original, _ = load_trace(chrome)
        roundtripped, _ = load_trace(back)
        key = lambda ev: (ev["name"], ev["ts_us"])  # noqa: E731
        assert sorted(original, key=key) == sorted(roundtripped, key=key)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = str(tmp_path / "other.json")
        json.dump({"not": "a trace"}, open(path, "w"))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_write_without_session_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "x.json"))


class TestSummarize:
    def test_coverage_fraction(self):
        events = [
            {"name": "step", "cat": "", "ts_us": 0.0, "dur_us": 100.0,
             "pid": 1, "tid": 1, "depth": 0, "parent": None},
            {"name": "forward", "cat": "", "ts_us": 0.0, "dur_us": 60.0,
             "pid": 1, "tid": 1, "depth": 1, "parent": "step"},
            {"name": "backward", "cat": "", "ts_us": 60.0, "dur_us": 30.0,
             "pid": 1, "tid": 1, "depth": 1, "parent": "step"},
            # Not a step child: must not count toward coverage.
            {"name": "eval", "cat": "", "ts_us": 100.0, "dur_us": 50.0,
             "pid": 1, "tid": 1, "depth": 0, "parent": None},
        ]
        summary = summarize_trace(events)
        assert summary["events"] == 4
        assert summary["lanes"] == 1
        assert summary["coverage"]["fraction"] == pytest.approx(0.9)
        assert summary["coverage"]["by_phase"]["forward"] == pytest.approx(0.6)
        assert summary["wall_ms"] == pytest.approx(0.15)

    def test_phases_sorted_by_total_time(self):
        events = [
            {"name": "small", "cat": "", "ts_us": 0.0, "dur_us": 1.0,
             "pid": 1, "tid": 1, "depth": 0, "parent": None},
            {"name": "big", "cat": "", "ts_us": 0.0, "dur_us": 100.0,
             "pid": 1, "tid": 1, "depth": 0, "parent": None},
        ]
        assert list(summarize_trace(events)["phases"]) == ["big", "small"]

    def test_empty_trace_summarizes_without_coverage(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["wall_ms"] == 0.0
        assert "coverage" not in summary
        assert "step coverage" not in format_summary(summary)

    def test_format_summary_reports_coverage_line(self):
        events = [
            {"name": "step", "cat": "", "ts_us": 0.0, "dur_us": 10.0,
             "pid": 1, "tid": 1, "depth": 0, "parent": None},
            {"name": "forward", "cat": "", "ts_us": 0.0, "dur_us": 10.0,
             "pid": 1, "tid": 1, "depth": 1, "parent": "step"},
        ]
        text = format_summary(summarize_trace(events))
        assert "step coverage: 100.0%" in text


class TestCrossProcessMerge:
    def test_absorb_merges_worker_payload(self):
        session = tracing.enable("parent")
        with span("allreduce"):
            pass
        payload = {
            "label": "rank 1", "pid": 99999,
            "threads": {"99999:1": "MainThread"},
            "processes": {99999: "rank 1"},
            "events": [("step", "dp", 1000, 500, 99999, 1, 0, None, None)],
        }
        assert session.absorb(payload) == 1
        tracing.disable()
        assert len(session) == 2
        labels = {m["args"]["name"] for m in session.lane_metadata()
                  if m["name"] == "process_name"}
        assert {"parent", "rank 1"} <= labels

    def test_drain_payload_detaches_events(self):
        session = tracing.enable("worker")
        with span("step"):
            pass
        payload = session.drain_payload()
        tracing.disable()
        assert len(payload["events"]) == 1
        assert len(session) == 0  # drained, not copied
        assert all(isinstance(k, str) for k in payload["threads"])  # picklable

    def test_two_rank_process_mode_merged_timeline(self, tmp_path):
        """The acceptance path: per-rank lanes under dp_mode=process and
        step coverage ≥95% in the merged trace."""
        from repro.data import ArrayDataset, PipelineLoader, build_replica_loaders
        from repro.distributed import DataParallelTrainer
        from repro.models import build_model
        from repro.optim import SGD
        from repro.utils import get_rng, seed_everything

        seed_everything(0)
        rng = get_rng(offset=5)
        images = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 4, size=32).astype(np.int64)
        dataset = ArrayDataset(images, labels)
        model = build_model("resnet18", num_classes=4, width_mult=0.125,
                            small_input=True, rng=get_rng(offset=1))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = DataParallelTrainer(
            model, optimizer, PipelineLoader(dataset, 8, shuffle=True),
            world_size=2, mode="process",
            replica_loaders=build_replica_loaders(dataset, 8, 2))
        session = tracing.enable("trainer")
        try:
            trainer.train_epoch()
        finally:
            tracing.disable()
            trainer.shutdown()

        path = str(tmp_path / "dp.json")
        write_trace(path, session)
        events, meta = load_trace(path)
        lane_labels = {lane["label"] for lane in meta["lanes"]
                       if lane["kind"] == "process_name"}
        assert {"trainer", "rank 0", "rank 1"} <= lane_labels
        # Worker step spans landed on both rank pids.
        step_pids = {ev["pid"] for ev in events if ev["name"] == "step"}
        assert len(step_pids) == 2
        summary = summarize_trace(events)
        assert {"step", "forward", "backward", "allreduce",
                "optimizer"} <= set(summary["phases"])
        assert summary["coverage"]["fraction"] >= 0.95
