"""Latency/batch-size trackers (repro.profiling.latency): streaming stats,
windowing, and thread safety under concurrent observers."""

import threading

import numpy as np
import pytest

from repro.profiling import BatchSizeHistogram, LatencyTracker


class TestLatencyTracker:
    def test_empty_tracker_reports_zeros(self):
        tracker = LatencyTracker()
        assert tracker.count == 0
        assert tracker.percentile(50) == 0.0
        summary = tracker.summary()
        assert summary["count"] == 0.0
        assert summary["p99"] == 0.0

    def test_percentiles_match_numpy(self):
        tracker = LatencyTracker()
        values = np.linspace(0.001, 0.1, 200)
        for value in values:
            tracker.observe(value)
        assert tracker.count == 200
        for q in (50, 95, 99):
            assert tracker.percentile(q) == pytest.approx(np.percentile(values, q))

    def test_summary_in_milliseconds(self):
        tracker = LatencyTracker()
        tracker.observe(0.25)
        summary = tracker.summary(unit="ms")
        assert summary["mean"] == pytest.approx(250.0)
        assert summary["max"] == pytest.approx(250.0)

    def test_window_keeps_percentiles_recent_but_count_lifetime(self):
        tracker = LatencyTracker(window=10)
        for _ in range(100):
            tracker.observe(1.0)
        for _ in range(10):
            tracker.observe(5.0)    # the window now holds only 5.0s
        assert tracker.count == 110
        assert tracker.percentile(50) == pytest.approx(5.0)

    def test_reset(self):
        tracker = LatencyTracker()
        tracker.observe(1.0)
        tracker.reset()
        assert tracker.count == 0
        assert tracker.summary()["max"] == 0.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            LatencyTracker(window=0)

    def test_empty_tracker_every_percentile_is_zero_not_nan(self):
        tracker = LatencyTracker()
        for q in (0, 50, 99, 100):
            value = tracker.percentile(q)
            assert value == 0.0 and value == value  # defined, not nan
        assert tracker.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_is_every_percentile(self):
        tracker = LatencyTracker()
        tracker.observe(0.042)
        for q in (0, 50, 99, 100):
            assert tracker.percentile(q) == pytest.approx(0.042)
        summary = tracker.summary()
        assert summary["p50"] == summary["p99"] == pytest.approx(0.042)

    def test_single_sample_windowed_tracker(self):
        tracker = LatencyTracker(window=1)
        tracker.observe(1.0)
        tracker.observe(3.0)  # window now holds only 3.0
        assert tracker.percentile(50) == pytest.approx(3.0)
        assert tracker.count == 2

    def test_nonfinite_observations_rejected(self):
        tracker = LatencyTracker()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                tracker.observe(bad)
        assert tracker.count == 0  # nothing poisoned the window

    def test_out_of_range_quantile_rejected(self):
        tracker = LatencyTracker()
        tracker.observe(1.0)
        for bad in (-1, 101, 1000):
            with pytest.raises(ValueError):
                tracker.percentile(bad)
        with pytest.raises(ValueError):
            tracker.percentiles([50, 200])

    def test_concurrent_observers_lose_nothing(self):
        tracker = LatencyTracker(window=1 << 14)

        def observe_many():
            for _ in range(1000):
                tracker.observe(0.001)

        threads = [threading.Thread(target=observe_many) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.count == 8000


class TestBatchSizeHistogram:
    def test_power_of_two_buckets(self):
        histogram = BatchSizeHistogram(max_batch_size=8)
        for size in (1, 2, 2, 3, 8):
            histogram.observe(size)
        buckets = histogram.as_dict()
        assert buckets["<=1"] == 1
        assert buckets["<=2"] == 2
        assert buckets["<=4"] == 1
        assert buckets["<=8"] == 1
        assert buckets[">8"] == 0

    def test_oversized_batches_fall_in_overflow_bucket(self):
        histogram = BatchSizeHistogram(max_batch_size=4)
        histogram.observe(9)
        assert histogram.as_dict()[">4"] == 1

    def test_mean_batch_size(self):
        histogram = BatchSizeHistogram(max_batch_size=32)
        histogram.observe(4)
        histogram.observe(12)
        assert histogram.batches == 2
        assert histogram.samples == 16
        assert histogram.mean_batch_size() == pytest.approx(8.0)

    def test_rejects_nonpositive_batch(self):
        histogram = BatchSizeHistogram()
        with pytest.raises(ValueError):
            histogram.observe(0)

    def test_rejects_nonpositive_max_batch_size(self):
        for bad in (0, -4):
            with pytest.raises(ValueError):
                BatchSizeHistogram(max_batch_size=bad)

    def test_max_batch_size_one_still_buckets(self):
        histogram = BatchSizeHistogram(max_batch_size=1)
        histogram.observe(1)
        histogram.observe(2)
        buckets = histogram.as_dict()
        assert buckets["<=1"] == 1 and buckets[">1"] == 1

    def test_empty_histogram_mean_is_zero(self):
        assert BatchSizeHistogram().mean_batch_size() == 0.0


class TestShim:
    def test_trackers_are_the_telemetry_classes(self):
        # repro.profiling.latency re-exports from repro.telemetry.metrics so
        # every historical import site shares one implementation.
        from repro.profiling import latency
        from repro.telemetry import metrics

        assert latency.LatencyTracker is metrics.LatencyTracker
        assert latency.BatchSizeHistogram is metrics.BatchSizeHistogram
        assert latency.DEFAULT_PERCENTILES == metrics.DEFAULT_PERCENTILES
