"""Noise-aware compare classifier (repro.bench.compare).

Covers the satellite-3 checklist explicitly: improved/regressed/within-noise
verdicts at the threshold boundary, missing-metric and schema-version-mismatch
errors, and exit-code behavior.
"""

import pytest

from repro.bench.compare import (
    VERDICT_IMPROVED,
    VERDICT_REGRESSED,
    VERDICT_WITHIN_NOISE,
    CompareError,
    classify_metric,
    compare_results,
    format_markdown,
)
from repro.bench.contract import SCHEMA_VERSION, build_result


def _entry(median, *, rel_iqr=0.0, higher_is_better=True, unit="x"):
    return {"median": median, "rel_iqr": rel_iqr,
            "higher_is_better": higher_is_better, "unit": unit}


def _result(suite="demo", **metric_medians):
    metrics = {name: {"unit": "x", "higher_is_better": True,
                      "samples": [float(value)]}
               for name, value in metric_medians.items()}
    return build_result(suite, metrics, backend="numpy", commit="deadbeef")


class TestClassifyMetric:
    def test_improvement_beyond_threshold(self):
        v = classify_metric("m", _entry(100.0), _entry(120.0), 0.1)
        assert v.verdict == VERDICT_IMPROVED
        assert v.delta_rel == pytest.approx(0.2)

    def test_regression_beyond_threshold(self):
        v = classify_metric("m", _entry(100.0), _entry(80.0), 0.1)
        assert v.verdict == VERDICT_REGRESSED

    def test_small_delta_is_within_noise(self):
        v = classify_metric("m", _entry(100.0), _entry(104.0), 0.1)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_delta_exactly_at_threshold_is_within_noise(self):
        # The boundary belongs to the noise band: |delta| <= threshold.
        v = classify_metric("m", _entry(100.0), _entry(110.0), 0.1)
        assert v.delta_rel == pytest.approx(0.1)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_delta_just_past_threshold_is_improved(self):
        v = classify_metric("m", _entry(100.0), _entry(110.001), 0.1)
        assert v.verdict == VERDICT_IMPROVED

    def test_negative_delta_exactly_at_threshold_is_within_noise(self):
        v = classify_metric("m", _entry(100.0), _entry(90.0), 0.1)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_lower_is_better_flips_direction(self):
        down = classify_metric("lat", _entry(10.0, higher_is_better=False),
                               _entry(8.0, higher_is_better=False), 0.1)
        up = classify_metric("lat", _entry(10.0, higher_is_better=False),
                             _entry(12.0, higher_is_better=False), 0.1)
        assert down.verdict == VERDICT_IMPROVED
        assert up.verdict == VERDICT_REGRESSED

    def test_noisy_base_widens_band(self):
        # +20% move, but the base measured 30% run-to-run spread.
        v = classify_metric("m", _entry(100.0, rel_iqr=0.3), _entry(120.0), 0.1)
        assert v.effective_threshold == pytest.approx(0.3)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_noisy_candidate_widens_band(self):
        v = classify_metric("m", _entry(100.0), _entry(120.0, rel_iqr=0.25), 0.1)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_noise_aware_false_ignores_rel_iqr(self):
        v = classify_metric("m", _entry(100.0, rel_iqr=0.3), _entry(120.0), 0.1,
                            noise_aware=False)
        assert v.effective_threshold == pytest.approx(0.1)
        assert v.verdict == VERDICT_IMPROVED

    def test_zero_base_zero_candidate_is_within_noise(self):
        v = classify_metric("m", _entry(0.0), _entry(0.0), 0.1)
        assert v.verdict == VERDICT_WITHIN_NOISE

    def test_zero_base_nonzero_candidate_is_directional(self):
        v = classify_metric("m", _entry(0.0), _entry(5.0), 0.1)
        assert v.verdict == VERDICT_IMPROVED
        assert v.delta_rel == float("inf")


class TestCompareResults:
    def test_verdict_per_shared_metric(self):
        base = _result(a=100.0, b=100.0, c=100.0)
        cand = _result(a=150.0, b=60.0, c=101.0)
        report = compare_results(base, cand, noise_threshold=0.1)
        verdicts = {v.name: v.verdict for v in report.verdicts}
        assert verdicts == {"a": VERDICT_IMPROVED, "b": VERDICT_REGRESSED,
                            "c": VERDICT_WITHIN_NOISE}

    def test_exit_code_nonzero_iff_regression(self):
        base = _result(a=100.0)
        assert compare_results(base, _result(a=60.0)).exit_code == 1
        assert compare_results(base, _result(a=150.0)).exit_code == 0
        assert compare_results(base, _result(a=101.0)).exit_code == 0

    def test_schema_version_mismatch_is_an_error(self):
        base, cand = _result(a=1.0), _result(a=1.0)
        cand["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(CompareError, match="schema_version"):
            compare_results(base, cand)

    def test_suite_mismatch_is_an_error(self):
        with pytest.raises(CompareError, match="suite mismatch"):
            compare_results(_result(suite="alpha", a=1.0),
                            _result(suite="beta", a=1.0))

    def test_metric_missing_from_candidate_is_an_error(self):
        with pytest.raises(CompareError, match="missing metrics.*'b'"):
            compare_results(_result(a=1.0, b=2.0), _result(a=1.0))

    def test_new_candidate_metrics_are_listed_not_compared(self):
        report = compare_results(_result(a=1.0), _result(a=1.0, extra=9.0))
        assert report.new_metrics == ["extra"]
        assert [v.name for v in report.verdicts] == ["a"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="noise_threshold"):
            compare_results(_result(a=1.0), _result(a=1.0), noise_threshold=-0.1)

    def test_backend_difference_is_noted(self):
        base, cand = _result(a=1.0), _result(a=1.0)
        cand["backend"] = "numpy-fast"
        report = compare_results(base, cand)
        assert any("backends differ" in note for note in report.notes)

    def test_as_dict_round_trip_fields(self):
        report = compare_results(_result(a=100.0), _result(a=50.0))
        data = report.as_dict()
        assert data["regressed"] == ["a"]
        assert data["exit_code"] == 1
        assert data["verdicts"][0]["verdict"] == VERDICT_REGRESSED


class TestFormatMarkdown:
    def test_table_shape_and_verdict_rows(self):
        report = compare_results(_result(a=100.0, b=100.0),
                                 _result(a=150.0, b=50.0))
        text = format_markdown(report)
        assert "| metric | base | candidate | Δ | noise band | verdict |" in text
        assert "✅ improved" in text
        assert "❌ regressed" in text
        assert "**1 regressed**" in text

    def test_zero_base_delta_renders_na(self):
        base, cand = _result(a=0.0), _result(a=5.0)
        text = format_markdown(compare_results(base, cand))
        assert "n/a" in text
