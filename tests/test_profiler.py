"""Tests for Algorithm 2 (layer-stack profiling / K selection)."""

import numpy as np
import pytest

from repro import nn
from repro.core import profile_layer_stacks
from repro.core.profiler import _temporarily_factorized
from repro.models import resnet18
from repro.profiling import CPU, V100


@pytest.fixture(scope="module")
def paper_scale_profile():
    """Roofline profile of a full-width ResNet-18 at the paper's batch size.

    Module-scoped because it is the slowest fixture in the suite and several
    tests only inspect different aspects of the same result.
    """
    model = resnet18(num_classes=10, width_mult=1.0, small_input=True)
    x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
    y = np.zeros(2, dtype=np.int64)
    return profile_layer_stacks(model, model.layer_stack_paths(), (x, y),
                                mode="roofline", device=V100, batch_scale=512.0)


class TestTemporaryFactorization:
    def test_model_restored_after_context(self, rng):
        model = resnet18(num_classes=4, width_mult=0.125)
        paths = model.layer_stack_paths()["layer4"]
        originals = {p: model.get_submodule(p) for p in paths}
        with _temporarily_factorized(model, paths, rank_ratio=0.25):
            assert any(type(model.get_submodule(p)).__name__.startswith("LowRank") for p in paths)
        for path, module in originals.items():
            assert model.get_submodule(path) is module

    def test_model_output_unchanged_after_restore(self, rng):
        model = resnet18(num_classes=4, width_mult=0.125)
        model.eval()
        x = rng.random((1, 3, 16, 16)).astype(np.float32)
        before = model(x).data.copy()
        with _temporarily_factorized(model, model.layer_stack_paths()["layer3"], 0.25):
            pass
        np.testing.assert_allclose(model(x).data, before, atol=1e-6)

    def test_non_factorizable_paths_skipped(self):
        model = resnet18(num_classes=4, width_mult=0.125)
        with _temporarily_factorized(model, ["bn1"], 0.25):
            assert isinstance(model.get_submodule("bn1"), nn.BatchNorm2d)


class TestPaperScaleProfiling:
    def test_first_stack_has_lowest_speedup(self, paper_scale_profile):
        """Figure 4: the first ResNet-18 stack gains the least from factorization."""
        table = paper_scale_profile.speedup_table()
        assert table["layer1"] == min(table.values())

    def test_speedups_increase_with_depth(self, paper_scale_profile):
        table = paper_scale_profile.speedup_table()
        values = [table[f"layer{i}"] for i in range(1, 5)]
        assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))

    def test_first_stack_excluded_at_paper_threshold(self, paper_scale_profile):
        assert "layer1" in paper_scale_profile.skip_stacks
        assert set(paper_scale_profile.factorize_stacks) == {"layer2", "layer3", "layer4"}

    def test_k_hat_counts_leading_full_rank_layers(self, paper_scale_profile):
        skipped = len(paper_scale_profile.skipped_layer_paths)
        assert paper_scale_profile.k_hat == 1 + skipped
        assert paper_scale_profile.k_hat >= 5   # conv1 + the 4 convs of stack 1

    def test_deeper_stacks_beat_threshold(self, paper_scale_profile):
        table = paper_scale_profile.speedup_table()
        assert table["layer4"] > 1.5


class TestProfilingMechanics:
    def test_contiguous_prefix_forces_deeper_stacks(self):
        """Once a stack passes, every deeper stack is factorized even if it is slow."""
        model = resnet18(num_classes=4, width_mult=0.125, small_input=True)
        x = np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32)
        y = np.zeros(2, dtype=np.int64)
        result = profile_layer_stacks(model, model.layer_stack_paths(), (x, y),
                                      mode="roofline", device=V100, batch_scale=512.0,
                                      speedup_threshold=0.5, contiguous_prefix=True)
        assert result.skip_stacks == []

    def test_independent_mode_judges_each_stack(self):
        model = resnet18(num_classes=4, width_mult=0.125, small_input=True)
        x = np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32)
        y = np.zeros(2, dtype=np.int64)
        result = profile_layer_stacks(model, model.layer_stack_paths(), (x, y),
                                      mode="roofline", device=V100,
                                      speedup_threshold=10.0, contiguous_prefix=False)
        assert result.factorize_stacks == []
        assert result.k_hat == 1 + sum(len(v) for v in model.layer_stack_paths().values())

    def test_wallclock_mode_runs(self):
        model = resnet18(num_classes=4, width_mult=0.125, small_input=True)
        x = np.random.default_rng(0).random((2, 3, 16, 16)).astype(np.float32)
        y = np.zeros(2, dtype=np.int64)
        stacks = {"layer4": model.layer_stack_paths()["layer4"]}
        result = profile_layer_stacks(model, stacks, (x, y), mode="wallclock", iterations=1)
        assert result.stack_profiles[0].full_rank_time > 0

    def test_unknown_mode_raises(self):
        model = resnet18(num_classes=4, width_mult=0.125)
        x = np.zeros((1, 3, 16, 16), dtype=np.float32)
        with pytest.raises(KeyError):
            profile_layer_stacks(model, model.layer_stack_paths(), (x, np.zeros(1, dtype=int)),
                                 mode="gpu")

    def test_cpu_device_less_picky_than_gpu(self):
        """On the CPU spec (tiny saturation constants) even the first stack can win."""
        model = resnet18(num_classes=10, width_mult=1.0, small_input=True)
        x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
        y = np.zeros(2, dtype=np.int64)
        stacks = {"layer1": model.layer_stack_paths()["layer1"]}
        cpu = profile_layer_stacks(model, stacks, (x, y), mode="roofline", device=CPU,
                                   batch_scale=512.0)
        gpu = profile_layer_stacks(model, stacks, (x, y), mode="roofline", device=V100,
                                   batch_scale=512.0)
        assert cpu.speedup_table()["layer1"] > gpu.speedup_table()["layer1"]
