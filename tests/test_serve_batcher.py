"""Dynamic micro-batching engine (repro.serve.batcher): coalescing policy,
backpressure, shutdown semantics, and the bit-parity guarantee."""

import threading
import time

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import (
    BatcherClosedError,
    BatchingPolicy,
    DynamicBatcher,
    Predictor,
    QueueFullError,
)
from repro.tensor import no_grad
from repro.utils import get_rng, seed_everything


def _mlp_predictor():
    seed_everything(7)
    model = build_model("mlp", in_features=16, hidden_sizes=[32, 32], num_classes=5)
    model.eval()
    return Predictor(model)


def _echo_predict(batch):
    """Identity 'model': returns its input (keeps engine tests instant)."""
    return np.asarray(batch, dtype=np.float32)


class TestPolicy:
    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_ms=-1.0)

    def test_rejects_nonpositive_queue(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_queue=0)


class TestCoalescing:
    def test_coalesces_waiting_requests_into_one_batch(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=8, max_wait_ms=50.0)) as batcher:
            x = get_rng(offset=1).standard_normal((8, 4)).astype(np.float32)
            futures = [batcher.submit(x[i]) for i in range(8)]
            rows = np.concatenate([f.result(timeout=10.0) for f in futures], axis=0)
            np.testing.assert_array_equal(rows, x)
        stats = batcher.stats()
        assert stats["requests_total"] == 8
        # The first request may execute alone before the others enqueue, but
        # coalescing must kick in: far fewer batches than requests.
        assert stats["batches_total"] <= 4
        assert stats["mean_batch_size"] >= 2.0

    def test_empty_queue_blocks_without_spinning_and_recovers(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=4, max_wait_ms=1.0)) as batcher:
            time.sleep(0.1)                       # worker idles on an empty queue
            assert batcher.stats()["batches_total"] == 0
            out = batcher.submit(np.ones(3, dtype=np.float32)).result(timeout=5.0)
            np.testing.assert_array_equal(out, np.ones((1, 3), dtype=np.float32))

    def test_max_wait_bounds_latency_for_lone_request(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=64, max_wait_ms=20.0)) as batcher:
            start = time.perf_counter()
            batcher.submit(np.zeros(2, dtype=np.float32)).result(timeout=5.0)
            elapsed = time.perf_counter() - start
            assert elapsed < 1.0                  # did not wait for 63 companions

    def test_request_larger_than_max_batch_is_chunked(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=4, max_wait_ms=1.0)) as batcher:
            x = get_rng(offset=2).standard_normal((11, 3)).astype(np.float32)
            out = batcher.submit_batch(x).result(timeout=10.0)
            np.testing.assert_array_equal(out, x)
            hist = batcher.stats()["batch_size_histogram"]
            assert hist[">4"] >= 1                # recorded as one oversized batch

    def test_multi_sample_requests_never_split_across_batches(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=4, max_wait_ms=50.0)) as batcher:
            a = batcher.submit_batch(np.full((3, 2), 1.0, dtype=np.float32))
            b = batcher.submit_batch(np.full((3, 2), 2.0, dtype=np.float32))
            np.testing.assert_array_equal(a.result(timeout=5.0), np.full((3, 2), 1.0))
            np.testing.assert_array_equal(b.result(timeout=5.0), np.full((3, 2), 2.0))

    def test_synchronous_call_convenience(self):
        with DynamicBatcher(_echo_predict) as batcher:
            x = np.arange(6, dtype=np.float32).reshape(2, 3)
            np.testing.assert_array_equal(batcher(x), x)


class TestBackpressure:
    def test_queue_full_raises(self):
        release = threading.Event()

        def slow_predict(batch):
            release.wait(timeout=10.0)
            return np.asarray(batch)

        batcher = DynamicBatcher(slow_predict,
                                 BatchingPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=2))
        try:
            sample = np.zeros(2, dtype=np.float32)
            batcher.submit(sample)                 # taken by the worker, blocks
            time.sleep(0.05)
            batcher.submit(sample)                 # queue slot 1
            batcher.submit(sample)                 # queue slot 2
            with pytest.raises(QueueFullError):
                batcher.submit(sample)             # over capacity
            assert batcher.stats()["errors_total"] >= 1
        finally:
            release.set()
            batcher.close(drain=True)

    def test_submit_with_timeout_waits_for_space(self):
        release = threading.Event()

        def slow_predict(batch):
            release.wait(timeout=10.0)
            return np.asarray(batch)

        batcher = DynamicBatcher(slow_predict,
                                 BatchingPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=1))
        try:
            sample = np.zeros(2, dtype=np.float32)
            batcher.submit(sample)
            time.sleep(0.05)
            batcher.submit(sample)                 # fills the queue
            threading.Timer(0.1, release.set).start()
            future = batcher.submit(sample, timeout=5.0)   # blocks until space frees
            future.result(timeout=10.0)
        finally:
            release.set()
            batcher.close(drain=True)


class TestShutdown:
    def test_close_drains_in_flight_requests(self):
        batcher = DynamicBatcher(_echo_predict,
                                 BatchingPolicy(max_batch_size=2, max_wait_ms=0.0, max_queue=64))
        x = get_rng(offset=3).standard_normal((16, 3)).astype(np.float32)
        futures = [batcher.submit(x[i]) for i in range(16)]
        batcher.close(drain=True)
        rows = np.concatenate([f.result(timeout=5.0) for f in futures], axis=0)
        np.testing.assert_array_equal(rows, x)

    def test_close_without_drain_fails_pending_futures(self):
        release = threading.Event()

        def slow_predict(batch):
            release.wait(timeout=10.0)
            return np.asarray(batch)

        batcher = DynamicBatcher(slow_predict,
                                 BatchingPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=16))
        first = batcher.submit(np.zeros(2, dtype=np.float32))
        time.sleep(0.05)                           # worker picks up the first request
        pending = [batcher.submit(np.zeros(2, dtype=np.float32)) for _ in range(4)]
        release.set()
        batcher.close(drain=False)
        first.result(timeout=5.0)                  # in-flight request still completes
        for future in pending:
            with pytest.raises(BatcherClosedError):
                future.result(timeout=5.0)

    def test_submit_after_close_raises(self):
        batcher = DynamicBatcher(_echo_predict)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(np.zeros(2, dtype=np.float32))

    def test_close_is_idempotent(self):
        batcher = DynamicBatcher(_echo_predict)
        batcher.close()
        batcher.close()


class TestErrorPropagation:
    def test_predictor_exception_reaches_every_caller(self):
        def broken_predict(batch):
            raise RuntimeError("kernel exploded")

        with DynamicBatcher(broken_predict,
                            BatchingPolicy(max_batch_size=4, max_wait_ms=20.0)) as batcher:
            futures = [batcher.submit(np.zeros(2, dtype=np.float32)) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="kernel exploded"):
                    future.result(timeout=5.0)
            assert batcher.stats()["errors_total"] == 3
        # The worker survives the error and the batcher still shuts down cleanly.


class TestConcurrentProducers:
    def test_many_threads_all_get_their_own_answer(self):
        predictor = _mlp_predictor()
        x = get_rng(offset=4).standard_normal((48, 16)).astype(np.float32)
        # The guarantee under concurrency is bit-parity with one-at-a-time
        # serving (the canonical reference), whatever batches actually form.
        expected = np.concatenate([predictor(x[i:i + 1]) for i in range(48)], axis=0)
        results = [None] * 48
        with DynamicBatcher(predictor,
                            BatchingPolicy(max_batch_size=8, max_wait_ms=5.0)) as batcher:
            def producer(i):
                results[i] = batcher.submit(x[i]).result(timeout=30.0)[0]

            threads = [threading.Thread(target=producer, args=(i,)) for i in range(48)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        np.testing.assert_array_equal(np.stack(results), expected)


class TestBitParity:
    """Batched and one-at-a-time serving must produce identical bits."""

    def test_batched_equals_one_at_a_time_mlp(self):
        predictor = _mlp_predictor()
        x = get_rng(offset=5).standard_normal((24, 16)).astype(np.float32)
        with DynamicBatcher(predictor,
                            BatchingPolicy(max_batch_size=16, max_wait_ms=20.0)) as batched:
            futures = [batched.submit(x[i]) for i in range(24)]
            coalesced = np.concatenate([f.result(timeout=30.0) for f in futures], axis=0)
        with DynamicBatcher(predictor,
                            BatchingPolicy(max_batch_size=1, max_wait_ms=0.0)) as single:
            one_at_a_time = np.concatenate(
                [single.submit(x[i]).result(timeout=30.0) for i in range(24)], axis=0)
        np.testing.assert_array_equal(coalesced, one_at_a_time)

    def test_batched_equals_direct_model_call(self):
        predictor = _mlp_predictor()
        x = get_rng(offset=6).standard_normal((16, 16)).astype(np.float32)
        with no_grad():
            direct = predictor.model(x).data
        with DynamicBatcher(predictor,
                            BatchingPolicy(max_batch_size=16, max_wait_ms=20.0)) as batcher:
            out = batcher(x)
        np.testing.assert_array_equal(out, direct)


class TestWorkerObservability:
    def test_stats_report_worker_stall_compute_split(self):
        with DynamicBatcher(_echo_predict,
                            BatchingPolicy(max_batch_size=4, max_wait_ms=1.0)) as batcher:
            x = get_rng(offset=3).standard_normal((6, 4)).astype(np.float32)
            for i in range(6):
                batcher.submit(x[i]).result(timeout=10.0)
            worker = batcher.stats()["worker"]
        assert worker["samples"] == 6
        assert worker["batches"] >= 1
        assert worker["compute_seconds"] >= 0.0
        assert 0.0 <= worker["utilization"] <= 1.0
        assert worker["utilization"] == pytest.approx(1.0 - worker["stall_fraction"])
