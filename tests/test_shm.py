"""Tests for the shared-memory layer (``repro.utils.shm``).

Covers segment lifecycle (create, view, idempotent unlink, context manager),
the guaranteed-cleanup contract (atexit sweep on normal and exception exit,
PID-guarded registry so forked children never unlink parent segments), the
named-view handoff, the ``ShmArena`` bump allocator (alignment, graceful
exhaustion, ``owns``), and the shared-segment backing hooks in the
numpy-fast backend pool and the collate ring.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.utils.shm import (
    DEFAULT_ALIGN,
    SEGMENT_PREFIX,
    SharedSegment,
    ShmArena,
    active_owned_segments,
    align_up,
    arena_bytes_for,
    attach_view,
    byte_bounds,
)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def shm_path(name: str) -> str:
    return os.path.join("/dev/shm", name)


def run_py(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=60)


# --------------------------------------------------------------------------- #
# SharedSegment
# --------------------------------------------------------------------------- #
class TestSharedSegment:
    def test_roundtrip_through_view(self):
        with SharedSegment(1024) as seg:
            assert seg.name.startswith(SEGMENT_PREFIX)
            assert seg.size >= 1024
            view = seg.view((16,), np.float32)
            view[:] = np.arange(16, dtype=np.float32)
            again = seg.view((4, 4), np.float32)
            np.testing.assert_array_equal(again.ravel(), np.arange(16))
            assert seg.name in active_owned_segments()
        assert seg.name not in active_owned_segments()

    def test_view_offset_and_bounds(self):
        with SharedSegment(256) as seg:
            view = seg.view((8,), np.float64, offset=64)
            view[:] = 3.0
            assert seg.view((8,), np.float64, offset=64)[0] == 3.0
            with pytest.raises(ValueError, match="exceeds segment size"):
                seg.view((1024,), np.float64)
            with pytest.raises(ValueError, match="exceeds segment size"):
                seg.view((8,), np.float64, offset=256)

    def test_unlink_idempotent_and_removes_backing_file(self):
        seg = SharedSegment(64)
        path = shm_path(seg.name)
        if not os.path.exists(path):
            pytest.skip("/dev/shm not available on this platform")
        seg.unlink()
        assert not os.path.exists(path)
        seg.unlink()  # second call is a no-op, not an error
        assert seg.name not in active_owned_segments()

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError, match="size"):
            SharedSegment(0)

    def test_attach_view_named_handoff(self):
        with SharedSegment(128) as seg:
            seg.view((4,), np.int64)[:] = [7, 8, 9, 10]
            view = attach_view(seg.name, (4,), np.int64)
            np.testing.assert_array_equal(view, [7, 8, 9, 10])
            # The attaching side is not an owner — nothing new registered.
            assert active_owned_segments() == [seg.name]
            # Detach explicitly (and unregister from the resource tracker,
            # which the <= 3.12 attach registered us with) so the interpreter
            # does not warn about a "leaked" segment at exit.
            keepalive = view._repro_shm_keepalive
            del view
            from multiprocessing import resource_tracker

            resource_tracker.unregister(keepalive._name, "shared_memory")
            keepalive.close()


class TestGuaranteedCleanup:
    def test_atexit_sweep_unlinks_forgotten_segment(self):
        # A process that creates a segment and exits without unlinking must
        # not leak it — the atexit sweep is the guarantee.
        proc = run_py(
            "from repro.utils.shm import SharedSegment\n"
            "seg = SharedSegment(64)\n"
            "print(seg.name)\n")
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip().splitlines()[-1]
        assert name.startswith(SEGMENT_PREFIX)
        assert not os.path.exists(shm_path(name))

    def test_atexit_sweep_runs_on_crash(self):
        # Abnormal exit (uncaught exception past any finally) still unlinks.
        proc = run_py(
            "from repro.utils.shm import SharedSegment\n"
            "seg = SharedSegment(64)\n"
            "print(seg.name, flush=True)\n"
            "raise RuntimeError('worker died mid-step')\n")
        assert proc.returncode != 0
        assert "worker died mid-step" in proc.stderr
        name = proc.stdout.strip().splitlines()[-1].split()[0]
        assert not os.path.exists(shm_path(name))

    def test_forked_child_never_unlinks_parent_segments(self):
        # The registry is inherited across fork; the PID guard must keep a
        # child's cleanup sweep away from segments the parent owns.
        proc = run_py(
            "import os\n"
            "from repro.utils import shm\n"
            "seg = shm.SharedSegment(64)\n"
            "pid = os.fork()\n"
            "if pid == 0:\n"
            "    shm._cleanup_owned()  # the child's atexit sweep\n"
            "    os._exit(0)\n"
            "os.waitpid(pid, 0)\n"
            "print('alive' if os.path.exists(f'/dev/shm/{seg.name}') else 'gone')\n"
            "seg.unlink()\n")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip().splitlines()[-1] == "alive"


# --------------------------------------------------------------------------- #
# ShmArena
# --------------------------------------------------------------------------- #
class TestShmArena:
    def test_alloc_views_are_aligned_and_disjoint(self):
        with ShmArena(4096) as arena:
            a = arena.alloc((3,), np.float32)  # 12 bytes -> next slot pads
            b = arena.alloc((5,), np.float64)
            a[:] = 1.0
            b[:] = 2.0
            np.testing.assert_array_equal(a, np.ones(3, dtype=np.float32))
            np.testing.assert_array_equal(b, np.full(5, 2.0))
            lo_a, _ = byte_bounds(a)
            lo_b, _ = byte_bounds(b)
            assert lo_a % DEFAULT_ALIGN == 0
            assert lo_b % DEFAULT_ALIGN == 0
            assert lo_b >= lo_a + DEFAULT_ALIGN

    def test_exhaustion_returns_none_not_raise(self):
        with ShmArena(256) as arena:
            assert arena.alloc((16,), np.float64) is not None
            assert arena.alloc((1024,), np.float64) is None
            # A smaller request after a failed big one still succeeds.
            assert arena.alloc((8,), np.float64) is not None

    def test_owns(self):
        with ShmArena(1024) as arena:
            inside = arena.alloc((4,), np.float32)
            assert arena.owns(inside)
            assert arena.owns(inside[1:3])  # sub-views still live inside
            assert not arena.owns(np.empty(4, dtype=np.float32))

    def test_reset_reuses_space(self):
        with ShmArena(256) as arena:
            first = arena.alloc((16,), np.float64)
            assert arena.alloc((16,), np.float64) is not None
            assert arena.alloc((16,), np.float64) is None
            arena.reset()
            again = arena.alloc((16,), np.float64)
            assert byte_bounds(again) == byte_bounds(first)

    def test_close_unlinks_only_owned_segment(self):
        seg = SharedSegment(512)
        arena = ShmArena(seg)
        arena.close()  # wrapped an existing segment: must NOT unlink it
        assert seg.name in active_owned_segments()
        seg.unlink()
        with ShmArena(512) as arena:
            name = arena.segment.name
        assert name not in active_owned_segments()

    def test_invalid_align_raises(self):
        with pytest.raises(ValueError, match="power of two"):
            ShmArena(64, align=3)

    def test_arena_bytes_for_fits_specs(self):
        specs = [((3, 5), np.float32), ((7,), np.float64), ((2, 2), np.uint8)]
        with ShmArena(arena_bytes_for(specs)) as arena:
            for shape, dtype in specs:
                assert arena.alloc(shape, dtype) is not None
            assert arena.remaining < DEFAULT_ALIGN

    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == DEFAULT_ALIGN
        assert align_up(64) == 64
        assert align_up(65, 32) == 96


# --------------------------------------------------------------------------- #
# Shared-segment backing for the pooled allocators
# --------------------------------------------------------------------------- #
class TestBackendSharedSource:
    def _backend(self):
        from repro.tensor.backend import NumpyFastBackend

        return NumpyFastBackend()

    def test_pool_miss_falls_to_shared_source(self):
        backend = self._backend()
        with ShmArena(4096) as arena:
            backend.set_shared_source(arena)
            buf = backend.take((8, 8), np.float32)
            assert arena.owns(buf)

    def test_give_recycles_shared_views(self):
        backend = self._backend()
        with ShmArena(4096) as arena:
            backend.set_shared_source(arena)
            buf = backend.take((8, 8), np.float32)
            backend.give(buf)  # a view, but from our own segment: poolable
            again = backend.take((8, 8), np.float32)
            assert again is buf

    def test_give_still_rejects_foreign_views(self):
        backend = self._backend()
        with ShmArena(4096) as arena:
            backend.set_shared_source(arena)
            foreign = np.empty((4, 4), dtype=np.float32)[1:3]
            backend.give(foreign)
            assert backend.take((2, 4), np.float32) is not foreign

    def test_exhausted_source_falls_back_to_heap(self):
        backend = self._backend()
        with ShmArena(128) as arena:
            backend.set_shared_source(arena)
            big = backend.take((64, 64), np.float32)
            assert not arena.owns(big)

    def test_take_like_respects_layout_contract(self):
        backend = self._backend()
        with ShmArena(8192) as arena:
            backend.set_shared_source(arena)
            contiguous = np.empty((4, 8), dtype=np.float32)
            assert arena.owns(backend.take_like(contiguous))
            # Segment views are C-contiguous; a permuted-layout prototype
            # must get a private empty_like, never a layout-mangled view.
            permuted = np.empty((8, 4), dtype=np.float32).T
            got = backend.take_like(permuted)
            assert not arena.owns(got)
            assert got.strides == permuted.strides


class TestCollateArenaSharedSource:
    def test_ring_entries_come_from_source(self):
        from repro.data.pipeline import CollateArena

        with ShmArena(1 << 16) as source:
            ring = CollateArena(slots=2, source=source)
            first = ring.take((4, 3, 8, 8), np.float32)
            second = ring.take((4, 3, 8, 8), np.float32)
            assert source.owns(first) and source.owns(second)
            # Ring recycles (slots=2): the third take is the first buffer.
            assert ring.take((4, 3, 8, 8), np.float32) is first

    def test_full_source_falls_back_to_private(self):
        from repro.data.pipeline import CollateArena

        with ShmArena(128) as source:
            ring = CollateArena(slots=2, source=source)
            buf = ring.take((32, 3, 16, 16), np.float32)
            assert not source.owns(buf)
            assert buf.shape == (32, 3, 16, 16)
