"""Tests for the streaming data pipeline.

Covers the counter-based per-sample RNG, vectorized batch transforms, the
``PipelineLoader``/``PrefetchingLoader`` pair (bit-parity at every prefetch
depth and worker count, failure propagation, clean shutdown), epoch-sharded
sampling, and the trainer-level guarantees: a prefetched training run is
bit-identical to the synchronous one, and epoch logs carry the
stall-vs-compute split.
"""

import threading
import time

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    Normalize,
    PipelineLoader,
    PrefetchingLoader,
    RandomCrop,
    RandomHorizontalFlip,
    SequentialSampler,
    ShardedSampler,
    ShuffledSampler,
    Subset,
    build_loaders,
    standard_train_transform,
)
from repro.data.dataset import Dataset
from repro.models import MLP
from repro.optim import SGD
from repro.profiling import PipelineStats, instrument
from repro.train.trainer import Trainer
from repro.utils import (
    counter_uniforms,
    sample_integers,
    sample_uniforms,
    seed_everything,
)


def image_dataset(n=96, size=16, classes=4, transform="train"):
    rng = np.random.default_rng(11)
    images = rng.random((n, 3, size, size)).astype(np.float32)
    labels = rng.integers(0, classes, size=n).astype(np.int64)
    t = standard_train_transform(size) if transform == "train" else None
    return ArrayDataset(images, labels, transform=t)


def batches_equal(a, b):
    assert len(a) == len(b)
    for batch_a, batch_b in zip(a, b):
        assert len(batch_a) == len(batch_b)
        for field_a, field_b in zip(batch_a, batch_b):
            np.testing.assert_array_equal(field_a, field_b)


class TestCounterRNG:
    def test_pure_function_of_key_and_counter(self):
        a = counter_uniforms((1, 2, 3), np.arange(50), draws=4)
        b = counter_uniforms((1, 2, 3), np.arange(50), draws=4)
        np.testing.assert_array_equal(a, b)

    def test_subsets_evaluate_identically(self):
        full = counter_uniforms((7,), np.arange(100), draws=2)
        some = counter_uniforms((7,), [13, 42, 99], draws=2)
        np.testing.assert_array_equal(full[[13, 42, 99]], some)

    def test_keys_and_streams_separate(self):
        base = counter_uniforms((0, 1), np.arange(64))
        assert not np.array_equal(base, counter_uniforms((0, 2), np.arange(64)))
        assert not np.array_equal(base, counter_uniforms((1, 1), np.arange(64)))

    def test_uniform_range_and_mean(self):
        u = counter_uniforms((3,), np.arange(20000))
        assert (u >= 0).all() and (u < 1).all()
        assert abs(u.mean() - 0.5) < 0.01

    def test_integers_cover_range(self):
        draws = sample_integers(np.arange(5000), high=5, stream=9)
        assert set(np.unique(draws)) == {0, 1, 2, 3, 4}

    def test_root_seed_in_key(self):
        seed_everything(1)
        a = sample_uniforms(np.arange(16), epoch=0, stream=5)
        seed_everything(2)
        b = sample_uniforms(np.arange(16), epoch=0, stream=5)
        assert not np.array_equal(a, b)
        seed_everything(1)
        np.testing.assert_array_equal(a, sample_uniforms(np.arange(16), epoch=0, stream=5))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            counter_uniforms((1,), np.arange(4), draws=0)
        with pytest.raises(ValueError):
            sample_integers(np.arange(4), high=0)


class TestBatchTransforms:
    def test_batch_of_one_matches_full_batch(self):
        rng = np.random.default_rng(0)
        images = rng.random((24, 3, 16, 16)).astype(np.float32)
        ids = np.arange(100, 124)
        transform = standard_train_transform(16)
        full = transform.apply_batch(images, ids, epoch=2)
        for i in range(len(images)):
            single = transform.apply_batch(images[i:i + 1], ids[i:i + 1], epoch=2)
            np.testing.assert_array_equal(full[i], single[0])

    def test_batch_order_invariance(self):
        rng = np.random.default_rng(3)
        images = rng.random((32, 3, 16, 16)).astype(np.float32)
        ids = np.arange(32)
        transform = standard_train_transform(16)
        full = transform.apply_batch(images, ids, epoch=1)
        perm = rng.permutation(32)
        shuffled = transform.apply_batch(images[perm], ids[perm], epoch=1)
        np.testing.assert_array_equal(full[perm], shuffled)

    def test_epoch_changes_augmentation(self):
        rng = np.random.default_rng(4)
        images = rng.random((16, 3, 16, 16)).astype(np.float32)
        transform = standard_train_transform(16)
        a = transform.apply_batch(images, np.arange(16), epoch=0)
        b = transform.apply_batch(images, np.arange(16), epoch=1)
        assert not np.array_equal(a, b)

    def test_normalize_batch_bitwise_matches_per_sample(self):
        rng = np.random.default_rng(5)
        images = rng.random((8, 3, 8, 8)).astype(np.float32)
        normalize = Normalize()
        np.testing.assert_array_equal(
            normalize.apply_batch(images),
            np.stack([normalize(image) for image in images]))

    def test_flip_probability_extremes(self):
        rng = np.random.default_rng(6)
        images = rng.random((8, 3, 4, 4)).astype(np.float32)
        never = RandomHorizontalFlip(p=0.0).apply_batch(images, np.arange(8))
        np.testing.assert_array_equal(never, images)
        always = RandomHorizontalFlip(p=1.0).apply_batch(images, np.arange(8))
        np.testing.assert_array_equal(always, images[..., ::-1])

    def test_crop_preserves_shape_and_content_origin(self):
        rng = np.random.default_rng(7)
        images = rng.random((8, 3, 16, 16)).astype(np.float32)
        out = RandomCrop(16, padding=2).apply_batch(images, np.arange(8))
        assert out.shape == images.shape
        # padding=0 forces offset 0 — identity crop.
        np.testing.assert_array_equal(
            RandomCrop(16, padding=0).apply_batch(images, np.arange(8)), images)

    def test_sample_id_length_mismatch_raises(self):
        images = np.zeros((4, 3, 8, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            RandomHorizontalFlip().apply_batch(images, np.arange(3))


class TestPipelineLoader:
    def test_batches_cover_dataset(self):
        ds = image_dataset(n=50, transform=None)
        loader = PipelineLoader(ds, batch_size=16)
        assert len(loader) == 4
        batches = list(loader)
        assert sum(len(b[0]) for b in batches) == 50
        assert loader.vectorized

    def test_drop_last(self):
        ds = image_dataset(n=50, transform=None)
        loader = PipelineLoader(ds, batch_size=16, drop_last=True)
        assert len(loader) == 3
        assert all(len(b[0]) == 16 for b in loader)

    def test_epoch_keyed_shuffle_is_replayable(self):
        ds = image_dataset(transform=None)
        loader = PipelineLoader(ds, batch_size=32, shuffle=True)
        loader.set_epoch(3)
        first = list(loader)
        again = PipelineLoader(ds, batch_size=32, shuffle=True)
        again.set_epoch(3)
        batches_equal(first, list(again))
        loader.set_epoch(4)
        other_epoch = list(loader)
        assert not np.array_equal(first[0][0], other_epoch[0][0])

    def test_resume_mid_epoch_via_load_batch(self):
        ds = image_dataset()
        loader = PipelineLoader(ds, batch_size=16, shuffle=True)
        loader.set_epoch(2)
        consumed = [loader.load_batch(i) for i in range(2)]
        resumed = PipelineLoader(ds, batch_size=16, shuffle=True)
        resumed.set_epoch(2)
        batches_equal(consumed, [resumed.load_batch(i) for i in range(2)])

    def test_subset_keeps_base_sample_identity(self):
        ds = image_dataset(n=64)
        whole = PipelineLoader(ds, batch_size=64)
        whole.set_epoch(1)
        (all_images, _), = list(whole)
        view = PipelineLoader(Subset(ds, range(32, 64)), batch_size=32)
        view.set_epoch(1)
        (subset_images, _), = list(view)
        np.testing.assert_array_equal(subset_images, all_images[32:])

    def test_generic_dataset_fallback(self):
        class Tenfold(Dataset):
            def __len__(self):
                return 10

            def __getitem__(self, index):
                return np.full(3, index, dtype=np.float32), np.int64(index)

        loader = PipelineLoader(Tenfold(), batch_size=4)
        assert not loader.vectorized
        batches = list(loader)
        assert sum(len(b[0]) for b in batches) == 10
        np.testing.assert_array_equal(batches[0][1], np.arange(4))

    def test_arena_reuse_is_bit_identical(self):
        ds = image_dataset()
        plain = PipelineLoader(ds, batch_size=16, shuffle=True)
        pooled = PipelineLoader(ds, batch_size=16, shuffle=True, reuse_buffers=True)
        plain.set_epoch(1)
        pooled.set_epoch(1)
        # Compare batch-by-batch: arena buffers are recycled after
        # ``arena_slots`` batches, so a consumer must not retain them (the
        # documented contract); comparing in stride respects it.
        for expected, got in zip(plain, pooled):
            for field_e, field_g in zip(expected, got):
                np.testing.assert_array_equal(field_e, field_g)

    def test_out_of_range_batch_raises(self):
        loader = PipelineLoader(image_dataset(n=32, transform=None), batch_size=16)
        with pytest.raises(IndexError):
            loader.load_batch(2)


class TestPrefetchingLoader:
    @pytest.mark.parametrize("depth,workers", [(1, 1), (2, 1), (4, 1), (2, 2), (4, 3)])
    def test_bit_parity_with_synchronous_loader(self, depth, workers):
        ds = image_dataset()
        sync = PipelineLoader(ds, batch_size=16, shuffle=True)
        sync.set_epoch(2)
        reference = list(sync)
        stream = PrefetchingLoader(PipelineLoader(ds, batch_size=16, shuffle=True),
                                   depth=depth, workers=workers)
        stream.set_epoch(2)
        batches_equal(reference, list(stream))

    def test_parity_across_epochs(self):
        ds = image_dataset()
        sync = PipelineLoader(ds, batch_size=16, shuffle=True)
        stream = PrefetchingLoader(PipelineLoader(ds, batch_size=16, shuffle=True), depth=2)
        for epoch in range(3):
            sync.set_epoch(epoch)
            stream.set_epoch(epoch)
            batches_equal(list(sync), list(stream))

    def test_producer_exception_propagates(self):
        class Explode:
            def __call__(self, image):
                return image

            def apply_batch(self, images, sample_ids, epoch):
                if (np.asarray(sample_ids) >= 64).any():
                    raise RuntimeError("synthetic producer failure")
                return images

        ds = image_dataset(n=96, transform=None)
        ds.transform = Explode()
        stream = PrefetchingLoader(PipelineLoader(ds, batch_size=16), depth=2, workers=2)
        with pytest.raises(RuntimeError, match="synthetic producer failure"):
            list(stream)
        self._assert_no_prefetch_threads()

    def test_early_exit_shuts_producers_down(self):
        ds = image_dataset(n=96, transform=None)
        stream = PrefetchingLoader(PipelineLoader(ds, batch_size=8, shuffle=True),
                                   depth=2, workers=2)
        iterator = iter(stream)
        next(iterator)
        next(iterator)
        iterator.close()
        self._assert_no_prefetch_threads()

    @staticmethod
    def _assert_no_prefetch_threads(timeout_s: float = 2.0):
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            alive = [t.name for t in threading.enumerate() if t.name.startswith("prefetch")]
            if not alive:
                return
            time.sleep(0.02)
        raise AssertionError(f"prefetch producer threads leaked: {alive}")

    def test_rejects_invalid_configuration(self):
        loader = PipelineLoader(image_dataset(n=16, transform=None), batch_size=8)
        with pytest.raises(ValueError):
            PrefetchingLoader(loader, depth=0)
        with pytest.raises(ValueError):
            PrefetchingLoader(loader, depth=1, workers=0)

    def test_multi_worker_requires_random_access(self):
        legacy = DataLoader(image_dataset(n=16, transform=None), batch_size=8)
        with pytest.raises(TypeError):
            PrefetchingLoader(legacy, depth=2, workers=2)
        # Single-worker iterator mode works over any BatchStream.
        stream = PrefetchingLoader(legacy, depth=2)
        assert sum(len(b[0]) for b in stream) == 16


class TestShardedSampler:
    def test_shards_partition_and_pad(self):
        shards = [ShardedSampler(10, rank=r, world_size=3).indices(epoch=5) for r in range(3)]
        assert all(len(s) == 4 for s in shards)
        assert set(np.concatenate(shards).tolist()) == set(range(10))

    def test_deterministic_per_epoch_and_rank(self):
        sampler = ShardedSampler(32, rank=1, world_size=4)
        np.testing.assert_array_equal(sampler.indices(2), sampler.indices(2))
        assert not np.array_equal(sampler.indices(2), sampler.indices(3))

    def test_no_shuffle_mode_is_strided(self):
        sampler = ShardedSampler(8, rank=1, world_size=2, shuffle=False)
        np.testing.assert_array_equal(sampler.indices(0), [1, 3, 5, 7])

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedSampler(8, rank=2, world_size=2)
        with pytest.raises(ValueError):
            ShardedSampler(8, rank=0, world_size=0)
        with pytest.raises(ValueError):
            ShardedSampler(0, rank=0, world_size=1)

    def test_loader_integration_covers_every_sample(self):
        ds = image_dataset(n=33, transform=None)
        seen = []
        for rank in range(2):
            sampler = ShardedSampler(33, rank=rank, world_size=2)
            loader = PipelineLoader(ds, batch_size=8, sampler=sampler)
            loader.set_epoch(1)
            for images, _ in loader:
                seen.append(images)
        stacked = np.concatenate(seen)
        assert len(stacked) == 34          # 33 + 1 deterministic pad
        unique = {im.tobytes() for im in stacked}
        assert len(unique) == 33

    def test_plain_samplers(self):
        assert SequentialSampler(5).indices(9).tolist() == [0, 1, 2, 3, 4]
        shuffled = ShuffledSampler(16)
        np.testing.assert_array_equal(shuffled.indices(1), shuffled.indices(1))
        assert sorted(shuffled.indices(1).tolist()) == list(range(16))


def feature_loaders(prefetch_depth=0, workers=1, n=128, dim=12, classes=3):
    rng = np.random.default_rng(21)
    centers = 4 * rng.standard_normal((classes, dim))
    labels = rng.integers(0, classes, size=n)
    features = (centers[labels] + rng.standard_normal((n, dim))).astype(np.float32)
    ds = ArrayDataset(features, labels.astype(np.int64))
    split = int(0.75 * n)
    return build_loaders(Subset(ds, range(split)), Subset(ds, range(split, n)),
                         batch_size=32, prefetch_depth=prefetch_depth, workers=workers)


def run_training(prefetch_depth=0, workers=1, epochs=2):
    seed_everything(77)
    train_loader, val_loader = feature_loaders(prefetch_depth, workers)
    model = MLP(12, [16], 3)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.1, momentum=0.9),
                      train_loader, val_loader)
    trainer.fit(epochs)
    return trainer


class TestTrainerPipeline:
    def test_prefetched_training_is_bit_identical_to_synchronous(self):
        sync = run_training(prefetch_depth=0)
        for depth, workers in ((1, 1), (2, 1), (3, 2)):
            prefetched = run_training(prefetch_depth=depth, workers=workers)
            for a, b in zip(sync.history, prefetched.history):
                assert a.train_loss == b.train_loss
                assert a.train_accuracy == b.train_accuracy
                assert a.val_loss == b.val_loss
                assert a.val_accuracy == b.val_accuracy

    def test_epoch_records_carry_stall_compute_split(self):
        trainer = run_training(prefetch_depth=2)
        for record in trainer.history:
            assert "data_stall_seconds" in record.extra
            assert "data_compute_seconds" in record.extra
            assert record.extra["data_compute_seconds"] > 0
            assert record.extra["samples_per_sec"] > 0
        stats = trainer.pipeline_stats
        assert stats.batches == sum(len(trainer.train_loader) for _ in range(2))
        assert stats.samples > 0
        assert trainer.epochs_completed == 2

    def test_legacy_loader_still_reports_split(self):
        seed_everything(3)
        rng = np.random.default_rng(1)
        ds = ArrayDataset(rng.random((64, 8)).astype(np.float32),
                          rng.integers(0, 2, 64).astype(np.int64))
        model = MLP(8, [4], 2)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1),
                          DataLoader(ds, batch_size=16, shuffle=True))
        trainer.fit(1)
        assert trainer.history[0].extra["data_compute_seconds"] > 0

    def test_max_batches_cap_closes_prefetcher(self):
        seed_everything(5)
        train_loader, _ = feature_loaders(prefetch_depth=2, workers=2)
        model = MLP(12, [8], 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                          max_batches_per_epoch=1)
        trainer.fit(1)
        TestPrefetchingLoader._assert_no_prefetch_threads()
        assert trainer.pipeline_stats.batches == 1


class TestReviewRegressions:
    """Pins for defects found in review: legacy RNG consumption at the batch
    cap, arena sizing under multi-worker prefetch, and shard padding when
    world_size exceeds the dataset."""

    def test_legacy_batch_cap_consumes_rng_like_enumerate(self):
        """The capped training loop must fetch (and discard) the batch at the
        cap exactly as the old enumerate loop did — the legacy loader's
        stateful per-sample transforms mean one skipped fetch shifts every
        later epoch's augmentation bits away from the seed capture."""
        from repro.train.trainer import Callback

        def build_loader():
            seed_everything(9)
            rng = np.random.default_rng(2)
            images = rng.random((64, 3, 8, 8)).astype(np.float32)
            labels = rng.integers(0, 2, 64).astype(np.int64)
            ds = ArrayDataset(images, labels, transform=standard_train_transform(8))
            return DataLoader(ds, batch_size=8, shuffle=True)

        reference = []
        loader = build_loader()
        for _ in range(2):                      # the seed-era loop shape
            for index, batch in enumerate(loader):
                if index >= 2:
                    break
                reference.append(batch[0])

        seen = []

        class Capture(Callback):
            def on_batch_begin(self, trainer, batch_index, batch):
                seen.append(batch[0])

        loader = build_loader()
        model = MLP(3 * 8 * 8, [4], 2)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01), loader,
                          callbacks=[Capture()], max_batches_per_epoch=2)
        trainer.fit(2)
        batches_equal([(b,) for b in reference], [(b,) for b in seen])

    def test_arena_safe_under_multiworker_prefetch(self):
        """build_loaders must size the collate arena past every buffer that
        can be live at once (queues + producers + consumer); undersizing
        silently corrupts in-flight batches."""
        ds = image_dataset(n=128)
        sync = PipelineLoader(ds, batch_size=16, shuffle=True)
        sync.set_epoch(0)
        reference = list(sync)
        stream, _ = build_loaders(ds, None, 16, prefetch_depth=2, workers=2,
                                  reuse_buffers=True)
        stream.set_epoch(0)
        for expected, got in zip(reference, stream):
            time.sleep(0.002)   # let producers run ahead while we hold `got`
            for field_e, field_g in zip(expected, got):
                np.testing.assert_array_equal(field_e, field_g)

    def test_shard_padding_when_world_size_exceeds_n(self):
        shards = [ShardedSampler(2, rank=r, world_size=5).indices(0) for r in range(5)]
        assert all(len(s) == 1 for s in shards)
        assert set(np.concatenate(shards).tolist()) == {0, 1}

    def test_explicit_legacy_loader_with_prefetch_raises(self):
        from repro.train.experiments import VisionExperimentConfig

        config = VisionExperimentConfig(loader="legacy", prefetch_depth=2)
        with pytest.raises(ValueError, match="pipeline loader"):
            config.uses_pipeline_loader()
        assert not VisionExperimentConfig(loader="legacy").uses_pipeline_loader()
        assert VisionExperimentConfig(prefetch_depth=2).uses_pipeline_loader()
        assert not VisionExperimentConfig().uses_pipeline_loader()


class TestResNetCellParity:
    def test_two_epoch_resnet_train_is_bit_identical_under_prefetch(self):
        """The acceptance-criterion shape: a 2-epoch ResNet-cell run through
        ``run_experiment`` must produce identical losses and accuracies with
        the synchronous pipeline and with prefetching (any depth/workers)."""
        from repro.train.experiments import (
            ExperimentSpec,
            VisionExperimentConfig,
            run_experiment,
        )

        def run(depth, workers=1):
            config = VisionExperimentConfig(
                task="cifar10_small", model="resnet18", width_mult=0.125,
                epochs=2, batch_size=32, max_batches_per_epoch=4,
                loader="pipeline", prefetch_depth=depth, loader_workers=workers)
            return run_experiment(ExperimentSpec(method="full_rank", config=config),
                                  return_context=True)

        row_sync, ctx_sync = run(depth=0)
        for depth, workers in ((2, 1), (2, 2)):
            row_pf, ctx_pf = run(depth=depth, workers=workers)
            assert row_pf.val_accuracy == row_sync.val_accuracy
            for a, b in zip(ctx_sync.trainer.history, ctx_pf.trainer.history):
                assert a.train_loss == b.train_loss
                assert a.train_accuracy == b.train_accuracy
                assert a.val_loss == b.val_loss


class TestPipelineStats:
    def test_instrument_attributes_time(self):
        stats = PipelineStats()

        def slow_stream():
            for _ in range(3):
                time.sleep(0.005)
                yield (np.zeros((4, 2)),)

        for _ in instrument(slow_stream(), stats):
            time.sleep(0.002)
        assert stats.batches == 3
        assert stats.samples == 12
        assert stats.stall_seconds > stats.compute_seconds > 0
        described = stats.describe()
        assert "stall=" in described and "compute=" in described

    def test_merge_accumulates(self):
        a = PipelineStats(stall_seconds=1.0, compute_seconds=2.0, batches=3, samples=30)
        b = PipelineStats(stall_seconds=0.5, compute_seconds=0.5, batches=1, samples=10)
        a.merge(b)
        assert a.total_seconds == 4.0 and a.batches == 4 and a.samples == 40
        assert a.stall_fraction == pytest.approx(1.5 / 4.0)
