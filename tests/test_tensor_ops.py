"""Unit tests for the core autograd engine (repro.tensor.tensor)."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


def _grads_close(analytic, numeric, atol=2e-2):
    assert analytic is not None
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-2)


class TestBasicArithmetic:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_add_backward_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([0.5, 0.5], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_div_backward(self, rng, gradcheck):
        a = rng.random((3, 3)).astype(np.float64) + 0.5
        b = rng.random((3, 3)).astype(np.float64) + 0.5
        at = Tensor(a, requires_grad=True)
        bt = Tensor(b, requires_grad=True)
        (at / bt).sum().backward()
        numeric_a = gradcheck(lambda: float((Tensor(a) / Tensor(b)).sum().data), a)
        numeric_b = gradcheck(lambda: float((Tensor(a) / Tensor(b)).sum().data), b)
        _grads_close(at.grad, numeric_a)
        _grads_close(bt.grad, numeric_b)

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_rmul_with_scalars(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = 2.0 * a + 1.0
        np.testing.assert_allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((10.0 - a).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0, 2.0])


class TestElementwiseFunctions:
    @pytest.mark.parametrize("name", ["exp", "log", "tanh", "sigmoid", "relu", "gelu", "abs", "sqrt"])
    def test_unary_gradients_match_numeric(self, name, rng, gradcheck):
        x = (rng.random((4, 3)) + 0.5).astype(np.float64)   # positive for log/sqrt
        xt = Tensor(x, requires_grad=True)
        getattr(xt, name)().sum().backward()
        numeric = gradcheck(lambda: float(getattr(Tensor(x), name)().sum().data), x)
        _grads_close(xt.grad, numeric)

    def test_relu_zeroes_negative(self):
        x = Tensor([-1.0, 0.5], requires_grad=True)
        out = x.relu()
        np.testing.assert_allclose(out.data, [0.0, 0.5])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clip_gradient_masked(self):
        x = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = x.sum()
        assert out.item() == 15.0
        out.backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean(self):
        x = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, 0.25 * np.ones(4))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        out = x.mean(axis=1)
        assert out.shape == (2,)
        np.testing.assert_allclose(out.data, [1.0, 1.0])

    def test_var_matches_numpy(self, rng):
        x = rng.random((5, 6)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).var(axis=0).data, x.var(axis=0), atol=1e-5)

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([[2.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_backward(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        x.reshape((2, 3)).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose_roundtrip(self, rng):
        x = rng.random((2, 3, 4)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        out = xt.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(xt.grad, np.ones_like(x))

    def test_default_transpose_reverses(self):
        x = Tensor(np.zeros((2, 5)))
        assert x.T.shape == (5, 2)

    def test_swapaxes(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_backward_scatter(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_integer_index_accumulates(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad_backward(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = x.pad(((1, 1), (0, 0)))
        assert out.shape == (4, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten(start_dim=1).shape == (2, 12)

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))

    def test_stack(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.ones((2, 3)))
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)


class TestMatmul:
    def test_2d_matmul_gradients(self, rng, gradcheck):
        a = rng.random((3, 4)).astype(np.float64)
        b = rng.random((4, 2)).astype(np.float64)
        at, bt = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (at @ bt).sum().backward()
        _grads_close(at.grad, gradcheck(lambda: float((Tensor(a) @ Tensor(b)).sum().data), a))
        _grads_close(bt.grad, gradcheck(lambda: float((Tensor(a) @ Tensor(b)).sum().data), b))

    def test_batched_matmul(self, rng):
        a = rng.random((5, 3, 4)).astype(np.float32)
        b = rng.random((5, 4, 2)).astype(np.float32)
        at, bt = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        out = at @ bt
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert at.grad.shape == a.shape
        assert bt.grad.shape == b.shape

    def test_broadcast_matmul_unbroadcasts_grad(self, rng):
        a = rng.random((5, 3, 4)).astype(np.float32)
        b = rng.random((4, 2)).astype(np.float32)
        at, bt = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (at @ bt).sum().backward()
        assert bt.grad.shape == (4, 2)


class TestGraphMechanics:
    def test_backward_on_non_scalar_requires_grad_argument(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss1 = (x * 2).sum()
        loss1.backward()
        loss2 = (x * 3).sum()
        loss2.backward()
        np.testing.assert_allclose(x.grad, 5 * np.ones(3))

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * 2).sum()
        assert x.grad is None

    def test_clone_passes_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x.clone().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = x * 2
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_diamond_graph_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestConstructors:
    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones((4,)).data.sum() == 4.0

    def test_randn_seeded(self, rng):
        a = Tensor.randn(3, 3, rng=np.random.default_rng(0))
        b = Tensor.randn(3, 3, rng=np.random.default_rng(0))
        np.testing.assert_allclose(a.data, b.data)

    def test_dtype_is_float32(self):
        assert Tensor([1, 2, 3]).dtype == np.float32
