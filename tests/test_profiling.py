"""Tests for the performance-accounting package (tracer, FLOPs, roofline)."""

import numpy as np
import pytest

from repro import nn
from repro.core import LowRankConv2d, LowRankLinear, factorize_model
from repro.models import MLP, resnet18
from repro.profiling import (
    CPU,
    DeviceSpec,
    V100,
    conv2d_cost,
    count_model_flops,
    count_parameters,
    factorized_conv2d_cost,
    factorized_linear_cost,
    get_device,
    linear_cost,
    model_layer_costs,
    predict_iteration_time,
    predict_layer_times,
    predict_model_time,
    time_callable,
    time_forward,
    time_training_iteration,
    trace_shapes,
)


class TestTracer:
    def test_records_leaf_module_shapes(self, rng):
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 4))
        traces = trace_shapes(model, rng.random((3, 8)).astype(np.float32))
        assert traces["0"].input_shape == (3, 8)
        assert traces["0"].output_shape == (3, 16)
        assert traces["2"].output_shape == (3, 4)

    def test_restores_original_forward(self, rng):
        model = nn.Sequential(nn.Linear(4, 4))
        trace_shapes(model, rng.random((2, 4)).astype(np.float32))
        assert "forward" not in model[0].__dict__

    def test_does_not_change_training_mode(self, rng):
        model = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        model.train()
        trace_shapes(model, rng.random((2, 4)).astype(np.float32))
        assert model.training

    def test_conv_model_traced(self, rng):
        model = resnet18(num_classes=4, width_mult=0.125)
        traces = trace_shapes(model, rng.random((2, 3, 16, 16)).astype(np.float32))
        assert "conv1" in traces and "fc" in traces
        assert traces["conv1"].input_shape == (2, 3, 16, 16)


class TestFlopFormulas:
    def test_conv_cost_formula(self):
        cost = conv2d_cost(batch=4, in_channels=3, out_channels=8, kernel=3, out_h=10, out_w=10)
        assert cost.flops == 2 * 4 * 8 * 3 * 9 * 100
        assert cost.params == 8 * 3 * 9
        assert cost.gemm_n == 8 and cost.gemm_k == 27

    def test_linear_cost_formula(self):
        cost = linear_cost(batch_tokens=10, in_features=32, out_features=16)
        assert cost.flops == 2 * 10 * 32 * 16
        assert cost.params == 512

    def test_factorized_costs_cheaper_at_low_rank(self):
        full = conv2d_cost(8, 64, 64, 3, 8, 8)
        low = factorized_conv2d_cost(8, 64, 64, 3, rank=8, out_h=8, out_w=8)
        assert low.flops < full.flops
        assert low.params < full.params
        full_lin = linear_cost(16, 128, 128)
        low_lin = factorized_linear_cost(16, 128, 128, rank=8)
        assert low_lin.flops < full_lin.flops

    def test_arithmetic_intensity_grows_with_batch(self):
        small = conv2d_cost(1, 64, 64, 3, 8, 8)
        large = conv2d_cost(1024, 64, 64, 3, 8, 8)
        assert large.arithmetic_intensity > small.arithmetic_intensity

    def test_scale_batch(self):
        cost = conv2d_cost(2, 16, 16, 3, 4, 4)
        scaled = cost.scale_batch(8.0)
        assert scaled.flops == pytest.approx(8 * cost.flops)
        assert scaled.param_bytes == cost.param_bytes
        assert scaled.activation_bytes == pytest.approx(8 * cost.activation_bytes)

    def test_cost_addition_keeps_narrowest_gemm(self):
        a = conv2d_cost(2, 64, 8, 3, 4, 4)     # N=8
        b = conv2d_cost(2, 8, 64, 1, 4, 4)     # K=8
        combined = a + b
        assert combined.flops == a.flops + b.flops
        assert combined.gemm_n == 8


class TestModelCosts:
    def test_model_layer_costs_cover_compute_layers(self, rng):
        model = MLP(8, [16, 16], 4)
        costs = model_layer_costs(model, rng.random((2, 8)).astype(np.float32))
        linear_paths = [n for n, m in model.named_modules() if isinstance(m, nn.Linear)]
        assert set(linear_paths) <= set(costs)

    def test_count_model_flops_positive_and_scales_with_batch(self, rng):
        model = MLP(8, [16], 4)
        one = count_model_flops(model, rng.random((1, 8)).astype(np.float32))
        four = count_model_flops(model, rng.random((4, 8)).astype(np.float32))
        assert four == pytest.approx(4 * one)

    def test_count_parameters_matches_module(self):
        model = MLP(8, [16], 4)
        assert count_parameters(model) == model.num_parameters()

    def test_factorized_model_has_fewer_flops(self, rng):
        model = MLP(32, [64, 64], 4)
        x = rng.random((2, 32)).astype(np.float32)
        before = count_model_flops(model, x)
        factorize_model(model, {p: 4 for p in model.factorization_candidates()})
        after = count_model_flops(model, x)
        assert after < before

    def test_paper_flops_ordering_resnet_vs_factorized(self, rng):
        """Factorizing the deep stacks reduces total FLOPs, as in Tables 2/3."""
        model = resnet18(num_classes=10, width_mult=0.25)
        x = rng.random((1, 3, 16, 16)).astype(np.float32)
        before = count_model_flops(model, x)
        ranks = {p: 8 for p in model.layer_stack_paths()["layer4"]}
        factorize_model(model, ranks)
        assert count_model_flops(model, x) < before


class TestRoofline:
    def test_device_lookup(self):
        assert get_device("v100") is V100
        with pytest.raises(KeyError):
            get_device("h100")

    def test_layer_time_positive_and_monotone_in_flops(self):
        small = conv2d_cost(1, 16, 16, 3, 4, 4)
        large = conv2d_cost(64, 16, 16, 3, 4, 4)
        assert V100.layer_time(large) > V100.layer_time(small) > 0

    def test_gemm_efficiency_penalises_thin_layers(self):
        thin = conv2d_cost(64, 64, 4, 3, 8, 8)
        wide = conv2d_cost(64, 64, 256, 3, 8, 8)
        assert V100.gemm_efficiency(thin) < V100.gemm_efficiency(wide)
        assert V100.gemm_efficiency(wide) == 1.0

    def test_non_gemm_cost_full_efficiency(self):
        from repro.profiling.flops import LayerCost
        cost = LayerCost(flops=1e6, param_bytes=10, activation_bytes=10, params=1)
        assert V100.gemm_efficiency(cost) == 1.0

    def test_predict_layer_times_and_model_time(self, rng):
        model = MLP(16, [32], 4)
        x = rng.random((2, 16)).astype(np.float32)
        per_layer = predict_layer_times(model, x, device=V100)
        assert all(t > 0 for t in per_layer.values())
        assert predict_model_time(model, x, device=V100) == pytest.approx(sum(per_layer.values()))

    def test_iteration_time_includes_backward(self, rng):
        model = MLP(16, [32], 4)
        x = rng.random((2, 16)).astype(np.float32)
        fwd = predict_model_time(model, x)
        assert predict_iteration_time(model, x) == pytest.approx(3 * fwd)

    def test_batch_scale_increases_time(self, rng):
        model = MLP(16, [32], 4)
        x = rng.random((2, 16)).astype(np.float32)
        assert predict_model_time(model, x, batch_scale=64.0) > predict_model_time(model, x)

    def test_low_rank_layer_priced_as_two_kernels(self, rng):
        model = nn.Sequential(LowRankLinear(64, 64, rank=32))
        x = rng.random((4, 64)).astype(np.float32)
        times = predict_layer_times(model, x, device=V100)
        dense = nn.Sequential(nn.Linear(64, 64))
        dense_times = predict_layer_times(dense, x, device=V100)
        # rank = n/2 means the same FLOPs but one extra kernel launch: not faster.
        assert times["0"] >= dense_times["0"]


class TestWallClockTimers:
    def test_time_callable_returns_positive(self):
        assert time_callable(lambda: sum(range(1000)), iterations=2) > 0

    def test_time_forward_and_training_iteration(self, rng):
        model = MLP(8, [16], 4)
        x = rng.random((4, 8)).astype(np.float32)
        y = np.zeros(4, dtype=np.int64)
        assert time_forward(model, x, iterations=1) > 0
        assert time_training_iteration(model, x, y, iterations=1) > 0
