"""The versioned benchmark results contract (repro.bench.contract)."""

import json

import pytest

from repro.bench.contract import (
    SCHEMA_VERSION,
    ContractError,
    MetricSpec,
    build_result,
    host_fingerprint,
    load_result,
    metrics_from_specs,
    summarize_samples,
    validate_result,
    write_result,
)


class TestSummarizeSamples:
    def test_single_sample(self):
        summary = summarize_samples([4.0])
        assert summary["median"] == 4.0
        assert summary["iqr"] == 0.0
        assert summary["rel_iqr"] == 0.0
        assert summary["samples"] == [4.0]

    def test_median_of_odd_count_is_middle_value(self):
        assert summarize_samples([3.0, 1.0, 2.0])["median"] == 2.0

    def test_median_of_even_count_interpolates(self):
        assert summarize_samples([1.0, 2.0, 3.0, 4.0])["median"] == 2.5

    def test_iqr_spans_quartiles(self):
        # 1..5: q1 = 2, q3 = 4 under linear interpolation.
        summary = summarize_samples([5.0, 1.0, 3.0, 2.0, 4.0])
        assert summary["iqr"] == pytest.approx(2.0)
        assert summary["rel_iqr"] == pytest.approx(2.0 / 3.0)

    def test_median_is_robust_to_one_straggler(self):
        clean = summarize_samples([10.0, 10.0, 10.0])["median"]
        with_straggler = summarize_samples([10.0, 10.0, 1.0])["median"]
        assert clean == with_straggler == 10.0

    def test_zero_median_yields_zero_rel_iqr(self):
        assert summarize_samples([0.0])["rel_iqr"] == 0.0

    def test_empty_samples_raise(self):
        with pytest.raises(ContractError):
            summarize_samples([])


class TestBuildAndValidate:
    def _metrics(self):
        return {"throughput": {"unit": "req/s", "higher_is_better": True,
                               "samples": [10.0, 12.0, 11.0]}}

    def test_build_result_is_schema_valid(self):
        result = build_result("demo", self._metrics(), backend="numpy-fast",
                              budget={"tiny": True})
        assert validate_result(result) is result
        assert result["schema_version"] == SCHEMA_VERSION
        assert result["suite"] == "demo"
        assert result["backend"] == "numpy-fast"
        assert result["budget"] == {"tiny": True}
        assert result["metrics"]["throughput"]["median"] == 11.0

    def test_build_result_records_host_fingerprint(self):
        result = build_result("demo", self._metrics(), commit=None)
        for key in ("platform", "machine", "python", "cpu_count", "node"):
            assert key in result["host"]

    def test_explicit_commit_and_timestamp_are_respected(self):
        result = build_result("demo", self._metrics(), commit="abc123",
                              created_unix=1234.5)
        assert result["commit"] == "abc123"
        assert result["created_unix"] == 1234.5

    def test_empty_metrics_raise(self):
        with pytest.raises(ContractError, match="no metrics"):
            build_result("demo", {})

    def test_metric_without_samples_raises(self):
        with pytest.raises(ContractError, match="samples"):
            build_result("demo", {"m": {"unit": "x", "higher_is_better": True}})

    def test_validate_rejects_schema_version_mismatch(self):
        result = build_result("demo", self._metrics())
        result["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ContractError, match="schema_version"):
            validate_result(result)

    def test_validate_rejects_missing_top_level_keys(self):
        result = build_result("demo", self._metrics())
        del result["host"]
        with pytest.raises(ContractError, match="host"):
            validate_result(result)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(ContractError):
            validate_result([1, 2, 3])

    def test_validate_rejects_metric_missing_fields(self):
        result = build_result("demo", self._metrics())
        del result["metrics"]["throughput"]["iqr"]
        with pytest.raises(ContractError, match="iqr"):
            validate_result(result)


class TestMetricsFromSpecs:
    SPECS = (MetricSpec("a", "x"), MetricSpec("b", "ms", higher_is_better=False))

    def test_pairs_specs_with_samples(self):
        metrics = metrics_from_specs(self.SPECS, {"a": [1.0], "b": [2.0]})
        assert metrics["a"] == {"unit": "x", "higher_is_better": True, "samples": [1.0]}
        assert metrics["b"]["higher_is_better"] is False

    def test_missing_samples_raise(self):
        with pytest.raises(ContractError, match="'b'"):
            metrics_from_specs(self.SPECS, {"a": [1.0]})

    def test_undeclared_samples_raise(self):
        with pytest.raises(ContractError, match="undeclared"):
            metrics_from_specs(self.SPECS, {"a": [1.0], "b": [2.0], "c": [3.0]})


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        result = build_result("demo", {"m": {"unit": "x", "higher_is_better": True,
                                             "samples": [1.0, 2.0]}})
        path = str(tmp_path / "nested" / "demo.bench.json")
        write_result(path, result)
        assert load_result(path) == json.loads(json.dumps(result))

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ContractError, match="not found"):
            load_result(str(tmp_path / "absent.json"))

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ContractError, match="valid JSON"):
            load_result(str(path))

    def test_load_validates_schema(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ContractError):
            load_result(str(path))


def test_host_fingerprint_is_json_serializable():
    json.dumps(host_fingerprint())
