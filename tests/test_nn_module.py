"""Tests for the Module/Parameter system (registration, traversal, replacement)."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.fc2 = nn.Linear(8, 2)
        self.register_buffer("counter", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_are_registered(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(net.parameters()) == 4

    def test_buffers_are_registered_but_not_parameters(self):
        net = TinyNet()
        buffer_names = [name for name, _ in net.named_buffers()]
        assert "counter" in buffer_names
        assert all("counter" not in name for name, _ in net.named_parameters())

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_modules_includes_nested(self):
        net = TinyNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_reassigning_attribute_updates_registry(self):
        net = TinyNet()
        net.fc1 = nn.Linear(4, 16)
        assert net.get_submodule("fc1").out_features == 16
        assert sum(1 for n, _ in net.named_modules() if n == "fc1") == 1

    def test_delattr_unregisters(self):
        net = TinyNet()
        del net.fc2
        assert "fc2" not in dict(net.named_modules())


class TestTraversalAndReplacement:
    def test_get_submodule_nested_path(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 3)))
        inner = seq.get_submodule("1.0")
        assert isinstance(inner, nn.Linear) and inner.out_features == 3

    def test_set_submodule_replaces_in_place(self):
        seq = nn.Sequential(nn.Linear(2, 4), nn.ReLU(), nn.Linear(4, 2))
        seq.set_submodule("0", nn.Linear(2, 8))
        assert seq[0].out_features == 8

    def test_set_submodule_preserves_sequential_order(self):
        """Replacing a middle child must not change execution order (regression test)."""
        seq = nn.Sequential(nn.Linear(2, 4), nn.ReLU(), nn.Linear(4, 2))
        seq.set_submodule("0", nn.Linear(2, 4))
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        out = seq(x)             # would raise a shape error if order changed
        assert out.shape == (1, 2)
        assert [type(m).__name__ for m in seq] == ["Linear", "ReLU", "Linear"]

    def test_set_submodule_deep_path(self):
        net = TinyNet()
        net.set_submodule("fc1", nn.Linear(4, 32))
        assert net.fc1.out_features == 32

    def test_apply_visits_all_modules(self):
        net = TinyNet()
        visited = []
        net.apply(lambda m: visited.append(type(m).__name__))
        assert "TinyNet" in visited and visited.count("Linear") == 2


class TestModeAndState:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_zero_grad_clears_gradients(self):
        net = TinyNet()
        out = net(Tensor(np.ones((3, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_state_dict_strict_mismatch_raises(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nonexistent": np.zeros(1)})

    def test_load_state_dict_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_non_strict_load_reports_missing_and_unexpected(self):
        net = TinyNet()
        state = net.state_dict()
        removed = sorted(state)[0]
        del state[removed]
        state["bogus.weight"] = np.zeros(2, dtype=np.float32)
        report = net.load_state_dict(state, strict=False)
        assert report.missing_keys == [removed]
        assert report.unexpected_keys == ["bogus.weight"]
        missing, unexpected = report          # NamedTuple unpacking spelling
        assert (missing, unexpected) == (report.missing_keys, report.unexpected_keys)

    def test_clean_load_reports_empty(self):
        net1, net2 = TinyNet(), TinyNet()
        report = net2.load_state_dict(net1.state_dict())
        assert report.missing_keys == []
        assert report.unexpected_keys == []

    def test_non_strict_load_still_copies_matching_keys(self):
        net1, net2 = TinyNet(), TinyNet()
        state = net1.state_dict()
        state["bogus"] = np.zeros(1, dtype=np.float32)
        net2.load_state_dict(state, strict=False)
        np.testing.assert_allclose(net2.fc1.weight.data, net1.fc1.weight.data)


class TestContainers:
    def test_sequential_forward(self):
        seq = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        out = seq(Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)

    def test_sequential_len_iter_getitem(self):
        seq = nn.Sequential(nn.Linear(1, 1), nn.ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.ReLU)
        assert len(list(iter(seq))) == 2

    def test_sequential_append(self):
        seq = nn.Sequential(nn.Linear(2, 2))
        seq.append(nn.ReLU())
        assert len(seq) == 2

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml.parameters())) == 0 or True  # ModuleList itself holds no params directly
        parent = nn.Sequential()
        parent.add_module("list", ml)
        assert len(parent.parameters()) == 4

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([nn.Linear(1, 1)])(None)

    def test_identity_passthrough(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x
