"""Metrics registry (repro.telemetry.metrics): instruments, the versioned
snapshot contract, collector isolation, and Prometheus text exposition.

``LatencyTracker``/``BatchSizeHistogram`` behaviour inherited from the old
``repro.profiling.latency`` home keeps its coverage in
``test_profiling_latency.py`` (importing through the shim); this file covers
what the registry adds on top.
"""

import json
import threading

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
    validate_snapshot,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == pytest.approx(1.0)

    def test_counter_threads_lose_nothing(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry("test")
        assert registry.counter("requests") is registry.counter("requests")
        assert registry.latency("lat") is registry.latency("lat")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry("test")
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_instrument_names_sorted(self):
        registry = MetricsRegistry("test")
        registry.gauge("b")
        registry.counter("a")
        assert registry.instrument_names() == ["a", "b"]

    def test_snapshot_covers_every_kind_and_validates(self):
        registry = MetricsRegistry("test")
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(2.0)
        registry.latency("wait").observe(0.010)
        registry.histogram("sizes", max_batch_size=8).observe(4)
        registry.register_collector("extra", lambda: {"alive": True, "n": 7})
        snap = registry.snapshot()
        validate_snapshot(snap)  # the contract the CI smoke leg asserts
        assert snap["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snap["namespace"] == "test"
        assert snap["counters"]["requests"] == 3
        assert snap["gauges"]["depth"] == 2.0
        assert snap["latency_ms"]["wait"]["p99"] == pytest.approx(10.0)
        assert snap["histograms"]["sizes"]["batches"] == 1
        assert snap["histograms"]["sizes"]["buckets"]["<=4"] == 1
        assert snap["collected"]["extra"] == {"alive": True, "n": 7}
        json.dumps(snap)  # must be directly serializable for /metrics

    def test_broken_collector_cannot_take_snapshot_down(self):
        registry = MetricsRegistry("test")

        def explode():
            raise RuntimeError("backend gone")

        registry.register_collector("flaky", explode)
        registry.counter("ok").inc()
        snap = registry.snapshot()
        assert snap["collected"]["flaky"] == {"error": "backend gone"}
        assert snap["counters"]["ok"] == 1
        validate_snapshot(snap)


class TestValidateSnapshot:
    def _good(self):
        registry = MetricsRegistry("v")
        registry.counter("c").inc()
        registry.latency("l").observe(0.001)
        registry.histogram("h", max_batch_size=4).observe(2)
        return registry.snapshot()

    def test_wrong_version_rejected(self):
        snap = self._good()
        snap["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_snapshot(snap)

    def test_missing_section_rejected(self):
        snap = self._good()
        del snap["gauges"]
        with pytest.raises(ValueError, match="gauges"):
            validate_snapshot(snap)

    def test_negative_counter_rejected(self):
        snap = self._good()
        snap["counters"]["c"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            validate_snapshot(snap)

    def test_bool_gauge_rejected(self):
        snap = self._good()
        snap["gauges"]["g"] = True
        with pytest.raises(ValueError, match="numeric"):
            validate_snapshot(snap)

    def test_nan_latency_rejected(self):
        snap = self._good()
        snap["latency_ms"]["l"]["p99"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            validate_snapshot(snap)

    def test_inconsistent_histogram_rejected(self):
        snap = self._good()
        snap["histograms"]["h"]["batches"] = 5
        with pytest.raises(ValueError, match="sum"):
            validate_snapshot(snap)


class TestPrometheus:
    def test_exposition_covers_every_instrument_kind(self):
        registry = MetricsRegistry("serve")
        registry.counter("requests").inc(2)
        registry.gauge("queue_depth").set(3)
        registry.latency("e2e").observe(0.5)
        registry.histogram("batch_sizes", max_batch_size=4).observe(3)
        registry.register_collector("worker", lambda: {"utilization": 0.5,
                                                       "label": "text"})
        text = registry.render_prometheus()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 2" in text
        assert "serve_queue_depth 3" in text
        assert 'serve_e2e_ms{quantile="99"}' in text
        assert 'serve_batch_sizes_bucket{le="+Inf"} 1' in text
        assert "serve_batch_sizes_count 1" in text
        assert "serve_worker_utilization 0.5" in text
        assert "label" not in text  # non-numeric collector leaves are dropped
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry("my-ns")
        registry.counter("http.requests").inc()
        text = registry.render_prometheus()
        assert "my_ns_http_requests_total 1" in text
