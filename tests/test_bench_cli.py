"""CLI surface of the perf-regression harness: repro bench run/compare/history/list."""

import io
import json
import os

import pytest

from repro.bench.contract import MetricSpec, build_result, write_result
from repro.bench.registry import _REGISTRY, available_suites, register_suite
from repro.cli import main


def _run(argv):
    stream = io.StringIO()
    code = main(argv, stream=stream)
    return code, stream.getvalue()


@pytest.fixture
def dummy_suite():
    """Register a fast synthetic suite; restore the registry afterwards."""
    available_suites()  # force the one-shot builtin import before snapshotting
    saved = dict(_REGISTRY)
    counter = {"calls": 0}

    @register_suite("cli-dummy", "synthetic suite for CLI tests",
                    [MetricSpec("score", "pts")], default_backend="numpy")
    def cli_dummy(budget):
        counter["calls"] += 1
        return {"score": 100.0 + counter["calls"]}

    try:
        yield "cli-dummy"
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


def _write_doc(path, suite="cli-dummy", value=100.0, **overrides):
    doc = build_result(suite, {"score": {"unit": "pts", "higher_is_better": True,
                                         "samples": [value]}},
                       backend="numpy", commit="feedface")
    doc.update(overrides)
    write_result(str(path), doc)
    return str(path)


class TestBenchList:
    def test_lists_builtin_suites(self):
        code, out = _run(["bench", "list"])
        assert code == 0
        for name in ("throughput", "pipeline", "dataparallel", "serving"):
            assert name in out

    def test_json_includes_metric_declarations(self):
        code, out = _run(["bench", "list", "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["serving"]["metrics"][-1]["higher_is_better"] is False


class TestBenchRun:
    def test_run_writes_contract_and_history(self, dummy_suite, tmp_path):
        out_dir = str(tmp_path)
        code, out = _run(["bench", "run", "--suite", dummy_suite,
                          "--out", out_dir, "--warmup", "1", "--repeat", "2"])
        assert code == 0
        doc = json.load(open(os.path.join(out_dir, "cli-dummy.bench.json")))
        assert doc["suite"] == dummy_suite
        assert len(doc["metrics"]["score"]["samples"]) == 2
        history = open(os.path.join(out_dir, "history.jsonl")).read().splitlines()
        assert len(history) == 1
        assert json.loads(history[0])["metric"] == "score"
        assert "score" in out and "wrote" in out

    def test_json_output_is_the_contract(self, dummy_suite, tmp_path):
        code, out = _run(["bench", "run", "--suite", dummy_suite,
                          "--out", str(tmp_path), "--warmup", "0",
                          "--repeat", "1", "--json"])
        assert code == 0
        assert json.loads(out)["schema_version"] == 1

    def test_no_history_skips_the_store(self, dummy_suite, tmp_path):
        code, _ = _run(["bench", "run", "--suite", dummy_suite,
                        "--out", str(tmp_path), "--warmup", "0",
                        "--repeat", "1", "--no-history"])
        assert code == 0
        assert not os.path.exists(os.path.join(str(tmp_path), "history.jsonl"))

    def test_unknown_suite_is_a_usage_error(self, tmp_path):
        code, out = _run(["bench", "run", "--suite", "no-such-suite",
                          "--out", str(tmp_path)])
        assert code == 2
        assert "unknown benchmark suite" in out

    def test_invalid_repeat_is_a_usage_error(self, dummy_suite, tmp_path):
        code, out = _run(["bench", "run", "--suite", dummy_suite,
                          "--out", str(tmp_path), "--repeat", "0"])
        assert code == 2
        assert "repeat" in out


class TestBenchCompare:
    def test_regression_exits_nonzero_with_markdown_table(self, tmp_path):
        base = _write_doc(tmp_path / "base.json", value=100.0)
        cand = _write_doc(tmp_path / "cand.json", value=50.0)
        code, out = _run(["bench", "compare", base, cand,
                          "--noise-threshold", "0.1"])
        assert code == 1
        assert "| metric | base | candidate |" in out
        assert "regressed" in out

    def test_within_noise_exits_zero(self, tmp_path):
        base = _write_doc(tmp_path / "base.json", value=100.0)
        cand = _write_doc(tmp_path / "cand.json", value=104.0)
        code, out = _run(["bench", "compare", base, cand,
                          "--noise-threshold", "0.1"])
        assert code == 0
        assert "within-noise" in out

    def test_improvement_exits_zero(self, tmp_path):
        base = _write_doc(tmp_path / "base.json", value=100.0)
        cand = _write_doc(tmp_path / "cand.json", value=150.0)
        code, out = _run(["bench", "compare", base, cand])
        assert code == 0
        assert "improved" in out

    def test_schema_mismatch_is_a_hard_error(self, tmp_path):
        base = _write_doc(tmp_path / "base.json")
        cand = str(tmp_path / "cand.json")
        doc = json.load(open(base))
        doc["schema_version"] = 999
        json.dump(doc, open(cand, "w"))
        code, out = _run(["bench", "compare", base, cand])
        assert code == 2
        assert "error" in out

    def test_missing_file_is_a_hard_error(self, tmp_path):
        base = _write_doc(tmp_path / "base.json")
        code, out = _run(["bench", "compare", base,
                          str(tmp_path / "absent.json")])
        assert code == 2
        assert "not found" in out

    def test_json_report(self, tmp_path):
        base = _write_doc(tmp_path / "base.json", value=100.0)
        cand = _write_doc(tmp_path / "cand.json", value=50.0)
        code, out = _run(["bench", "compare", base, cand, "--json"])
        assert code == 1
        payload = json.loads(out)
        assert payload["regressed"] == ["score"]
        assert payload["exit_code"] == 1


class TestBenchHistory:
    def _store(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        from repro.bench.history import append_result

        for value in (1.0, 2.0):
            append_result(store, json.load(open(
                _write_doc(tmp_path / "doc.json", value=value))))
        return store

    def test_history_view(self, tmp_path):
        store = self._store(tmp_path)
        code, out = _run(["bench", "history", "--store", store])
        assert code == 0
        assert "score" in out and "feedface" in out

    def test_history_json_and_filters(self, tmp_path):
        store = self._store(tmp_path)
        code, out = _run(["bench", "history", "--store", store,
                          "--suite", "cli-dummy", "--metric", "score",
                          "--last", "1", "--json"])
        assert code == 0
        payload = json.loads(out)
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["value"] == 2.0

    def test_missing_store_is_empty_not_fatal(self, tmp_path):
        code, out = _run(["bench", "history", "--store",
                          str(tmp_path / "none.jsonl")])
        assert code == 0
        assert "no history entries" in out

    def test_bad_last_is_a_usage_error(self, tmp_path):
        code, out = _run(["bench", "history", "--store",
                          str(tmp_path / "none.jsonl"), "--last", "0"])
        assert code == 2
