"""The unified method registry (repro.train.methods) and the spec-based
experiment runner built on top of it."""

import pytest

from repro.train.experiments import (
    ExperimentSpec,
    VisionExperimentConfig,
    run_experiment,
    run_vision_method,
)
from repro.train.methods import (
    Method,
    MethodResult,
    available_methods,
    build_method,
    method_descriptions,
    register_method,
)

ALL_METHODS = ["cuttlefish", "early_bird", "full_rank", "grasp", "imp",
               "lc", "pufferfish", "si_fd", "xnor"]


def _tiny_config(**overrides):
    defaults = dict(
        task="cifar10_small", model="resnet18", width_mult=0.125,
        epochs=2, batch_size=32, peak_lr=0.2, warmup_epochs=1,
        weight_decay=1e-3, max_batches_per_epoch=2,
    )
    defaults.update(overrides)
    return VisionExperimentConfig(**defaults)


class TestRegistry:
    def test_all_nine_methods_registered(self):
        assert available_methods() == ALL_METHODS

    def test_every_method_has_a_description(self):
        descriptions = method_descriptions()
        assert set(descriptions) == set(ALL_METHODS)
        assert all(descriptions[name] for name in ALL_METHODS)

    def test_build_method_round_trip(self):
        for name in available_methods():
            method = build_method(name)
            assert isinstance(method, Method)
            assert method.name == name

    def test_build_method_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="magic"):
            build_method("magic")

    def test_build_method_rejects_unknown_kwargs(self):
        with pytest.raises(ValueError) as excinfo:
            build_method("cuttlefish", cuttelfish_config=object())
        assert "cuttelfish_config" in str(excinfo.value)
        assert "cuttlefish_config" in str(excinfo.value)  # the accepted spelling is suggested

    def test_register_method_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="full_rank"):
            @register_method("full_rank")
            class Imposter(Method):
                pass

    def test_register_method_rejects_non_method_classes(self):
        with pytest.raises(TypeError):
            register_method("not_a_method")(object)


class TestRunExperiment:
    def test_spec_runs_any_registered_method(self):
        row = run_experiment(ExperimentSpec(method="pufferfish", config=_tiny_config()))
        assert row.method == "pufferfish"
        assert 0 < row.params_fraction < 1.0

    def test_method_kwargs_reach_the_method(self):
        from repro.baselines import PufferfishConfig
        row = run_experiment(ExperimentSpec(
            method="pufferfish", config=_tiny_config(),
            method_kwargs=dict(pufferfish_config=PufferfishConfig(full_rank_epochs=1,
                                                                  rank_ratio=0.125))))
        assert row.extra["switch_epoch"] == 1.0

    def test_unknown_method_kwargs_fail_loudly(self):
        # Regression: the legacy dispatch silently ignored typos after its
        # ``.pop()`` calls; the registry must name the offending keys instead.
        with pytest.raises(ValueError) as excinfo:
            run_vision_method("cuttlefish", _tiny_config(), cuttelfish_config=object())
        assert "cuttelfish_config" in str(excinfo.value)

    def test_unknown_kwargs_fail_before_any_training(self):
        config = _tiny_config()
        with pytest.raises(ValueError):
            run_experiment(ExperimentSpec(method="full_rank", config=config,
                                          method_kwargs={"bogus": 1}))

    def test_legacy_wrapper_matches_spec_runner(self):
        legacy = run_vision_method("si_fd", _tiny_config())
        spec = run_experiment(ExperimentSpec(method="si_fd", config=_tiny_config()))
        assert legacy.params == spec.params
        assert legacy.val_accuracy == pytest.approx(spec.val_accuracy)
        assert legacy.projected_gpu_hours == pytest.approx(spec.projected_gpu_hours)

    def test_custom_registered_method_is_runnable(self):
        # Downstream users can plug a new method into the same harness.
        name = "test_only_noop"
        try:
            @register_method(name)
            class NoOpMethod(Method):
                description = "full-rank training under a different name"
                uses_label_smoothing = True

            row = run_experiment(ExperimentSpec(method=name, config=_tiny_config()))
            assert row.method == name
            assert row.params_fraction == pytest.approx(1.0)
        finally:
            from repro.train import methods as methods_module
            methods_module._METHOD_REGISTRY.pop(name, None)


class TestMethodLifecycleContracts:
    def test_xnor_reports_step_level_binarisation(self):
        config = _tiny_config(epochs=2, max_batches_per_epoch=2)
        row = run_experiment(ExperimentSpec(method="xnor", config=config))
        # 2 epochs x 2 batches, counted through the on_batch_end event.
        assert row.extra["binarized_batches"] == 4.0

    def test_imp_overrides_the_training_loop(self):
        method = build_method("imp")
        assert type(method).execute is not Method.execute

    def test_finalize_returns_method_result(self):
        method = build_method("full_rank")
        assert method.uses_label_smoothing
        assert MethodResult(params=1, accuracy=0.0, wallclock_seconds=0.0,
                            epochs_full=1.0).overhead_multiplier == 1.0
