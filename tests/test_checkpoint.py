"""Checkpointing of full-rank and factorized models (repro.utils.checkpoint)."""

import json

import numpy as np
import pytest

from repro import nn
from repro.core import CuttlefishConfig, CuttlefishManager, factorize_model, full_rank_of
from repro.models import resnet18
from repro.utils import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    get_rng,
    load_checkpoint,
    read_checkpoint_meta,
    restore_model,
    save_checkpoint,
    seed_everything,
)


def _small_mlp(rng=None):
    rng = rng or get_rng(offset=11)
    model = nn.Sequential(
        nn.Linear(12, 24, rng=rng),
        nn.ReLU(),
        nn.Linear(24, 6, rng=rng),
    )
    return model


def _build_resnet():
    seed_everything(3)
    return resnet18(num_classes=4, width_mult=0.125)


class TestFullRankRoundtrip:
    def test_roundtrip_restores_exact_weights(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, metadata={"epoch": 3})

        other = _small_mlp(get_rng(offset=99))     # different init
        before = other.state_dict()
        assert any(not np.allclose(before[k], v) for k, v in model.state_dict().items())

        meta = load_checkpoint(path, other)
        for key, value in model.state_dict().items():
            np.testing.assert_allclose(other.state_dict()[key], value)
        assert meta["metadata"]["epoch"] == 3
        assert meta["ranks"] == {}

    def test_metadata_readable_without_loading(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, metadata={"val_accuracy": 0.5, "note": "warmup"})
        meta = read_checkpoint_meta(path)
        assert meta["metadata"]["val_accuracy"] == 0.5
        assert meta["num_parameters"] == model.num_parameters()

    def test_creates_parent_directories(self, tmp_path):
        model = _small_mlp()
        nested = tmp_path / "a" / "b" / "ckpt.npz"
        save_checkpoint(str(nested), model)
        assert nested.exists()

    def test_strict_load_rejects_structural_mismatch(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model)
        different = nn.Sequential(nn.Linear(12, 8, rng=get_rng(offset=5)))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(path, different)


class TestFactorizedRoundtrip:
    def test_checkpoint_records_ranks(self, tmp_path):
        model = _build_resnet()
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 2)
                 for p in model.factorization_candidates()[:4]}
        factorize_model(model, ranks, skip_non_reducing=False)
        path = str(tmp_path / "factorized.npz")
        save_checkpoint(path, model)
        meta = read_checkpoint_meta(path)
        assert meta["ranks"] == {k: int(v) for k, v in ranks.items()}
        assert meta["extra_bn"] is False

    def test_load_refactorizes_fresh_full_rank_model(self, tmp_path):
        model = _build_resnet()
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 2)
                 for p in model.factorization_candidates()[:4]}
        factorize_model(model, ranks, skip_non_reducing=False)
        path = str(tmp_path / "factorized.npz")
        save_checkpoint(path, model, metadata={"epoch": 7})

        restored = restore_model(path, _build_resnet)
        assert restored.num_parameters() == model.num_parameters()
        for key, value in model.state_dict().items():
            np.testing.assert_allclose(restored.state_dict()[key], value)

    def test_restored_model_produces_identical_outputs(self, tmp_path):
        model = _build_resnet()
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 2)
                 for p in model.factorization_candidates()[:6]}
        factorize_model(model, ranks, skip_non_reducing=False)
        path = str(tmp_path / "factorized.npz")
        save_checkpoint(path, model)
        restored = restore_model(path, _build_resnet)

        x = get_rng(offset=21).standard_normal((2, 3, 16, 16)).astype(np.float32)
        model.eval(); restored.eval()
        np.testing.assert_allclose(restored(x).data, model(x).data, rtol=1e-5, atol=1e-6)

    def test_extra_bn_variant_roundtrips(self, tmp_path):
        model = _build_resnet()
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 2)
                 for p in model.factorization_candidates()[:2]}
        factorize_model(model, ranks, extra_bn=True, skip_non_reducing=False)
        path = str(tmp_path / "bn.npz")
        save_checkpoint(path, model)
        assert read_checkpoint_meta(path)["extra_bn"] is True
        restored = restore_model(path, _build_resnet)
        assert restored.num_parameters() == model.num_parameters()

    def test_rank_mismatch_raises_in_strict_mode(self, tmp_path):
        model = _build_resnet()
        path_a = model.factorization_candidates()[0]
        factorize_model(model, {path_a: 3}, skip_non_reducing=False)
        path = str(tmp_path / "r3.npz")
        save_checkpoint(path, model)

        other = _build_resnet()
        factorize_model(other, {path_a: 5}, skip_non_reducing=False)  # wrong rank
        with pytest.raises(ValueError):
            load_checkpoint(path, other)


class TestFormatVersioning:
    def test_saved_checkpoints_carry_the_format_version(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model)
        assert read_checkpoint_meta(path)["format_version"] == CHECKPOINT_FORMAT_VERSION

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            read_checkpoint_meta(str(tmp_path / "nope.npz"))

    def test_non_checkpoint_npz_is_loud(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(CheckpointError, match="metadata block"):
            read_checkpoint_meta(path)

    def test_version_mismatch_names_both_versions(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "old.npz")
        save_checkpoint(path, model)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(arrays["__checkpoint_meta__"].tobytes().decode())
        meta["format_version"] = CHECKPOINT_FORMAT_VERSION + 7
        arrays["__checkpoint_meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, _small_mlp())
        message = str(excinfo.value)
        assert str(CHECKPOINT_FORMAT_VERSION + 7) in message
        assert str(CHECKPOINT_FORMAT_VERSION) in message

    def test_checkpoint_without_weights_is_loud(self, tmp_path):
        model = _small_mlp()
        path = str(tmp_path / "empty.npz")
        save_checkpoint(path, model)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files
                      if not key.startswith("state/")}
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="no 'state/'"):
            load_checkpoint(path, _small_mlp())


class TestCuttlefishCheckpointFlow:
    def test_checkpoint_after_forced_switch(self, tmp_path):
        """A checkpoint taken right after the Cuttlefish switch resumes correctly."""
        seed_everything(5)
        model = resnet18(num_classes=4, width_mult=0.125)
        manager = CuttlefishManager(
            model,
            config=CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                    profile_mode="none"),
        )
        # Give the weights genuine low-rank structure so factorization reduces size.
        rng = get_rng(offset=31)
        for path in manager.candidate_paths:
            module = model.get_submodule(path)
            w = module.weight.data
            flat = w.reshape(w.shape[0], -1)
            u = rng.standard_normal((flat.shape[0], 2)).astype(np.float32)
            v = rng.standard_normal((2, flat.shape[1])).astype(np.float32)
            module.weight.data = (u @ v).reshape(w.shape)
        switched = manager.observe_epoch(model, epoch=0)
        assert switched and manager.report.params_after < manager.report.params_before

        path = str(tmp_path / "switched.npz")
        save_checkpoint(path, model, metadata={"switch_epoch": manager.report.switch_epoch})
        restored = restore_model(path, lambda: (seed_everything(5), resnet18(num_classes=4, width_mult=0.125))[1])
        assert restored.num_parameters() == model.num_parameters()
        assert read_checkpoint_meta(path)["metadata"]["switch_epoch"] == manager.report.switch_epoch
