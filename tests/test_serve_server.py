"""HTTP inference server (repro.serve.server): endpoints, parity, metrics,
error handling, and concurrent clients — all over a real ThreadingHTTPServer
on an ephemeral port."""

import threading

import numpy as np
import pytest

from repro.core import factorize_model, full_rank_of
from repro.models import build_model
from repro.serve import (
    BatchingPolicy,
    ModelServer,
    ServeClient,
    ServeClientError,
    export_artifact,
    load_artifact,
)
from repro.tensor import no_grad
from repro.utils import get_rng, seed_everything

MLP_SPEC = {"name": "mlp",
            "kwargs": {"in_features": 20, "hidden_sizes": [40, 40], "num_classes": 6}}


@pytest.fixture
def mlp_artifact(tmp_path):
    seed_everything(21)
    model = build_model(MLP_SPEC["name"], **MLP_SPEC["kwargs"])
    model.eval()
    path = str(tmp_path / "mlp.npz")
    export_artifact(path, model, model_spec=MLP_SPEC, input_shape=(20,))
    return path, model


@pytest.fixture
def server(mlp_artifact):
    path, model = mlp_artifact
    instance = ModelServer(path, policy=BatchingPolicy(max_batch_size=8, max_wait_ms=5.0),
                           port=0)
    instance.start()
    yield instance, model
    instance.stop()


class TestEndpoints:
    def test_healthz(self, server):
        instance, _ = server
        health = ServeClient(instance.url).healthz()
        assert health["status"] == "ok"
        assert health["model"] == "mlp"
        assert health["uptime_s"] >= 0.0

    def test_predict_batch_bit_identical_to_direct_model(self, server):
        instance, model = server
        x = get_rng(offset=2).standard_normal((8, 20)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        out = ServeClient(instance.url).predict(x)
        np.testing.assert_array_equal(out, direct)

    def test_predict_single_input_spelling(self, server):
        instance, model = server
        x = get_rng(offset=2).standard_normal((8, 20)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        client = ServeClient(instance.url)
        single = client.predict_one(x[0])
        # One-at-a-time must agree with the batch rows (canonicalized geometry).
        np.testing.assert_array_equal(single, direct[0])

    def test_predict_returns_argmax(self, server):
        instance, model = server
        x = get_rng(offset=2).standard_normal((4, 20)).astype(np.float32)
        client = ServeClient(instance.url)
        body = client._request("/predict", {"inputs": x.tolist()})
        with no_grad():
            expected = np.argmax(model(x).data, axis=-1)
        assert body["argmax"] == [int(i) for i in expected]

    def test_metrics_populated_after_traffic(self, server):
        instance, _ = server
        client = ServeClient(instance.url)
        x = get_rng(offset=2).standard_normal((4, 20)).astype(np.float32)
        for i in range(4):
            client.predict_one(x[i])
        metrics = client.metrics()
        assert metrics["http"]["requests_total"] >= 4
        assert metrics["engine"]["requests_total"] >= 4
        assert metrics["e2e_latency_ms"]["count"] >= 4
        assert metrics["e2e_latency_ms"]["p99"] >= metrics["e2e_latency_ms"]["p50"] >= 0
        histogram = metrics["engine"]["batch_size_histogram"]
        assert sum(histogram.values()) == metrics["engine"]["batches_total"]

    def test_healthz_reports_queue_and_worker_liveness(self, server):
        instance, _ = server
        health = ServeClient(instance.url).healthz()
        assert health["queue_depth"] == 0
        assert health["worker_alive"] is True
        assert health["status"] == "ok"

    def test_healthz_degraded_when_worker_dead(self, mlp_artifact):
        path, _ = mlp_artifact
        instance = ModelServer(path, port=0)
        try:
            instance.batcher.close()  # worker exits; HTTP layer still up
            status, body = instance.handle_healthz()
            assert status == 200
            assert body["status"] == "degraded"
            assert body["worker_alive"] is False
        finally:
            instance.stop()

    def test_metrics_carries_validated_telemetry_snapshot(self, server):
        from repro.telemetry import validate_snapshot

        instance, _ = server
        client = ServeClient(instance.url)
        x = get_rng(offset=2).standard_normal((2, 20)).astype(np.float32)
        client.predict(x)
        snapshot = client.metrics()["telemetry"]
        validate_snapshot(snapshot)
        assert snapshot["namespace"] == "serve"
        assert snapshot["counters"]["requests_total"] >= 1
        assert snapshot["latency_ms"]["e2e_latency"]["count"] >= 1
        assert snapshot["collected"]["batcher_worker"]["alive"] is True

    def test_metrics_prometheus_exposition(self, server):
        import urllib.request

        instance, _ = server
        client = ServeClient(instance.url)
        x = get_rng(offset=2).standard_normal((2, 20)).astype(np.float32)
        client.predict(x)
        with urllib.request.urlopen(
                f"{instance.url}/metrics?format=prometheus", timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_http_requests_total" in text
        assert 'serve_e2e_latency_ms{quantile="99"}' in text
        assert "serve_batch_sizes_bucket" in text

    def test_unknown_route_404(self, server):
        instance, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            ServeClient(instance.url)._request("/nope")
        assert excinfo.value.status == 404

    def test_malformed_body_400(self, server):
        instance, _ = server
        client = ServeClient(instance.url)
        with pytest.raises(ServeClientError) as excinfo:
            client._request("/predict", {"wrong_key": [1, 2, 3]})
        assert excinfo.value.status == 400

    def test_wrong_sample_shape_400(self, server):
        instance, _ = server
        with pytest.raises(ServeClientError) as excinfo:
            ServeClient(instance.url).predict(np.zeros((2, 7), dtype=np.float32))
        assert excinfo.value.status == 400
        assert "shape" in excinfo.value.body["error"]

    def test_ragged_inputs_400(self, server):
        instance, _ = server
        client = ServeClient(instance.url)
        with pytest.raises(ServeClientError) as excinfo:
            client._request("/predict", {"inputs": [[1.0, 2.0], [3.0]]})
        assert excinfo.value.status == 400


class TestConcurrentClients:
    def test_parallel_single_requests_bit_identical(self, server):
        instance, model = server
        x = get_rng(offset=3).standard_normal((24, 20)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        results = [None] * 24
        errors = []

        def hit(i):
            try:
                results[i] = ServeClient(instance.url).predict_one(x[i])
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        np.testing.assert_array_equal(np.stack(results), direct)
        # Traffic of 24 singles through a max-batch-8 engine must have coalesced.
        stats = instance.batcher.stats()
        assert stats["batches_total"] < 24


class TestFactorizedServing:
    def test_low_rank_artifact_served_bit_identically(self, tmp_path):
        seed_everything(5)
        model = build_model("resnet18", num_classes=10, width_mult=0.125)
        paths = [p for p in model.factorization_candidates()
                 if p.startswith(("layer1.", "layer2.", "layer3."))]
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // 4) for p in paths}
        factorize_model(model, ranks, skip_non_reducing=False)
        model.eval()
        path = str(tmp_path / "lowrank.npz")
        export_artifact(path, model,
                        model_spec={"name": "resnet18",
                                    "kwargs": {"num_classes": 10, "width_mult": 0.125}},
                        input_shape=(3, 32, 32))

        x = get_rng(offset=6).standard_normal((8, 3, 32, 32)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        server = ModelServer(path, policy=BatchingPolicy(max_batch_size=8, max_wait_ms=5.0),
                             port=0)
        server.start()
        try:
            client = ServeClient(server.url)
            np.testing.assert_array_equal(client.predict(x), direct)      # batched
            np.testing.assert_array_equal(client.predict_one(x[3]), direct[3])  # unbatched
        finally:
            server.stop()


class TestLifecycle:
    def test_stop_drains_and_rejects_new_work(self, mlp_artifact):
        path, _ = mlp_artifact
        instance = ModelServer(path, port=0).start()
        url = instance.url
        client = ServeClient(url)
        client.predict_one(np.zeros(20, dtype=np.float32))
        instance.stop()
        with pytest.raises((ServeClientError, OSError)):
            client.predict_one(np.zeros(20, dtype=np.float32))

    def test_stop_without_start_returns_promptly(self, mlp_artifact):
        path, _ = mlp_artifact
        instance = ModelServer(path, port=0)
        done = threading.Event()

        def stopper():
            instance.stop()
            done.set()

        threading.Thread(target=stopper, daemon=True).start()
        assert done.wait(timeout=5.0), "stop() hung on a never-started server"

    def test_context_manager(self, mlp_artifact):
        path, _ = mlp_artifact
        with ModelServer(path, port=0) as instance:
            assert ServeClient(instance.url).healthz()["status"] == "ok"

    def test_serves_predictor_and_in_memory_model(self, mlp_artifact):
        path, model = mlp_artifact
        predictor = load_artifact(path)
        with ModelServer(predictor, port=0) as instance:
            assert ServeClient(instance.url).healthz()["status"] == "ok"
        with ModelServer(model, port=0, name="inmem") as instance:
            assert ServeClient(instance.url).healthz()["model"] == "inmem"


class TestPoolServing:
    def test_healthz_reports_pool_size_and_liveness(self, mlp_artifact):
        path, _ = mlp_artifact
        with ModelServer(path, port=0, workers=2) as instance:
            health = ServeClient(instance.url).healthz()
            assert health["workers"] == 2
            assert health["workers_alive"] == 2
            assert health["status"] == "ok"

    def test_pooled_predictions_bit_identical_to_single(self, mlp_artifact):
        path, model = mlp_artifact
        x = get_rng(offset=5).standard_normal((12, 20)).astype(np.float32)
        with no_grad():
            direct = model(x).data
        with ModelServer(path, port=0, workers=3,
                         policy=BatchingPolicy(max_batch_size=4,
                                               max_wait_ms=1.0)) as instance:
            out = ServeClient(instance.url).predict(x)
        assert np.array_equal(out, direct)

    def test_priority_field_accepted_and_bad_priority_400(self, mlp_artifact):
        path, _ = mlp_artifact
        with ModelServer(path, port=0) as instance:
            client = ServeClient(instance.url)
            out = client.predict_one(np.zeros(20, dtype=np.float32), priority=3)
            assert out.shape == (6,)
            status, body = instance.handle_predict(
                {"input": [0.0] * 20, "priority": "urgent"})
            assert status == 400
            assert "priority" in body["error"]

    def test_dead_pool_returns_retryable_503_and_respawn_recovers(self, mlp_artifact):
        path, _ = mlp_artifact
        instance = ModelServer(path, port=0).start()
        try:
            client = ServeClient(instance.url, retries=0)
            client.predict_one(np.zeros(20, dtype=np.float32))
            # Simulate worker death without closing the batcher: poison the
            # engine so the next batch raises WorkerDiedError in the worker.
            from repro.serve import WorkerDiedError

            worker = instance.batcher.pool.workers[0]
            original = worker.engine._predict

            def poisoned(batch):
                # One-shot: the engine heals before dying, so the respawned
                # worker (which reuses the still-alive inline engine) serves.
                worker.engine._predict = original
                raise WorkerDiedError("injected death")

            worker.engine._predict = poisoned
            with pytest.raises(ServeClientError) as excinfo:
                client.predict_one(np.zeros(20, dtype=np.float32))
            assert excinfo.value.status == 503
            assert excinfo.value.body.get("retry") is True
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["workers_alive"] == 0
            respawned = client.respawn()
            assert respawned["respawned"] == 1
            assert respawned["workers_alive"] == 1
            out = client.predict_one(np.zeros(20, dtype=np.float32))
            assert out.shape == (6,)
            assert client.healthz()["status"] == "ok"
        finally:
            instance.stop()
