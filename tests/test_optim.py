"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import (
    Adam,
    AdamW,
    ConstantLR,
    CosineAnnealingLR,
    LinearWarmup,
    MultiStepLR,
    SGD,
    WarmupMultiStepLR,
    build_paper_cifar_schedule,
)
from repro.tensor import Tensor


def make_param(values):
    return Parameter(np.asarray(values, dtype=np.float32))


class TestSGD:
    def test_plain_sgd_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, 0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95])

    def test_momentum_accumulates_velocity(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()                      # v=1, p=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()                      # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_weight_decay_added_to_gradient(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [0.99], rtol=1e-6)

    def test_weight_decay_exclusion(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        opt.exclude_from_weight_decay([p])
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_nesterov(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9, nesterov=True)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-1.9], rtol=1e-6)

    def test_skips_parameters_without_grad(self):
        p = make_param([1.0])
        SGD([p], lr=0.1, momentum=0.9).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.ones(1, dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_adamw_first_step_is_lr_sized(self):
        p = make_param([0.0])
        opt = AdamW([p], lr=0.01, weight_decay=0.0)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_adamw_decoupled_weight_decay(self):
        p = make_param([1.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        # No gradient ⇒ update is pure decoupled decay: 1 - 0.1*0.5*1.
        np.testing.assert_allclose(p.data, [0.95], atol=1e-6)

    def test_adam_coupled_l2(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        # Coupled L2 turns the zero gradient into 0.5 ⇒ Adam normalises it to ≈lr step.
        assert p.data[0] < 1.0

    def test_adamw_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = AdamW([p], lr=0.3, weight_decay=0.0)
        for _ in range(200):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.1


class TestOptimizerStateManagement:
    def test_set_parameters_drops_stale_state(self):
        p1, p2 = make_param([1.0]), make_param([2.0])
        opt = SGD([p1], lr=0.1, momentum=0.9)
        p1.grad = np.ones(1, dtype=np.float32)
        opt.step()
        assert id(p1) in opt.state
        opt.set_parameters([p2])
        assert id(p1) not in opt.state
        assert opt.params == [p2]

    def test_set_parameters_keeps_surviving_state(self):
        p1, p2 = make_param([1.0]), make_param([2.0])
        opt = SGD([p1, p2], lr=0.1, momentum=0.9)
        for p in (p1, p2):
            p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        opt.set_parameters([p1])
        assert id(p1) in opt.state


class TestSchedulers:
    def _opt(self, lr=1.0):
        return SGD([make_param([0.0])], lr=lr)

    def test_constant(self):
        sched = ConstantLR(self._opt(0.5))
        for _ in range(3):
            assert sched.step() == 0.5

    def test_multistep_decay_points(self):
        opt = self._opt(1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        # Construction sets the epoch-0 LR; each step() advances one epoch.
        assert opt.lr == pytest.approx(1.0)
        lrs = [sched.step() for _ in range(5)]    # epochs 1..5
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01], rtol=1e-6)

    def test_linear_warmup_reaches_base(self):
        opt = self._opt(0.8)
        sched = LinearWarmup(opt, warmup_epochs=4, start_lr=0.1)
        values = [opt.lr] + [sched.step() for _ in range(5)]
        assert values[0] == pytest.approx(0.1)
        assert values[-1] == pytest.approx(0.8)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_warmup_multistep_schedule_matches_paper_shape(self):
        opt = self._opt(0.8)
        sched = WarmupMultiStepLR(opt, warmup_epochs=5, start_lr=0.1, milestones=[150, 225])
        values = [sched.get_lr(e) for e in (0, 4, 5, 149, 150, 225)]
        assert values[0] == pytest.approx(0.1)
        assert values[2] == pytest.approx(0.8)
        assert values[4] == pytest.approx(0.08)
        assert values[5] == pytest.approx(0.008)

    def test_build_paper_cifar_schedule_milestones(self):
        opt = self._opt(0.8)
        sched = build_paper_cifar_schedule(opt, total_epochs=300, peak_lr=0.8, start_lr=0.1)
        assert sched.milestones == [150, 225]

    def test_cosine_annealing_endpoints(self):
        opt = self._opt(1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.0)
        assert sched.get_lr(0) == pytest.approx(1.0)
        assert sched.get_lr(10) == pytest.approx(0.0, abs=1e-9)
        assert sched.get_lr(5) == pytest.approx(0.5, abs=1e-6)

    def test_scale_base_lr(self):
        opt = self._opt(0.9)
        sched = ConstantLR(opt)
        sched.scale_base_lr(1.0 / 3.0)
        assert sched.step() == pytest.approx(0.3)

    def test_scheduler_sets_optimizer_lr(self):
        opt = self._opt(1.0)
        MultiStepLR(opt, milestones=[1], gamma=0.5)
        assert opt.lr == 1.0


class TestSchedulerResumeAndScaling:
    """Resume ordering (`step(epoch=k)` then `step()` -> k+1), mid-run
    `scale_base_lr` composition with passed milestones, and loud warmup
    validation."""

    def _opt(self, lr):
        return SGD([make_param([0.0])], lr=lr)

    @pytest.mark.parametrize("build", [
        lambda opt: ConstantLR(opt),
        lambda opt: MultiStepLR(opt, milestones=[2, 4], gamma=0.1),
        lambda opt: LinearWarmup(opt, warmup_epochs=3, start_lr=0.1),
        lambda opt: WarmupMultiStepLR(opt, warmup_epochs=2, start_lr=0.1,
                                      milestones=[4]),
        lambda opt: CosineAnnealingLR(opt, total_epochs=8),
    ])
    def test_explicit_step_then_argless_continues_from_k_plus_one(self, build):
        fresh = build(self._opt(0.8))
        sequence = [fresh.optimizer.lr] + [fresh.step() for _ in range(5)]

        resumed = build(self._opt(0.8))
        resumed.step(epoch=3)             # the resume path
        assert resumed.last_epoch == 3
        assert resumed.optimizer.lr == pytest.approx(sequence[3])
        continued = resumed.step()        # must continue from epoch 4
        assert resumed.last_epoch == 4
        assert continued == pytest.approx(sequence[4])

    def test_negative_resume_epoch_raises(self):
        sched = ConstantLR(self._opt(1.0))
        with pytest.raises(ValueError, match="non-negative"):
            sched.step(epoch=-1)

    def test_scale_base_lr_composes_with_passed_milestones(self):
        opt = self._opt(1.0)
        sched = MultiStepLR(opt, milestones=[1, 3], gamma=0.1)
        sched.step(epoch=2)               # one milestone passed: lr = 0.1
        assert opt.lr == pytest.approx(0.1)
        sched.scale_base_lr(0.5)
        # Composes: scaled base *and* the decay already earned, immediately.
        assert opt.lr == pytest.approx(0.05)
        # Argless step continues to epoch 3 — second milestone fires on the
        # scaled base, stacking both decays.
        assert sched.step() == pytest.approx(0.005)
        assert sched.last_epoch == 3

    def test_scale_base_lr_applies_immediately(self):
        opt = self._opt(0.9)
        sched = ConstantLR(opt)
        sched.scale_base_lr(1.0 / 3.0)
        assert opt.lr == pytest.approx(0.3)   # before any further step()

    def test_linear_warmup_zero_epochs_raises(self):
        with pytest.raises(ValueError, match="warmup_epochs"):
            LinearWarmup(self._opt(0.8), warmup_epochs=0, start_lr=0.1)
