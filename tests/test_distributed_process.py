"""Tests for process-mode data parallelism (forked workers + shared memory).

The contract under test (DESIGN.md §13): ``mode="process"`` runs the same
lockstep epoch as thread mode with one forked worker per rank and all
parameter/gradient traffic through one shared-memory segment — and the
numerics must not notice.  Covered here:

* bit-parity — ``world_size=1`` identical to the plain pipeline ``Trainer``;
  ``world_size=2`` bit-stable across reruns and bit-identical to thread mode
  (parameters, losses, and BatchNorm buffers); bucket-boundary configurations
  (tiny ``bucket_elems``, single-parameter models) agree across modes;
* lifecycle — segments unlink on shutdown, on worker crash, and on worker
  exception; shutdown is idempotent; training resumes after shutdown;
  structural callbacks re-fork the worker generation;
* failure semantics — a worker exception propagates with its traceback, a
  worker killed mid-step raises ``ReplicaError``, and neither leaks a
  ``/dev/shm`` segment;
* integration — ``fit``/``evaluate``, ``max_batches_per_epoch``, per-replica
  pipeline stats, ``run_experiment(dp_mode="process")`` rows matching thread
  rows, and the CLI flag.
"""

import glob
import os

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, PipelineLoader, build_replica_loaders
from repro.distributed import DataParallelTrainer, ReplicaError
from repro.models import build_model
from repro.optim import SGD
from repro.tensor import functional as F
from repro.train.trainer import Callback, Trainer
from repro.utils import get_rng, seed_everything
from repro.utils.shm import SEGMENT_PREFIX, active_owned_segments


def make_dataset(n=64, image=8, num_classes=4, seed=0):
    seed_everything(seed)
    rng = get_rng(offset=5)
    images = rng.standard_normal((n, 3, image, image)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    return ArrayDataset(images, labels)


def make_model(num_classes=4, seed=0):
    return build_model("resnet18", num_classes=num_classes, width_mult=0.125,
                       small_input=True, rng=get_rng(offset=seed + 1))


def make_trainer(dataset, world_size, mode="process", batch_size=8, lr=0.05,
                 **kwargs):
    seed_everything(0)
    model = make_model()
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    train_loader = PipelineLoader(dataset, batch_size, shuffle=True)
    replica_loaders = build_replica_loaders(dataset, batch_size, world_size)
    return DataParallelTrainer(model, optimizer, train_loader,
                               world_size=world_size, mode=mode,
                               replica_loaders=replica_loaders, **kwargs)


def params_of(model):
    return [p.data.copy() for p in model.parameters()]


def buffers_of(model):
    return [buf.data.copy() for _, buf in model.named_buffers()]


def own_segments_on_disk():
    return glob.glob(os.path.join("/dev/shm", f"{SEGMENT_PREFIX}-{os.getpid()}-*"))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave zero owned segments, registered or on disk."""
    yield
    assert active_owned_segments() == []
    assert own_segments_on_disk() == []


def run_epochs(trainer, epochs=2):
    try:
        losses = [trainer.train_epoch()["loss"] for _ in range(epochs)]
        return losses, params_of(trainer.model), buffers_of(trainer.model)
    finally:
        trainer.shutdown()


# --------------------------------------------------------------------------- #
# Bit-parity
# --------------------------------------------------------------------------- #
class TestProcessModeParity:
    def test_world_size_one_bit_identical_to_trainer(self):
        dataset = make_dataset()
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = Trainer(model, optimizer,
                          PipelineLoader(dataset, 8, shuffle=True))
        ref_losses = [trainer.train_epoch()["loss"] for _ in range(2)]
        losses, params, buffers = run_epochs(make_trainer(dataset, 1))
        assert losses == ref_losses
        for a, b in zip(params_of(model), params):
            assert np.array_equal(a, b)
        for a, b in zip(buffers_of(model), buffers):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("world_size", [2, 3])
    def test_bit_stable_across_reruns(self, world_size):
        dataset = make_dataset()
        first = run_epochs(make_trainer(dataset, world_size))
        second = run_epochs(make_trainer(dataset, world_size))
        assert first[0] == second[0]
        for a, b in zip(first[1], second[1]):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("world_size", [1, 2])
    def test_thread_and_process_bit_identical(self, world_size):
        dataset = make_dataset()
        thread = run_epochs(make_trainer(dataset, world_size, mode="thread"))
        process = run_epochs(make_trainer(dataset, world_size, mode="process"))
        assert thread[0] == process[0]
        for a, b in zip(thread[1], process[1]):
            assert np.array_equal(a, b)
        for a, b in zip(thread[2], process[2]):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("bucket_elems", [1, 64, 1 << 18])
    def test_bucket_boundaries_cross_mode(self, bucket_elems):
        # Gradients far over, straddling, and far under the bucket cap must
        # all reduce to the same bits in both modes.
        dataset = make_dataset(n=32)
        thread = run_epochs(
            make_trainer(dataset, 2, mode="thread", bucket_elems=bucket_elems),
            epochs=1)
        process = run_epochs(
            make_trainer(dataset, 2, mode="process", bucket_elems=bucket_elems),
            epochs=1)
        assert thread[0] == process[0]
        for a, b in zip(thread[1], process[1]):
            assert np.array_equal(a, b)

    def test_single_parameter_model_cross_mode(self):
        # One bias-free Linear: one parameter, one bucket, no buffers — the
        # degenerate layout for the shared-segment carve.
        seed_everything(0)
        rng = get_rng(offset=5)
        features = rng.standard_normal((48, 12)).astype(np.float32)
        labels = rng.integers(0, 3, size=48).astype(np.int64)
        dataset = ArrayDataset(features, labels)

        def run(mode):
            seed_everything(0)
            model = nn.Linear(12, 3, bias=False, rng=get_rng(offset=2))
            assert len(list(model.parameters())) == 1
            trainer = DataParallelTrainer(
                model, SGD(model.parameters(), lr=0.1),
                PipelineLoader(dataset, 8, shuffle=True),
                world_size=2, mode=mode,
                replica_loaders=build_replica_loaders(dataset, 8, 2))
            return run_epochs(trainer)

        thread, process = run("thread"), run("process")
        assert thread[0] == process[0]
        assert np.array_equal(thread[1][0], process[1][0])

    def test_buffer_sync_disabled_matches_thread(self):
        dataset = make_dataset()
        thread = run_epochs(make_trainer(dataset, 2, mode="thread",
                                         sync_buffers_each_epoch=False))
        process = run_epochs(make_trainer(dataset, 2, mode="process",
                                          sync_buffers_each_epoch=False))
        assert thread[0] == process[0]
        for a, b in zip(thread[2], process[2]):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------------- #
class TestProcessModeLifecycle:
    def test_shutdown_unlinks_and_is_idempotent(self):
        dataset = make_dataset(n=16)
        dp = make_trainer(dataset, 2)
        dp.train_epoch()
        assert len(active_owned_segments()) == 1
        dp.shutdown()
        assert active_owned_segments() == []
        dp.shutdown()  # second call is a no-op

    def test_training_resumes_after_shutdown(self):
        dataset = make_dataset(n=16)
        dp = make_trainer(dataset, 2)
        first = dp.train_epoch()["loss"]
        dp.shutdown()
        second = dp.train_epoch()["loss"]  # fresh generation forked
        dp.shutdown()
        assert np.isfinite(first) and np.isfinite(second)
        assert dp.epochs_completed == 2

    def test_params_detached_after_shutdown(self):
        dataset = make_dataset(n=16)
        dp = make_trainer(dataset, 1)
        dp.train_epoch()
        stepped = params_of(dp.model)
        dp.shutdown()
        # Values survive the unlink, on private memory.
        for a, p in zip(stepped, dp.model.parameters()):
            assert np.array_equal(a, p.data)
            assert p.data.base is None

    def test_structure_change_reforks_generation(self):
        dataset = make_dataset()

        class WidenHead(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                if epoch == 0:
                    old = trainer.model.fc
                    hidden = old.weight.data.shape[1]
                    trainer.model.fc = nn.Sequential(
                        nn.Linear(hidden, 8, rng=get_rng(offset=3)),
                        nn.Linear(8, old.weight.data.shape[0],
                                  rng=get_rng(offset=4)),
                    )
                    trainer.rebuild_optimizer_params()

        dp = make_trainer(dataset, 2, callbacks=[WidenHead()])
        try:
            history = dp.fit(epochs=2)
            assert len(history) == 2
            assert all(np.isfinite(r.train_loss) for r in history)
        finally:
            dp.shutdown()

    def test_fit_and_evaluate_on_master(self):
        dataset = make_dataset()
        val = make_dataset(n=16)
        seed_everything(0)
        model = make_model()
        dp = DataParallelTrainer(
            model, SGD(model.parameters(), lr=0.05, momentum=0.9),
            PipelineLoader(dataset, 8, shuffle=True), PipelineLoader(val, 8),
            world_size=2, mode="process",
            replica_loaders=build_replica_loaders(dataset, 8, 2))
        try:
            history = dp.fit(epochs=2)
            assert len(history) == 2
            assert all(r.val_accuracy is not None for r in history)
        finally:
            dp.shutdown()

    def test_max_batches_caps_lockstep_steps(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, 2, max_batches_per_epoch=2)
        try:
            dp.train_epoch()
            assert dp.last_epoch_pipeline_stats.samples == 2 * 2 * 8
        finally:
            dp.shutdown()

    def test_epoch_stats_carry_per_replica_split(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, 2)
        try:
            logs = dp.train_epoch()
            stats = dp.last_epoch_pipeline_stats
            assert stats.extra["world_size"] == 2.0
            assert "replica0_stall_seconds" in stats.extra
            assert "replica1_compute_seconds" in stats.extra
            assert stats.extra["wall_seconds"] > 0
            assert logs["samples_per_sec"] > 0
        finally:
            dp.shutdown()

    def test_step_callbacks_see_rank0_batch(self):
        dataset = make_dataset()
        seen = []

        class Recorder(Callback):
            def on_batch_begin(self, trainer, step, batch):
                seen.append(None if batch is None else batch[0].shape)

            def on_batch_end(self, trainer, step, logs):
                assert "loss" in logs

        dp = make_trainer(dataset, 2, callbacks=[Recorder()])
        try:
            dp.train_epoch()
        finally:
            dp.shutdown()
        assert seen and all(shape == (8, 3, 8, 8) for shape in seen)


# --------------------------------------------------------------------------- #
# Failure semantics
# --------------------------------------------------------------------------- #
class TestProcessModeFailures:
    def test_worker_exception_propagates_with_traceback(self):
        dataset = make_dataset()

        def exploding_loss(model, batch):
            raise ValueError("replica blew up in the child")

        dp = make_trainer(dataset, 2, loss_fn=exploding_loss)
        with pytest.raises(ReplicaError, match="replica blew up in the child"):
            dp.train_epoch()
        # The failed epoch tore the generation down hard — nothing leaked.
        assert active_owned_segments() == []
        dp.shutdown()

    def test_worker_crash_raises_and_unlinks(self):
        # os._exit skips every finally and atexit in the child: the parent's
        # liveness poll must catch the death, and the parent's teardown must
        # still unlink (crash-injection satellite).
        dataset = make_dataset()

        def dying_loss(model, batch):
            os._exit(3)

        dp = make_trainer(dataset, 2, loss_fn=dying_loss)
        with pytest.raises(ReplicaError, match="died"):
            dp.train_epoch()
        assert active_owned_segments() == []
        assert own_segments_on_disk() == []
        dp.shutdown()  # idempotent after the forced teardown

    def test_one_rank_crashing_is_still_detected(self, tmp_path):
        # Exactly ONE worker dies (first to create the flag file wins); the
        # surviving rank parks at the lockstep barrier and the parent's
        # liveness poll must still notice and raise.
        dataset = make_dataset()
        flag = str(tmp_path / "crash-once")

        def die_once_loss(model, batch):
            try:
                os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                os._exit(5)
            except FileExistsError:
                pass
            logits = model(batch[0])
            return F.softmax_cross_entropy(logits, batch[-1])

        dp = make_trainer(dataset, 2, loss_fn=die_once_loss)
        try:
            with pytest.raises(ReplicaError, match="died"):
                dp.train_epoch()
        finally:
            dp.shutdown()

    def test_invalid_mode_rejected(self):
        dataset = make_dataset(n=16)
        model = make_model()
        with pytest.raises(ValueError, match="mode"):
            DataParallelTrainer(model, SGD(model.parameters(), lr=0.05),
                                PipelineLoader(dataset, 8), mode="greenlet")


# --------------------------------------------------------------------------- #
# Experiment harness + CLI integration
# --------------------------------------------------------------------------- #
class TestProcessModeIntegration:
    def _config(self, **overrides):
        from repro.train.experiments import VisionExperimentConfig

        defaults = dict(epochs=1, batch_size=16, max_batches_per_epoch=2,
                        width_mult=0.125)
        defaults.update(overrides)
        return VisionExperimentConfig(**defaults)

    def test_dp_mode_validation(self):
        assert self._config(dp_mode="process").uses_pipeline_loader()
        with pytest.raises(ValueError, match="dp_mode"):
            self._config(dp_mode="fiber").uses_pipeline_loader()
        with pytest.raises(ValueError, match="pipeline loader"):
            self._config(dp_mode="process",
                         loader="legacy").uses_pipeline_loader()

    def test_run_experiment_process_rows_match_thread(self):
        from repro.train.experiments import ExperimentSpec, run_experiment

        def row(dp_mode):
            result = run_experiment(ExperimentSpec(
                method="full_rank",
                config=self._config(world_size=2, dp_mode=dp_mode)))
            d = result.as_dict()
            d.pop("wallclock_seconds")
            return d

        assert row("thread") == row("process")

    def test_run_experiment_world_size_one_process(self):
        from repro.train.experiments import ExperimentSpec, run_experiment

        _, context = run_experiment(
            ExperimentSpec(method="full_rank",
                           config=self._config(dp_mode="process")),
            return_context=True)
        assert isinstance(context.trainer, DataParallelTrainer)
        assert context.trainer.mode == "process"

    def test_cli_dp_mode_flag(self):
        import io

        from repro.cli import main

        stream = io.StringIO()
        code = main(["train", "--method", "full_rank", "--epochs", "1",
                     "--max-batches", "2", "--batch-size", "16",
                     "--world-size", "2", "--dp-mode", "process"],
                    stream=stream)
        assert code == 0
        out = stream.getvalue()
        assert "dp_mode=process" in out
        assert "data-parallel throughput" in out
