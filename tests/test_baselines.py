"""Tests for the baseline methods (Pufferfish, SI&FD, LC, IMP, XNOR, GraSP, EB, distillation)."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    DistillationConfig,
    EarlyBirdConfig,
    GraSPConfig,
    IMPConfig,
    LCConfig,
    MaskManager,
    PufferfishConfig,
    SIFDConfig,
    binarize_with_ste,
    build_si_fd_model,
    build_student,
    compute_grasp_masks,
    convert_to_xnor,
    effective_parameter_fraction,
    make_distillation_loss,
    optimal_rank,
    prunable_parameters,
    soft_cross_entropy,
    train_early_bird,
    train_grasp,
    train_imp,
    train_lc_compression,
    train_pufferfish,
    train_si_fd,
)
from repro.baselines.xnor import BinarizedConv2d, BinarizedLinear
from repro.core import is_low_rank
from repro.data import ArrayDataset, DataLoader
from repro.models import BertForSequenceClassification, MLP, bert_micro, resnet18
from repro.optim import SGD
from repro.tensor import Tensor
from repro.utils import get_rng


def mlp_loaders(n=192, dim=12, classes=3, batch=48):
    rng = get_rng(offset=31)
    centers = rng.standard_normal((classes, dim))
    labels = rng.integers(0, classes, size=n)
    feats = (centers[labels] + 0.3 * rng.standard_normal((n, dim))).astype(np.float32)
    ds = ArrayDataset(feats, labels.astype(np.int64))
    return DataLoader(ds, batch_size=batch, shuffle=True), DataLoader(ds, batch_size=batch)


def make_mlp():
    return MLP(12, [32, 32, 32], 3)


class TestPufferfish:
    def test_switch_at_configured_epoch(self):
        train_loader, val_loader = mlp_loaders()
        model = make_mlp()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        config = PufferfishConfig(full_rank_epochs=2, rank_ratio=0.25)
        trainer, report = train_pufferfish(model, opt, train_loader, val_loader, epochs=4, config=config)
        assert report.switch_epoch == 2
        assert report.params_after < report.params_before
        assert report.compression_ratio > 1.0

    def test_k_skips_leading_candidates(self):
        train_loader, _ = mlp_loaders()
        model = make_mlp()
        candidates = model.factorization_candidates()
        opt = SGD(model.parameters(), lr=0.1)
        config = PufferfishConfig(full_rank_epochs=1, num_unfactorized=2, rank_ratio=0.25)
        _, report = train_pufferfish(model, opt, train_loader, epochs=1, config=config)
        assert candidates[0] not in report.factorized_paths
        assert candidates[-1] in report.factorized_paths

    def test_fixed_ratio_ranks(self):
        train_loader, _ = mlp_loaders()
        model = make_mlp()
        opt = SGD(model.parameters(), lr=0.1)
        _, report = train_pufferfish(model, opt, train_loader, epochs=1,
                                     config=PufferfishConfig(full_rank_epochs=1, rank_ratio=0.5))
        assert all(r == 16 for r in report.selected_ranks.values())

    def test_requires_candidates_for_plain_modules(self):
        train_loader, _ = mlp_loaders()
        model = nn.Sequential(nn.Linear(12, 16), nn.ReLU(), nn.Linear(16, 3))
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            train_pufferfish(model, opt, train_loader, epochs=1,
                             config=PufferfishConfig(full_rank_epochs=1))


class TestSIFD:
    def test_factorizes_at_initialisation(self):
        model = make_mlp()
        report = build_si_fd_model(model, SIFDConfig(rank_ratio=0.25))
        assert report.compression_ratio > 1.0
        assert all(is_low_rank(model.get_submodule(p)) for p in report.factorized_paths)

    def test_training_still_learns(self):
        train_loader, val_loader = mlp_loaders()
        model = make_mlp()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
        trainer, report = train_si_fd(model, opt, train_loader, val_loader, epochs=6,
                                      config=SIFDConfig(rank_ratio=0.25))
        assert trainer.final_val_accuracy() > 0.5
        assert report.params_after < report.params_before

    def test_rank_ratio_controls_size(self):
        small_model, large_model = make_mlp(), make_mlp()
        small = build_si_fd_model(small_model, SIFDConfig(rank_ratio=0.125))
        large = build_si_fd_model(large_model, SIFDConfig(rank_ratio=0.5))
        assert small.params_after < large.params_after


class TestLCCompression:
    def test_optimal_rank_monotone_in_penalty(self, rng):
        matrix = rng.standard_normal((40, 40))
        low_penalty = optimal_rank(matrix, rank_penalty=1e-6)
        high_penalty = optimal_rank(matrix, rank_penalty=1e-1)
        assert high_penalty <= low_penalty

    def test_optimal_rank_detects_true_rank(self, rng):
        u = rng.standard_normal((30, 3))
        v = rng.standard_normal((3, 30))
        matrix = u @ v
        assert optimal_rank(matrix, rank_penalty=1e-3) <= 5

    def test_training_learns_ranks_and_factorizes_at_end(self):
        train_loader, val_loader = mlp_loaders()
        model = make_mlp()
        opt = SGD(model.parameters(), lr=0.2, momentum=0.9)
        trainer, report = train_lc_compression(model, opt, train_loader, val_loader, epochs=4,
                                               config=LCConfig(rank_penalty=5e-4))
        assert report.c_steps == 4
        assert set(report.learned_ranks) == set(make_mlp().factorization_candidates())
        assert report.params_after <= report.params_before


class TestIMP:
    def test_mask_manager_prunes_per_layer_fraction(self):
        model = make_mlp()
        masks = MaskManager(model)
        masks.prune_by_magnitude(model, 0.2)
        assert masks.sparsity() == pytest.approx(0.2, abs=0.02)

    def test_prunable_parameters_are_conv_linear_weights(self):
        model = resnet18(num_classes=4, width_mult=0.125)
        names = prunable_parameters(model)
        assert all(name.endswith(".weight") for name in names)
        assert not any("bn" in name for name in names)

    def test_grad_hook_zeroes_pruned_positions(self):
        model = make_mlp()
        masks = MaskManager(model)
        for mask in masks.masks.values():
            mask[:] = 0.0
        for name, param in prunable_parameters(model).items():
            param.grad = np.ones_like(param.data)
        masks.grad_hook(model)
        assert all(np.all(p.grad == 0) for p in prunable_parameters(model).values())

    def test_imp_rounds_increase_sparsity(self):
        train_loader, val_loader = mlp_loaders(n=96)
        model = make_mlp()
        config = IMPConfig(rounds=3, epochs_per_round=1, prune_fraction=0.3)
        _, report = train_imp(model, lambda m: SGD(m.parameters(), lr=0.1),
                              train_loader, val_loader, config=config)
        assert len(report.sparsity_per_round) == 3
        assert report.sparsity_per_round[-1] > report.sparsity_per_round[0]
        assert report.effective_parameters < report.total_parameters


class TestXNOR:
    def test_binarize_ste_forward_values(self):
        weight = Tensor(np.array([[0.5, -2.0], [1.0, -1.0]], dtype=np.float32), requires_grad=True)
        binary = binarize_with_ste(weight)
        alpha = np.mean(np.abs(weight.data))
        np.testing.assert_allclose(np.abs(binary.data), alpha, rtol=1e-6)

    def test_binarize_ste_gradient_passes_through(self):
        weight = Tensor(np.array([1.0, -1.0], dtype=np.float32), requires_grad=True)
        binarize_with_ste(weight).sum().backward()
        np.testing.assert_allclose(weight.grad, [1.0, 1.0])

    def test_convert_replaces_layers_except_skipped(self):
        model = resnet18(num_classes=4, width_mult=0.125)
        converted = convert_to_xnor(model, skip_paths=["conv1", "fc"])
        assert converted
        assert isinstance(model.conv1, nn.Conv2d) and not isinstance(model.conv1, BinarizedConv2d)
        assert isinstance(model.get_submodule(converted[0]), (BinarizedConv2d, BinarizedLinear))

    def test_converted_model_trains(self):
        train_loader, _ = mlp_loaders(n=96)
        model = make_mlp()
        convert_to_xnor(model, skip_paths=["classifier"])
        from repro.train import Trainer
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), train_loader)
        history = trainer.fit(2)
        assert np.isfinite(history[-1].train_loss)

    def test_effective_fraction_is_one_bit(self):
        assert effective_parameter_fraction() == pytest.approx(1 / 32)


class TestGraSP:
    def test_masks_reach_target_sparsity(self):
        train_loader, _ = mlp_loaders()
        model = make_mlp()
        batch = next(iter(train_loader))
        report = compute_grasp_masks(model, batch, GraSPConfig(sparsity=0.4))
        assert report.sparsity == pytest.approx(0.4, abs=0.05)
        assert report.remaining_parameters < report.total_parameters

    def test_weights_do_not_change_during_scoring(self):
        train_loader, _ = mlp_loaders()
        model = make_mlp()
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        compute_grasp_masks(model, next(iter(train_loader)), GraSPConfig(sparsity=0.5))
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, before[name], atol=1e-5)

    def test_training_keeps_pruned_weights_at_zero(self):
        train_loader, val_loader = mlp_loaders()
        model = make_mlp()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer, report = train_grasp(model, opt, train_loader, val_loader, epochs=3,
                                      config=GraSPConfig(sparsity=0.5))
        for name, param in prunable_parameters(model).items():
            zeros = report.masks[name] == 0
            np.testing.assert_allclose(param.data[zeros], 0.0, atol=1e-7)


class TestEarlyBird:
    def test_ticket_found_and_channels_pruned(self):
        train_loader, val_loader = mlp_loaders()
        # EB needs BatchNorm scales: use a small conv net.
        model = resnet18(num_classes=3, width_mult=0.125)
        rng = get_rng(offset=77)
        images = rng.standard_normal((96, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 3, size=96).astype(np.int64)
        loader = DataLoader(ArrayDataset(images, labels), batch_size=48, shuffle=True)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer, report = train_early_bird(model, opt, loader, loader, epochs=4,
                                           config=EarlyBirdConfig(prune_ratio=0.3,
                                                                  mask_distance_threshold=0.2))
        assert report.ticket_epoch is not None
        assert 0.2 < report.channel_sparsity < 0.4
        assert report.effective_parameters < report.total_parameters

    def test_pruned_bn_scales_zeroed(self):
        model = resnet18(num_classes=3, width_mult=0.125)
        rng = get_rng(offset=78)
        images = rng.standard_normal((48, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 3, size=48).astype(np.int64)
        loader = DataLoader(ArrayDataset(images, labels), batch_size=48)
        opt = SGD(model.parameters(), lr=0.05)
        _, report = train_early_bird(model, opt, loader, epochs=3,
                                     config=EarlyBirdConfig(prune_ratio=0.3,
                                                            mask_distance_threshold=0.5))
        if report.ticket_epoch is not None:
            for name, mask in report.channel_masks.items():
                bn = model.get_submodule(name)
                np.testing.assert_allclose(bn.weight.data[mask == 0], 0.0, atol=1e-6)


class TestDistillation:
    def _glue_like_loader(self, vocab=200, classes=3, n=64, seq=12):
        rng = get_rng(offset=91)
        tokens = rng.integers(4, vocab, size=(n, seq)).astype(np.int64)
        mask = np.ones((n, seq), dtype=np.float32)
        labels = rng.integers(0, classes, size=n).astype(np.int64)
        return DataLoader(ArrayDataset(tokens, mask, labels), batch_size=32, shuffle=True)

    def test_student_is_smaller(self):
        teacher = BertForSequenceClassification(bert_micro(), num_classes=3)
        student = build_student(teacher, DistillationConfig(depth_fraction=0.5))
        assert student.num_parameters() < teacher.num_parameters()
        assert student.num_classes == teacher.num_classes

    def test_soft_cross_entropy_minimised_by_matching_logits(self, rng):
        teacher_logits = rng.standard_normal((8, 4)).astype(np.float32)
        matching = soft_cross_entropy(Tensor(teacher_logits), teacher_logits, temperature=2.0)
        mismatched = soft_cross_entropy(Tensor(-teacher_logits), teacher_logits, temperature=2.0)
        assert matching.item() < mismatched.item()

    def test_distillation_loss_runs_and_backprops(self):
        teacher = BertForSequenceClassification(bert_micro(), num_classes=3)
        student = build_student(teacher, DistillationConfig())
        loader = self._glue_like_loader()
        batch = next(iter(loader))
        loss_fn = make_distillation_loss(teacher, DistillationConfig())
        loss = loss_fn(student, batch)
        loss.backward()
        assert any(p.grad is not None for p in student.parameters())
