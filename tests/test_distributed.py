"""Tests for the thread-based data-parallel training engine.

Covers the deterministic reduction primitives (fixed-tree sum, bucket
planning, gradient mean-reduce, buffer averaging), cross-rank shard
semantics (disjoint-before-padding, full coverage, equal lengths, and the
padding rule matching single-rank gradient sums on the tiny ResNet cell),
and the ``DataParallelTrainer`` contract: ``world_size=1`` bit-identical to
the plain pipeline-loader ``Trainer``, ``world_size=N`` bit-stable across
reruns, structure re-sync after epoch callbacks mutate the master, loud
worker-error propagation, and deterministic BatchNorm buffer averaging.
"""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    PipelineLoader,
    PrefetchingLoader,
    ShardedSampler,
    build_replica_loaders,
    shard_loader,
)
from repro.distributed import (
    DataParallelTrainer,
    allreduce_gradients,
    mean_reduce_buffers,
    plan_buckets,
    tree_reduce,
)
from repro.distributed.reduce import DEFAULT_BUCKET_ELEMS
from repro.models import build_model
from repro.optim import SGD
from repro.tensor import functional as F
from repro.train.trainer import Callback, Trainer
from repro.utils import get_rng, seed_everything


# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #
def make_dataset(n=64, image=8, num_classes=4, seed=0):
    seed_everything(seed)
    rng = get_rng(offset=5)
    images = rng.standard_normal((n, 3, image, image)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    return ArrayDataset(images, labels)


def make_model(num_classes=4, seed=0):
    """The tiny ResNet cell: resnet18 at 1/8 width."""
    return build_model("resnet18", num_classes=num_classes, width_mult=0.125,
                       small_input=True, rng=get_rng(offset=seed + 1))


def make_trainer(dataset, world_size, batch_size=8, lr=0.05, **kwargs):
    model = make_model()
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    train_loader = PipelineLoader(dataset, batch_size, shuffle=True)
    replica_loaders = build_replica_loaders(dataset, batch_size, world_size)
    return DataParallelTrainer(model, optimizer, train_loader,
                               world_size=world_size,
                               replica_loaders=replica_loaders, **kwargs)


def params_of(model):
    return [p.data.copy() for p in model.parameters()]


# --------------------------------------------------------------------------- #
# Reduction primitives
# --------------------------------------------------------------------------- #
class TestTreeReduce:
    def test_matches_sum(self):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(37).astype(np.float32) for _ in range(5)]
        # Different association order than np.sum — equal to float tolerance.
        np.testing.assert_allclose(tree_reduce(arrays), np.sum(arrays, axis=0),
                                   rtol=1e-5, atol=1e-6)

    def test_order_is_a_function_of_count_only(self):
        # The float-op sequence must not depend on anything but the inputs in
        # index order: summing the same list twice is bitwise identical.
        rng = np.random.default_rng(1)
        arrays = [rng.standard_normal(1001).astype(np.float32) for _ in range(7)]
        first = tree_reduce([a.copy() for a in arrays])
        second = tree_reduce([a.copy() for a in arrays])
        assert np.array_equal(first, second)

    def test_single_input_returned_unchanged(self):
        a = np.arange(4.0)
        assert tree_reduce([a]) is a

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([])


class TestPlanBuckets:
    def test_respects_capacity(self):
        buckets = plan_buckets([10, 10, 10, 10], bucket_elems=25)
        assert buckets == [[0, 1], [2, 3]]

    def test_oversized_tensor_gets_own_bucket(self):
        buckets = plan_buckets([100, 3, 3], bucket_elems=10)
        assert buckets == [[0], [1, 2]]

    def test_covers_all_indices_in_order(self):
        sizes = [7, 1, 19, 4, 2]
        flat = [i for bucket in plan_buckets(sizes, bucket_elems=8) for i in bucket]
        assert flat == list(range(len(sizes)))

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            plan_buckets([1], bucket_elems=0)

    def test_exact_fit_closes_bucket(self):
        # A tensor landing exactly on the cap fills the bucket; the next
        # tensor starts a fresh one.
        assert plan_buckets([10, 3], bucket_elems=10) == [[0], [1]]
        assert plan_buckets([7, 3, 1], bucket_elems=10) == [[0, 1], [2]]

    def test_one_over_capacity_spills(self):
        assert plan_buckets([7, 4], bucket_elems=10) == [[0], [1]]

    def test_zero_size_tensors_cost_nothing(self):
        assert plan_buckets([0, 10, 0], bucket_elems=10) == [[0, 1, 2]]


class TestAllreduceGradients:
    def _grads(self, world_size, shapes, seed=0):
        rng = np.random.default_rng(seed)
        return [[rng.standard_normal(shape).astype(np.float32) for shape in shapes]
                for _ in range(world_size)]

    def test_mean_reduction(self):
        shapes = [(3, 4), (7,), (2, 2, 2)]
        replicas = self._grads(4, shapes)
        out = [np.empty(shape, dtype=np.float32) for shape in shapes]
        reduced = allreduce_gradients(replicas, out)
        assert reduced == len(shapes)
        for i, shape in enumerate(shapes):
            expected = np.mean([replicas[r][i] for r in range(4)], axis=0)
            np.testing.assert_allclose(out[i], expected, rtol=1e-5, atol=1e-6)

    def test_bucket_boundaries_do_not_change_values(self):
        shapes = [(5,), (11,), (3,), (8,)]
        replicas = self._grads(3, shapes, seed=2)
        big = [np.empty(s, dtype=np.float32) for s in shapes]
        small = [np.empty(s, dtype=np.float32) for s in shapes]
        allreduce_gradients(replicas, big, bucket_elems=1 << 20)
        allreduce_gradients(replicas, small, bucket_elems=4)
        for a, b in zip(big, small):
            np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_none_everywhere_is_skipped(self):
        replicas = [[None, np.ones(3, dtype=np.float32)] for _ in range(2)]
        out = [None, np.empty(3, dtype=np.float32)]
        assert allreduce_gradients(replicas, out) == 1
        np.testing.assert_allclose(out[1], np.ones(3))

    def test_rank_dependent_none_raises(self):
        replicas = [[np.ones(3, dtype=np.float32)], [None]]
        with pytest.raises(RuntimeError, match="presence mismatch"):
            allreduce_gradients(replicas, [np.empty(3, dtype=np.float32)])

    def test_length_mismatch_raises(self):
        replicas = [[np.ones(3, dtype=np.float32)], []]
        with pytest.raises(ValueError, match="structure diverged"):
            allreduce_gradients(replicas, [np.empty(3, dtype=np.float32)])

    def test_default_bucket_boundary_sizes(self):
        # Tensors exactly at, one under, and one over the default bucket
        # capacity: the exact/under tensors each fill (or nearly fill) a
        # bucket and the over-sized one gets a bucket of its own — and the
        # reduced values must be bitwise identical to the unbucketed reduce.
        shapes = [(DEFAULT_BUCKET_ELEMS,), (DEFAULT_BUCKET_ELEMS - 1,),
                  (DEFAULT_BUCKET_ELEMS + 1,)]
        assert plan_buckets([s[0] for s in shapes]) == [[0], [1], [2]]
        replicas = self._grads(2, shapes, seed=7)
        bucketed = [np.empty(s, dtype=np.float32) for s in shapes]
        whole = [np.empty(s, dtype=np.float32) for s in shapes]
        assert allreduce_gradients(replicas, bucketed) == 3
        allreduce_gradients(replicas, whole, bucket_elems=1 << 30)
        for a, b in zip(bucketed, whole):
            assert np.array_equal(a, b)

    def test_zero_size_gradients(self):
        # A zero-element parameter (e.g. an empty bias after pruning) must
        # ride through packing untouched and not perturb its bucket-mates.
        shapes = [(3,), (0,), (5,)]
        replicas = self._grads(3, shapes, seed=4)
        out = [np.empty(s, dtype=np.float32) for s in shapes]
        assert allreduce_gradients(replicas, out) == 3
        for i in (0, 2):
            expected = np.mean([replicas[r][i] for r in range(3)], axis=0)
            np.testing.assert_allclose(out[i], expected, rtol=1e-5, atol=1e-6)
        assert out[1].size == 0

    def test_single_parameter_model(self):
        # One tensor, one bucket: the degenerate single-param path.
        replicas = self._grads(4, [(9, 9)], seed=5)
        out = [np.empty((9, 9), dtype=np.float32)]
        assert allreduce_gradients(replicas, out) == 1
        expected = np.mean([replicas[r][0] for r in range(4)], axis=0)
        np.testing.assert_allclose(out[0], expected, rtol=1e-5, atol=1e-6)


class TestMeanReduceBuffers:
    def test_float_buffers_averaged(self):
        sets = [[np.full(4, float(rank), dtype=np.float32)] for rank in range(4)]
        reduced = mean_reduce_buffers(sets)
        np.testing.assert_allclose(reduced[0], np.full(4, 1.5))

    def test_integer_buffers_take_rank0(self):
        sets = [[np.array([1, 2])], [np.array([9, 9])]]
        reduced = mean_reduce_buffers(sets)
        np.testing.assert_array_equal(reduced[0], [1, 2])

    def test_inputs_untouched(self):
        first = np.ones(3, dtype=np.float32)
        sets = [[first], [np.full(3, 3.0, dtype=np.float32)]]
        mean_reduce_buffers(sets)
        np.testing.assert_allclose(first, np.ones(3))


# --------------------------------------------------------------------------- #
# Cross-rank shard semantics (the all-reduce's data contract)
# --------------------------------------------------------------------------- #
class TestShardSemantics:
    @pytest.mark.parametrize("n,world_size", [(64, 2), (64, 4), (33, 2),
                                              (10, 3), (7, 4), (2, 5)])
    def test_shards_partition_the_epoch(self, n, world_size):
        seed_everything(0)
        shards = [ShardedSampler(n, rank=r, world_size=world_size).indices(epoch=3)
                  for r in range(world_size)]
        lengths = {len(s) for s in shards}
        assert lengths == {(n + world_size - 1) // world_size}, \
            "all ranks must run the same number of steps"
        union = np.concatenate(shards)
        assert set(union.tolist()) == set(range(n)), "shards must cover every index"
        # Disjoint before padding: every index appears exactly once, plus the
        # cyclic repetitions the padding rule adds — spread as evenly as the
        # cycle allows (counts differ by at most one, never a starved rank).
        pad = (-n) % world_size
        counts = np.bincount(union, minlength=n)
        assert counts.sum() == n + pad
        assert counts.min() >= 1
        if pad == 0:
            assert (counts == 1).all()
        else:
            assert counts.max() - counts.min() <= 1

    def test_bad_rank_and_world_size_raise_loudly(self):
        with pytest.raises(ValueError, match="rank"):
            ShardedSampler(8, rank=2, world_size=2)
        with pytest.raises(ValueError, match="rank"):
            ShardedSampler(8, rank=-1, world_size=2)
        with pytest.raises(ValueError, match="world_size"):
            ShardedSampler(8, rank=0, world_size=0)
        with pytest.raises(ValueError, match="at least one sample"):
            ShardedSampler(0, rank=0, world_size=1)

    @pytest.mark.parametrize("n,world_size", [(24, 2), (22, 4)])
    def test_padding_rule_matches_single_rank_gradient_sums(self, n, world_size):
        """Averaging per-shard mean gradients == the gradient over the padded
        global batch on the tiny ResNet cell (the identity the all-reduce
        loop's lockstep padding exists to preserve).

        Eval-mode BatchNorm: the identity requires a batch-independent model
        function, and train-mode BN normalises with *local* batch statistics
        (data-parallel BN is local-BN here, exactly like torch DDP).
        """
        dataset = make_dataset(n=n)
        model = make_model()
        model.eval()

        def grad_for(indices):
            images = np.stack([dataset[i][0] for i in indices])
            labels = np.asarray([dataset[i][1] for i in indices])
            model.zero_grad()
            loss = F.softmax_cross_entropy(model(images), labels)
            loss.backward()
            return [p.grad.copy() for p in model.parameters()]

        shards = [ShardedSampler(n, rank=r, world_size=world_size).indices(epoch=0)
                  for r in range(world_size)]
        per_rank = [grad_for(shard) for shard in shards]
        averaged = [np.mean([per_rank[r][i] for r in range(world_size)], axis=0)
                    for i in range(len(per_rank[0]))]
        global_order = np.concatenate([
            ShardedSampler(n, rank=r, world_size=world_size).indices(epoch=0)
            for r in range(world_size)])
        reference = grad_for(global_order)
        for mean_grad, ref_grad in zip(averaged, reference):
            np.testing.assert_allclose(mean_grad, ref_grad, rtol=2e-4, atol=1e-6)


# --------------------------------------------------------------------------- #
# shard_loader
# --------------------------------------------------------------------------- #
class TestShardLoader:
    def test_shards_a_pipeline_loader(self):
        dataset = make_dataset()
        loader = PipelineLoader(dataset, 8, shuffle=True)
        sharded = shard_loader(loader, rank=1, world_size=2)
        assert isinstance(sharded.sampler, ShardedSampler)
        assert sharded.sampler.rank == 1
        assert len(sharded.sampler) == len(dataset) // 2

    def test_rewraps_prefetching_loader(self):
        dataset = make_dataset()
        loader = PrefetchingLoader(PipelineLoader(dataset, 8, shuffle=True),
                                   depth=2, workers=2)
        sharded = shard_loader(loader, rank=0, world_size=2)
        assert isinstance(sharded, PrefetchingLoader)
        assert sharded.depth == 2 and sharded.workers == 2
        assert isinstance(sharded.loader.sampler, ShardedSampler)

    def test_legacy_loader_rejected(self):
        dataset = make_dataset()
        with pytest.raises(TypeError, match="PipelineLoader"):
            shard_loader(DataLoader(dataset, 8), rank=0, world_size=2)

    def test_world_size_one_matches_unsharded_order(self):
        dataset = make_dataset()
        loader = PipelineLoader(dataset, 8, shuffle=True)
        sharded = shard_loader(loader, rank=0, world_size=1)
        np.testing.assert_array_equal(loader.sampler.indices(4),
                                      sharded.sampler.indices(4))


# --------------------------------------------------------------------------- #
# DataParallelTrainer
# --------------------------------------------------------------------------- #
class TestDataParallelTrainer:
    def test_world_size_one_bit_identical_to_trainer(self):
        dataset = make_dataset()
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = Trainer(model, optimizer, PipelineLoader(dataset, 8, shuffle=True))
        ref = [trainer.train_epoch() for _ in range(2)]
        ref_params = params_of(model)

        seed_everything(0)
        dp = make_trainer(dataset, world_size=1)
        got = [dp.train_epoch() for _ in range(2)]
        for r, g in zip(ref, got):
            assert r["loss"] == g["loss"]
            assert r["accuracy"] == g["accuracy"]
        for a, b in zip(ref_params, params_of(dp.model)):
            assert np.array_equal(a, b)

    def test_default_loaders_from_shard_loader(self):
        # replica_loaders=None exercises the shard_loader default path.
        dataset = make_dataset()
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        dp = DataParallelTrainer(model, optimizer,
                                 PipelineLoader(dataset, 8, shuffle=True),
                                 world_size=2)
        assert len(dp.replica_loaders) == 2
        logs = dp.train_epoch()
        assert np.isfinite(logs["loss"])

    @pytest.mark.parametrize("world_size", [2, 4])
    def test_bit_stable_across_reruns(self, world_size):
        # Three reruns: any arrival-order leak into the reduction would show
        # up as bit drift between independently scheduled executions.
        dataset = make_dataset()

        def run():
            seed_everything(0)
            dp = make_trainer(dataset, world_size=world_size)
            losses = [dp.train_epoch()["loss"] for _ in range(2)]
            return losses, params_of(dp.model)

        first_losses, first_params = run()
        for _ in range(2):
            losses, params = run()
            assert losses == first_losses
            for a, b in zip(first_params, params):
                assert np.array_equal(a, b)

    def test_replicas_and_master_agree_after_epoch(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, world_size=3)
        dp.train_epoch()
        master = params_of(dp.model)
        for replica in dp.replica_models[1:]:
            for a, b in zip(master, params_of(replica)):
                assert np.array_equal(a, b)

    def test_buffers_are_mean_synced(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, world_size=2)
        dp.train_epoch()
        for (_, master_buf), (_, replica_buf) in zip(
                dp.model.named_buffers(), dp.replica_models[1].named_buffers()):
            assert np.array_equal(master_buf.data, replica_buf.data)

    def test_fit_runs_evaluate_on_master(self):
        dataset = make_dataset()
        val = make_dataset(n=16, seed=0)
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        dp = DataParallelTrainer(model, optimizer,
                                 PipelineLoader(dataset, 8, shuffle=True),
                                 PipelineLoader(val, 8),
                                 world_size=2,
                                 replica_loaders=build_replica_loaders(dataset, 8, 2))
        history = dp.fit(epochs=2)
        assert len(history) == 2
        assert all(r.val_accuracy is not None for r in history)

    def test_world_size_validation(self):
        dataset = make_dataset()
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05)
        with pytest.raises(ValueError, match="world_size"):
            DataParallelTrainer(model, optimizer,
                                PipelineLoader(dataset, 8), world_size=0)
        with pytest.raises(ValueError, match="replica loaders"):
            DataParallelTrainer(model, optimizer,
                                PipelineLoader(dataset, 8), world_size=2,
                                replica_loaders=[PipelineLoader(dataset, 8)])

    def test_worker_error_propagates(self):
        dataset = make_dataset()
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05)

        calls = []

        def exploding_loss(model_, batch):
            calls.append(1)
            if len(calls) > 2:
                raise RuntimeError("replica blew up")
            logits = model_(batch[0])
            return F.softmax_cross_entropy(logits, batch[-1])

        dp = DataParallelTrainer(model, optimizer,
                                 PipelineLoader(dataset, 8, shuffle=True),
                                 world_size=2,
                                 replica_loaders=build_replica_loaders(dataset, 8, 2),
                                 loss_fn=exploding_loss)
        with pytest.raises(RuntimeError, match="replica blew up"):
            dp.train_epoch()

    def test_structure_resync_after_epoch_callback(self):
        # Simulate a Cuttlefish-style structural change: an epoch callback
        # that re-initialises the classifier head with a new shape.
        from repro import nn

        dataset = make_dataset()
        seed_everything(0)
        model = make_model()
        optimizer = SGD(model.parameters(), lr=0.05)

        class WidenHead(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                if epoch == 0:
                    old = trainer.model.fc
                    hidden = old.weight.data.shape[1]
                    trainer.model.fc = nn.Sequential(
                        nn.Linear(hidden, 8, rng=get_rng(offset=3)),
                        nn.Linear(8, old.weight.data.shape[0], rng=get_rng(offset=4)),
                    )
                    trainer.rebuild_optimizer_params()

        dp = DataParallelTrainer(model, optimizer,
                                 PipelineLoader(dataset, 8, shuffle=True),
                                 world_size=2,
                                 replica_loaders=build_replica_loaders(dataset, 8, 2),
                                 callbacks=[WidenHead()])
        history = dp.fit(epochs=2)
        assert len(history) == 2
        # Replicas were re-cloned to the new structure and stay in sync.
        master = params_of(dp.model)
        assert len(params_of(dp.replica_models[1])) == len(master)
        for a, b in zip(master, params_of(dp.replica_models[1])):
            assert np.array_equal(a, b)

    def test_epoch_stats_carry_per_replica_split(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, world_size=2)
        logs = dp.train_epoch()
        stats = dp.last_epoch_pipeline_stats
        assert stats.extra["world_size"] == 2.0
        assert "replica0_stall_seconds" in stats.extra
        assert "replica1_compute_seconds" in stats.extra
        assert stats.extra["wall_seconds"] > 0
        assert logs["samples_per_sec"] > 0

    def test_max_batches_caps_lockstep_steps(self):
        dataset = make_dataset()
        dp = make_trainer(dataset, world_size=2, max_batches_per_epoch=2)
        dp.train_epoch()
        # 2 steps x 2 replicas x batch 8 samples.
        assert dp.last_epoch_pipeline_stats.samples == 2 * 2 * 8


# --------------------------------------------------------------------------- #
# Experiment harness integration
# --------------------------------------------------------------------------- #
class TestExperimentIntegration:
    def _config(self, **overrides):
        from repro.train.experiments import VisionExperimentConfig

        defaults = dict(epochs=1, batch_size=16, max_batches_per_epoch=2,
                        width_mult=0.125)
        defaults.update(overrides)
        return VisionExperimentConfig(**defaults)

    def test_world_size_implies_pipeline_loader(self):
        assert self._config(world_size=2).uses_pipeline_loader()
        with pytest.raises(ValueError, match="pipeline loader"):
            self._config(world_size=2, loader="legacy").uses_pipeline_loader()

    def test_goyal_lr_scaling(self):
        assert self._config(world_size=4, peak_lr=0.1).effective_peak_lr() == \
            pytest.approx(0.4)
        assert self._config(world_size=4, peak_lr=0.1,
                            dp_lr_scaling=False).effective_peak_lr() == \
            pytest.approx(0.1)
        assert self._config(world_size=1, peak_lr=0.1).effective_peak_lr() == \
            pytest.approx(0.1)

    def test_run_experiment_world_size_rows_bit_stable(self):
        from repro.train.experiments import ExperimentSpec, run_experiment

        def row():
            result = run_experiment(ExperimentSpec(
                method="full_rank", config=self._config(world_size=2)))
            d = result.as_dict()
            d.pop("wallclock_seconds")
            return d

        assert row() == row()

    def test_run_experiment_uses_dp_trainer(self):
        from repro.train.experiments import ExperimentSpec, run_experiment

        _, context = run_experiment(
            ExperimentSpec(method="full_rank", config=self._config(world_size=2)),
            return_context=True)
        assert isinstance(context.trainer, DataParallelTrainer)
        assert context.trainer.world_size == 2
