"""Integration tests: full Cuttlefish and baseline pipelines on reduced-scale tasks.

These are the slowest tests in the suite (tens of seconds in total); each one
exercises a path that the benchmark harnesses rely on.
"""

import numpy as np
import pytest

from repro.core import CuttlefishConfig, is_low_rank, train_cuttlefish
from repro.data import DataLoader, make_mlm_corpus, make_text_task, make_vision_task
from repro.models import BertForMaskedLM, BertForSequenceClassification, bert_micro, resnet18
from repro.optim import SGD, AdamW
from repro.tensor import Tensor, functional as F
from repro.train import Trainer, VisionExperimentConfig, mlm_loss, run_vision_method
from repro.utils import seed_everything


@pytest.fixture(scope="module", autouse=True)
def _module_seed():
    seed_everything(2024)
    yield


class TestCuttlefishOnVision:
    @pytest.fixture(scope="class")
    def cuttlefish_run(self):
        seed_everything(11)
        train_ds, val_ds, spec = make_vision_task("cifar10_small")
        train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
        val_loader = DataLoader(val_ds, batch_size=128)
        model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
        config = CuttlefishConfig(min_full_rank_epochs=4, max_full_rank_epochs=6,
                                  profile_mode="none")
        trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                            epochs=11, config=config)
        return trainer, manager, model, spec

    def test_switch_happened_within_budget(self, cuttlefish_run):
        _, manager, _, _ = cuttlefish_run
        assert manager.switched
        assert 4 <= manager.report.switch_epoch <= 6

    def test_model_contains_low_rank_layers(self, cuttlefish_run):
        _, manager, model, _ = cuttlefish_run
        low_rank = [m for m in model.modules() if is_low_rank(m)]
        assert len(low_rank) == len(manager.report.factorized_paths)
        assert low_rank

    def test_model_is_compressed(self, cuttlefish_run):
        _, manager, _, _ = cuttlefish_run
        assert manager.report.compression_ratio > 1.1

    def test_accuracy_above_chance(self, cuttlefish_run):
        trainer, _, _, spec = cuttlefish_run
        assert trainer.final_val_accuracy() > 1.2 / spec.num_classes

    def test_ranks_vary_across_layers(self, cuttlefish_run):
        """Different layers converge to different stable ranks (paper Figure 3)."""
        _, manager, _, _ = cuttlefish_run
        ratios = manager.report.rank_ratio_of(manager.full_ranks())
        assert len(set(np.round(list(ratios.values()), 2))) > 1

    def test_low_rank_model_still_trainable_after_switch(self, cuttlefish_run):
        trainer, _, model, _ = cuttlefish_run
        post_switch_losses = [r.train_loss for r in trainer.history[-3:]]
        assert all(np.isfinite(loss) for loss in post_switch_losses)


class TestExperimentHarness:
    def test_full_rank_and_cuttlefish_rows(self):
        config = VisionExperimentConfig(task="cifar10_small", model="resnet18", width_mult=0.125,
                                        epochs=3, batch_size=64, max_batches_per_epoch=2)
        full = run_vision_method("full_rank", config)
        cuttle = run_vision_method("cuttlefish", config)
        assert full.params_fraction == pytest.approx(1.0)
        assert cuttle.params <= full.params
        assert full.projected_gpu_hours > 0
        assert cuttle.extra["k_hat"] >= 1

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            run_vision_method("magic", VisionExperimentConfig(epochs=1))


class TestBertPipelines:
    def test_glue_style_fine_tuning_learns(self):
        train_ds, val_ds, spec = make_text_task("sst2", overrides={"n_train": 128, "n_val": 64})
        train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
        val_loader = DataLoader(val_ds, batch_size=32)
        model = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
        optimizer = AdamW(model.parameters(), lr=5e-4, weight_decay=0.0)

        def loss_fn(m, batch):
            logits = m(batch[0], attn_mask=batch[1].astype(bool))
            return F.cross_entropy(logits, batch[-1])

        def forward_fn(m, batch):
            return m(batch[0], attn_mask=batch[1].astype(bool))

        trainer = Trainer(model, optimizer, train_loader, val_loader,
                          loss_fn=loss_fn, forward_fn=forward_fn)
        history = trainer.fit(3)
        assert history[-1].train_loss < history[0].train_loss

    def test_mlm_pretraining_reduces_masked_loss(self):
        train_ds, val_ds, spec = make_mlm_corpus()
        train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
        model = BertForMaskedLM(bert_micro(vocab_size=spec.vocab_size, max_seq_len=spec.seq_len))
        optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.0)

        def loss_fn(m, batch):
            inputs, labels = batch
            logits = m(inputs)
            flat_logits = logits.reshape((-1, spec.vocab_size))
            return F.cross_entropy(flat_logits, labels.reshape(-1), ignore_index=-100)

        def eval_loss():
            inputs, labels = next(iter(DataLoader(val_ds, batch_size=64)))
            return mlm_loss(model(inputs).data, labels)

        before = eval_loss()
        trainer = Trainer(model, optimizer, train_loader, loss_fn=loss_fn,
                          max_batches_per_epoch=8)
        trainer.fit(2)
        after = eval_loss()
        assert after < before

    def test_cuttlefish_on_bert_attention_layers(self):
        train_ds, _, spec = make_text_task("rte", overrides={"n_train": 96})
        train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
        model = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
        optimizer = AdamW(model.parameters(), lr=5e-4)

        def loss_fn(m, batch):
            return F.cross_entropy(m(batch[0], attn_mask=batch[1].astype(bool)), batch[-1])

        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_ratio_override=0.25)
        trainer, manager = train_cuttlefish(model, optimizer, train_loader, epochs=2,
                                            config=config, loss_fn=loss_fn,
                                            forward_fn=lambda m, b: m(b[0], attn_mask=b[1].astype(bool)))
        assert manager.switched
        assert manager.report.factorized_paths
        assert all(".attn." in p for p in manager.report.factorized_paths)
