"""Roofline / tracer behaviour on factorized layers.

Regression tests for the cost model on low-rank layers, including the
extra-BatchNorm variant: a ``LowRankConv2d`` with a BN child is not a leaf
module, but it must still be traced and priced as a two-GEMM unit, otherwise
the roofline silently drops the factorized compute (the bug behind an
inverted Table 5 result during development).
"""

import numpy as np
import pytest

from repro.core import factorize_model, full_rank_of
from repro.models import resnet18, vgg19
from repro.profiling import (
    V100,
    count_model_flops,
    predict_iteration_time,
    predict_layer_times,
)
from repro.profiling.tracer import trace_shapes
from repro.utils import seed_everything


@pytest.fixture
def probe():
    return np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32)


def _factorized_resnet(extra_bn: bool, ratio: float = 0.4):
    seed_everything(0)
    model = resnet18(num_classes=4, width_mult=0.25)
    ranks = {p: max(1, int(round(full_rank_of(model.get_submodule(p)) * ratio)))
             for p in model.factorization_candidates()}
    factorize_model(model, ranks, extra_bn=extra_bn, skip_non_reducing=False)
    return model


class TestTracerOnLowRankLayers:
    def test_low_rank_conv_without_bn_is_traced(self, probe):
        model = _factorized_resnet(extra_bn=False)
        traces = trace_shapes(model, probe)
        assert "layer1.0.conv1" in traces
        assert traces["layer1.0.conv1"].module_type == "LowRankConv2d"

    def test_low_rank_conv_with_extra_bn_is_traced(self, probe):
        """The extra-BN variant has a child module but must still be traced."""
        model = _factorized_resnet(extra_bn=True)
        traces = trace_shapes(model, probe)
        assert "layer1.0.conv1" in traces
        assert traces["layer1.0.conv1"].module_type == "LowRankConv2d"
        # The BN child is still traced on its own (it is a genuine leaf).
        assert "layer1.0.conv1.bn" in traces

    def test_container_modules_are_not_traced(self, probe):
        seed_everything(0)
        model = resnet18(num_classes=4, width_mult=0.25)
        traces = trace_shapes(model, probe)
        assert "layer1" not in traces          # a stack container
        assert "layer1.0" not in traces        # a residual block container


class TestRooflineOnFactorizedModels:
    def test_extra_bn_costs_at_least_as_much_as_without(self, probe):
        """Table 5's consistent finding: the extra BN adds (a little) time."""
        without = predict_iteration_time(_factorized_resnet(False), probe,
                                         device=V100, batch_scale=256.0)
        with_bn = predict_iteration_time(_factorized_resnet(True), probe,
                                         device=V100, batch_scale=256.0)
        assert with_bn >= without

    def test_factorized_layers_priced_identically_with_and_without_bn(self, probe):
        """The two conv GEMMs must be priced the same in both variants."""
        t_without = predict_layer_times(_factorized_resnet(False), probe, device=V100)
        t_with = predict_layer_times(_factorized_resnet(True), probe, device=V100)
        for path in ("layer2.0.conv1", "layer3.1.conv2", "layer4.0.conv2"):
            assert t_without[path] == pytest.approx(t_with[path], rel=1e-9)

    def test_factorization_reduces_flops_at_paper_width(self):
        """At full width, rank-ratio 1/4 factorization cuts total forward FLOPs."""
        probe = np.random.default_rng(1).standard_normal((1, 3, 32, 32)).astype(np.float32)
        seed_everything(0)
        full = vgg19(num_classes=10, width_mult=1.0)
        full_flops = count_model_flops(full, probe)
        seed_everything(0)
        factorized = vgg19(num_classes=10, width_mult=1.0)
        ranks = {p: max(1, full_rank_of(factorized.get_submodule(p)) // 4)
                 for p in factorized.factorization_candidates()}
        factorize_model(factorized, ranks)
        assert count_model_flops(factorized, probe) < 0.6 * full_flops

    def test_low_rank_layer_priced_as_two_kernels(self, probe):
        """Per-layer roofline time of a factorized conv includes both GEMM launches."""
        from repro.core import is_low_rank

        model = _factorized_resnet(False)
        times = predict_layer_times(model, probe, device=V100)
        low_rank_paths = [name for name, module in model.named_modules()
                          if name and is_low_rank(module)]
        assert low_rank_paths
        # Two kernel launches set the floor on any factorized layer's time.
        assert min(times[p] for p in low_rank_paths) >= 2 * V100.kernel_overhead
