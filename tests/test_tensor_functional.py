"""Unit tests for stateless NN operations (repro.tensor.functional)."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


def _reference_conv2d(x, w, b, stride, pad):
    """Naive direct convolution used as the gold standard for im2col conv."""
    n, c, h, width = x.shape
    out_c, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = pad
    xp = np.pad(x, [(0, 0), (0, 0), (ph, ph), (pw, pw)])
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (width + 2 * pw - kw) // sw + 1
    out = np.zeros((n, out_c, oh, ow), dtype=np.float64)
    for ni in range(n):
        for oc in range(out_c):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[ni, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[ni, oc, i, j] = np.sum(patch * w[oc]) + (b[oc] if b is not None else 0.0)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
    def test_matches_reference_implementation(self, rng, stride, pad):
        x = rng.random((2, 3, 6, 6)).astype(np.float32)
        w = rng.random((4, 3, 3, 3)).astype(np.float32) * 0.2
        b = rng.random(4).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=pad)
        ref = _reference_conv2d(x, w, b, (stride, stride), (pad, pad))
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_weight_gradient_matches_numeric(self, rng, gradcheck):
        x = rng.random((1, 2, 5, 5)).astype(np.float64)
        w = rng.random((3, 2, 3, 3)).astype(np.float64) * 0.3
        wt = Tensor(w, requires_grad=True)
        loss = (F.conv2d(Tensor(x), wt, None, padding=1) ** 2).sum()
        loss.backward()
        numeric = gradcheck(lambda: float((F.conv2d(Tensor(x), Tensor(w), None, padding=1) ** 2).sum().data), w)
        np.testing.assert_allclose(wt.grad, numeric, atol=5e-2, rtol=1e-2)

    def test_input_gradient_matches_numeric(self, rng, gradcheck):
        x = rng.random((1, 2, 4, 4)).astype(np.float64)
        w = rng.random((2, 2, 3, 3)).astype(np.float64) * 0.3
        xt = Tensor(x, requires_grad=True)
        (F.conv2d(xt, Tensor(w), None, stride=2, padding=1) ** 2).sum().backward()
        numeric = gradcheck(
            lambda: float((F.conv2d(Tensor(x), Tensor(w), None, stride=2, padding=1) ** 2).sum().data), x)
        np.testing.assert_allclose(xt.grad, numeric, atol=5e-2, rtol=1e-2)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_bias_gradient_is_output_sum(self, rng):
        x = rng.random((2, 1, 4, 4)).astype(np.float32)
        w = rng.random((2, 1, 3, 3)).astype(np.float32)
        b = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        out = F.conv2d(Tensor(x), Tensor(w), b, padding=1)
        out.sum().backward()
        np.testing.assert_allclose(b.grad, [np.prod(out.shape[0:1] + out.shape[2:])] * 2)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data.reshape(2, 2), [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad.reshape(4, 4), expected)

    def test_avg_pool_matches_mean(self, rng):
        x = rng.random((2, 3, 4, 4)).astype(np.float32)
        out = F.avg_pool2d(Tensor(x), 4)
        np.testing.assert_allclose(out.data.reshape(2, 3), x.mean(axis=(2, 3)), atol=1e-5)

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, 0.25 * np.ones((1, 1, 4, 4)))

    def test_adaptive_avg_pool_to_one(self, rng):
        x = rng.random((2, 5, 6, 6)).astype(np.float32)
        out = F.adaptive_avg_pool2d(Tensor(x), 1)
        assert out.shape == (2, 5, 1, 1)
        np.testing.assert_allclose(out.data.reshape(2, 5), x.mean(axis=(2, 3)), atol=1e-5)

    def test_adaptive_avg_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_max_pool_with_stride_and_padding(self, rng):
        x = rng.random((1, 2, 5, 5)).astype(np.float32)
        out = F.max_pool2d(Tensor(x), 3, stride=2, padding=1)
        assert out.shape == (1, 2, 3, 3)


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self, rng):
        x = rng.random((4, 7)).astype(np.float32)
        out = F.softmax(Tensor(x), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_softmax_shift_invariance(self, rng):
        x = rng.random((3, 5)).astype(np.float32)
        np.testing.assert_allclose(F.softmax(Tensor(x)).data, F.softmax(Tensor(x + 100.0)).data, atol=1e-5)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = rng.random((3, 5)).astype(np.float32)
        np.testing.assert_allclose(np.exp(F.log_softmax(Tensor(x)).data), F.softmax(Tensor(x)).data, atol=1e-6)

    def test_softmax_gradient_matches_numeric(self, rng, gradcheck):
        x = rng.random((2, 4)).astype(np.float64)
        xt = Tensor(x, requires_grad=True)
        (F.softmax(xt, axis=-1) ** 2).sum().backward()
        numeric = gradcheck(lambda: float((F.softmax(Tensor(x), axis=-1) ** 2).sum().data), x)
        np.testing.assert_allclose(xt.grad, numeric, atol=2e-2)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.random((5, 3)).astype(np.float32)
        targets = np.array([0, 1, 2, 1, 0])
        loss = F.cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-5)

    def test_cross_entropy_gradient_is_probs_minus_onehot(self, rng):
        logits = rng.random((4, 3)).astype(np.float32)
        targets = np.array([0, 2, 1, 1])
        lt = Tensor(logits, requires_grad=True)
        F.cross_entropy(lt, targets).backward()
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(4), targets] = 1.0
        np.testing.assert_allclose(lt.grad, (probs - onehot) / 4, atol=1e-5)

    def test_cross_entropy_label_smoothing_increases_loss_on_confident_logits(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        targets = np.array([0, 1])
        plain = F.cross_entropy(Tensor(logits), targets).item()
        smoothed = F.cross_entropy(Tensor(logits), targets, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_cross_entropy_ignore_index_masks_positions(self, rng):
        logits = rng.random((4, 3)).astype(np.float32)
        targets = np.array([0, -100, 2, -100])
        loss = F.cross_entropy(Tensor(logits), targets, ignore_index=-100)
        valid = F.cross_entropy(Tensor(logits[[0, 2]]), np.array([0, 2]))
        np.testing.assert_allclose(loss.item(), valid.item(), rtol=1e-5)

    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    def test_nll_loss(self, rng):
        logits = rng.random((3, 4)).astype(np.float32)
        targets = np.array([1, 0, 3])
        log_probs = F.log_softmax(Tensor(logits))
        np.testing.assert_allclose(F.nll_loss(log_probs, targets).item(),
                                   F.cross_entropy(Tensor(logits), targets).item(), rtol=1e-5)

    def test_mse_loss(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0], dtype=np.float32))
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_bce_with_logits_matches_reference(self, rng):
        logits = rng.standard_normal(10).astype(np.float32)
        targets = (rng.random(10) > 0.5).astype(np.float32)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-4)


class TestDropoutAndHelpers:
    def test_dropout_identity_in_eval(self, rng):
        x = Tensor(rng.random((10, 10)).astype(np.float32))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, p=0.3, training=True, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_zero_probability_is_identity(self, rng):
        x = Tensor(rng.random((4, 4)).astype(np.float32))
        assert F.dropout(x, p=0.0, training=True) is x

    def test_linear_matches_manual(self, rng):
        x = rng.random((3, 5)).astype(np.float32)
        w = rng.random((2, 5)).astype(np.float32)
        b = rng.random(2).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, atol=1e-5)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_im2col_col2im_adjoint(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.random((2, 3, 6, 6)).astype(np.float64)
        cols = F.im2col(x, 3, 3, (2, 2), (1, 1))
        y = rng.random(cols.shape).astype(np.float64)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, 3, 3, (2, 2), (1, 1))).sum())
        np.testing.assert_allclose(lhs, rhs, rtol=1e-6)
