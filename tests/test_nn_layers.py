"""Tests for concrete layers: Linear, Conv2d, norms, pooling, embedding, attention."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestLinearConv:
    def test_linear_shapes_and_bias(self, rng):
        layer = nn.Linear(6, 3)
        out = layer(Tensor(rng.random((4, 6)).astype(np.float32)))
        assert out.shape == (4, 3)
        assert layer.bias is not None and layer.bias.shape == (3,)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_3d_input(self, rng):
        layer = nn.Linear(8, 4)
        out = layer(Tensor(rng.random((2, 5, 8)).astype(np.float32)))
        assert out.shape == (2, 5, 4)

    def test_conv_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(rng.random((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_backward_produces_grads(self, rng):
        conv = nn.Conv2d(2, 4, 3, padding=1)
        out = conv(Tensor(rng.random((1, 2, 5, 5)).astype(np.float32)))
        out.sum().backward()
        assert conv.weight.grad is not None and conv.weight.grad.shape == conv.weight.shape

    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.random((2, 3, 4)).astype(np.float32)))
        assert out.shape == (2, 12)


class TestNormalisation:
    def test_batchnorm2d_normalises_training_batch(self, rng):
        bn = nn.BatchNorm2d(5)
        x = Tensor(rng.random((8, 5, 4, 4)).astype(np.float32) * 3 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-4
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batchnorm2d_updates_running_stats(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.random((4, 3, 4, 4)).astype(np.float32) + 5.0)
        bn(x)
        assert bn.running_mean.data.mean() > 0.0

    def test_batchnorm2d_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.random((4, 3, 4, 4)).astype(np.float32))
        # With momentum 0.1, ~70 updates bring the running stats within <0.1% of
        # the (constant) batch statistics.
        for _ in range(70):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.1)

    def test_batchnorm1d(self, rng):
        bn = nn.BatchNorm1d(6)
        out = bn(Tensor(rng.random((16, 6)).astype(np.float32) * 2 + 1))
        assert abs(out.data.mean()) < 1e-4

    def test_layernorm_normalises_last_dim(self, rng):
        ln = nn.LayerNorm(10)
        out = ln(Tensor(rng.random((4, 7, 10)).astype(np.float32) * 4 - 2))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros((4, 7)), atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones((4, 7)), atol=1e-2)

    def test_norm_parameters_trainable(self):
        bn = nn.BatchNorm2d(4)
        assert len(bn.parameters()) == 2
        assert all(p.requires_grad for p in bn.parameters())


class TestEmbeddingDropoutPooling:
    def test_embedding_lookup_shape(self):
        emb = nn.Embedding(50, 8)
        out = emb(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 8)

    def test_embedding_gradient_accumulates_per_token(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([[1, 1, 2]]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2 * np.ones(4))
        np.testing.assert_allclose(emb.weight.grad[2], np.ones(4))
        np.testing.assert_allclose(emb.weight.grad[3], np.zeros(4))

    def test_dropout_module_respects_eval(self, rng):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = Tensor(rng.random((5, 5)).astype(np.float32))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_pooling_modules(self, rng):
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AdaptiveAvgPool2d(1)(x).shape == (2, 3, 1, 1)

    def test_activation_modules(self, rng):
        x = Tensor(rng.standard_normal((3, 3)).astype(np.float32))
        assert nn.ReLU()(x).data.min() >= 0
        assert np.all(np.abs(nn.Tanh()(x).data) <= 1)
        assert np.all((nn.Sigmoid()(x).data > 0) & (nn.Sigmoid()(x).data < 1))
        assert nn.GELU()(x).shape == x.shape


class TestAttention:
    def test_output_shape(self, rng):
        mha = nn.MultiHeadAttention(16, 4)
        out = mha(Tensor(rng.random((2, 6, 16)).astype(np.float32)))
        assert out.shape == (2, 6, 16)

    def test_invalid_head_count_raises(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_padding_mask_blocks_attention(self, rng):
        """Changing a masked token's content must not change unmasked outputs."""
        mha = nn.MultiHeadAttention(8, 2)
        mha.eval()
        x = rng.random((1, 4, 8)).astype(np.float32)
        mask = np.array([[True, True, True, False]])
        out1 = mha(Tensor(x), attn_mask=mask).data.copy()
        x_perturbed = x.copy()
        x_perturbed[0, 3] += 10.0
        out2 = mha(Tensor(x_perturbed), attn_mask=mask).data
        np.testing.assert_allclose(out1[:, :3], out2[:, :3], atol=1e-5)

    def test_backward_reaches_all_projections(self, rng):
        mha = nn.MultiHeadAttention(8, 2)
        out = mha(Tensor(rng.random((2, 3, 8)).astype(np.float32), requires_grad=True))
        out.sum().backward()
        for proj in (mha.q_proj, mha.k_proj, mha.v_proj, mha.out_proj):
            assert proj.weight.grad is not None

    def test_attention_is_permutation_sensitive_to_values(self, rng):
        mha = nn.MultiHeadAttention(8, 2)
        mha.eval()
        x = rng.random((1, 5, 8)).astype(np.float32)
        out1 = mha(Tensor(x)).data
        out2 = mha(Tensor(x[:, ::-1].copy())).data
        assert not np.allclose(out1, out2)


class TestInitializers:
    def test_kaiming_normal_std(self):
        w = nn.init.kaiming_normal((256, 128), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / 128)
        assert abs(w.std() - expected) / expected < 0.1

    def test_xavier_uniform_bound(self):
        w = nn.init.xavier_uniform((64, 64), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 128)
        assert np.abs(w).max() <= bound + 1e-6

    def test_truncated_normal_clipped(self):
        w = nn.init.truncated_normal((1000,), std=0.02, rng=np.random.default_rng(0))
        assert np.abs(w).max() <= 0.04 + 1e-6

    def test_spectral_init_reconstructs_at_full_rank(self):
        u, v = nn.init.spectral_init((12, 8), rank=8, rng=np.random.default_rng(0))
        assert u.shape == (12, 8) and v.shape == (8, 8)
        # At full rank the product has the same Frobenius norm as a kaiming draw would.
        assert np.isfinite(u @ v).all()

    def test_spectral_init_rank_capped(self):
        u, v = nn.init.spectral_init((6, 4), rank=100, rng=np.random.default_rng(0))
        assert u.shape[1] == 4 and v.shape[0] == 4

    def test_conv_fan_in(self):
        w = nn.init.kaiming_normal((32, 16, 3, 3), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / (16 * 9))
        assert abs(w.std() - expected) / expected < 0.15
