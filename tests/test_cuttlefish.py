"""Tests for the Cuttlefish manager, callback and end-to-end convenience wrapper."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    CuttlefishCallback,
    CuttlefishConfig,
    CuttlefishManager,
    is_low_rank,
    train_cuttlefish,
)
from repro.data import ArrayDataset, DataLoader
from repro.models import MLP
from repro.optim import SGD, ConstantLR
from repro.train import Trainer
from repro.utils import get_rng


def make_classification_loaders(n=256, dim=16, classes=4, batch=64):
    """Linearly separable synthetic task an MLP learns within a few epochs."""
    rng = get_rng(offset=99)
    centers = rng.standard_normal((classes, dim))
    labels = rng.integers(0, classes, size=n)
    features = centers[labels] + 0.3 * rng.standard_normal((n, dim))
    split = int(0.8 * n)
    train = ArrayDataset(features[:split].astype(np.float32), labels[:split].astype(np.int64))
    val = ArrayDataset(features[split:].astype(np.float32), labels[split:].astype(np.int64))
    return DataLoader(train, batch_size=batch, shuffle=True), DataLoader(val, batch_size=batch)


@pytest.fixture
def loaders():
    return make_classification_loaders()


def make_mlp():
    return MLP(16, [48, 48, 48], 4)


class TestManagerStateMachine:
    def test_requires_candidates_or_model_hook(self):
        with pytest.raises(ValueError):
            CuttlefishManager(nn.Sequential(nn.Linear(4, 4)), CuttlefishConfig())

    def test_explicit_candidates_accepted(self):
        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 8))
        manager = CuttlefishManager(model, CuttlefishConfig(profile_mode="none"),
                                    candidate_paths=["2"])
        assert manager.candidate_paths == ["2"]

    def test_no_switch_before_min_epochs(self):
        model = make_mlp()
        manager = CuttlefishManager(model, CuttlefishConfig(min_full_rank_epochs=5, profile_mode="none"))
        for epoch in range(3):
            assert not manager.observe_epoch(model, epoch)
        assert not manager.switched

    def test_forced_switch_at_max_epochs(self):
        model = make_mlp()
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=2,
                                  profile_mode="none", rank_ratio_override=0.25)
        manager = CuttlefishManager(model, config)
        assert not manager.observe_epoch(model, 0)
        assert manager.observe_epoch(model, 1)
        assert manager.switched
        assert manager.report.switch_epoch == 2

    def test_switch_happens_once(self):
        model = make_mlp()
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_ratio_override=0.25)
        manager = CuttlefishManager(model, config)
        assert manager.observe_epoch(model, 0)
        assert not manager.observe_epoch(model, 1)

    def test_switch_factorizes_candidates(self):
        model = make_mlp()
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_ratio_override=0.25)
        manager = CuttlefishManager(model, config)
        manager.observe_epoch(model, 0)
        report = manager.report
        assert report.factorized_paths
        assert report.params_after < report.params_before
        assert report.compression_ratio > 1.0
        for path in report.factorized_paths:
            assert is_low_rank(model.get_submodule(path))

    def test_rank_ratio_override_respected(self):
        model = make_mlp()
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_ratio_override=0.25)
        manager = CuttlefishManager(model, config)
        manager.observe_epoch(model, 0)
        assert all(r == 12 for r in manager.report.selected_ranks.values())

    def test_scaled_stable_rank_at_init_skips_factorization(self):
        """Straight after init the scaled stable rank ≈ full rank, so nothing shrinks —
        the paper's reason for not factorizing at epoch 0."""
        model = make_mlp()
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1, profile_mode="none")
        manager = CuttlefishManager(model, config)
        manager.observe_epoch(model, 0)
        assert manager.report.factorized_paths == []

    def test_low_rank_weights_produce_compression(self, rng):
        """With the vanilla stable-rank metric, genuinely low-rank weights get
        small ranks and the switch shrinks the model (scaled stable rank would
        deliberately treat epoch-0 weights as full rank, see its tests)."""
        model = make_mlp()
        for path in model.factorization_candidates():
            module = model.get_submodule(path)
            u = rng.standard_normal((48, 3)).astype(np.float32)
            v = rng.standard_normal((3, 48)).astype(np.float32)
            module.weight.data = (u @ v) / 12
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_mode="stable")
        manager = CuttlefishManager(model, config)
        manager.observe_epoch(model, 0)
        assert manager.report.compression_ratio > 1.5

    def test_full_ranks_helper(self):
        model = make_mlp()
        manager = CuttlefishManager(model, CuttlefishConfig(profile_mode="none"))
        assert set(manager.full_ranks().values()) == {48}

    def test_empty_candidates_never_switch(self):
        model = make_mlp()
        manager = CuttlefishManager(model, CuttlefishConfig(profile_mode="none"), candidate_paths=[])
        for epoch in range(5):
            assert not manager.observe_epoch(model, epoch)


class TestCallbackIntegration:
    def test_callback_rebuilds_optimizer_and_decays_lr(self, loaders):
        train_loader, val_loader = loaders
        model = make_mlp()
        optimizer = SGD(model.parameters(), lr=0.3, momentum=0.9)
        scheduler = ConstantLR(optimizer)
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=2,
                                  profile_mode="none", rank_ratio_override=0.25,
                                  lr_decay_on_switch=0.5)
        manager = CuttlefishManager(model, config)
        callback = CuttlefishCallback(manager)
        trainer = Trainer(model, optimizer, train_loader, val_loader, scheduler=scheduler,
                          callbacks=[callback])
        trainer.fit(4)
        assert manager.switched
        current_param_ids = {id(p) for p in model.parameters()}
        assert {id(p) for p in optimizer.params} == current_param_ids
        assert scheduler.base_lr == pytest.approx(0.15)

    def test_callback_installs_frobenius_decay(self, loaders):
        train_loader, val_loader = loaders
        model = make_mlp()
        optimizer = SGD(model.parameters(), lr=0.1, weight_decay=1e-4)
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                                  profile_mode="none", rank_ratio_override=0.25,
                                  frobenius_decay=1e-4)
        manager = CuttlefishManager(model, config)
        trainer = Trainer(model, optimizer, train_loader, val_loader,
                          callbacks=[CuttlefishCallback(manager)])
        trainer.fit(2)
        assert trainer.grad_hook is not None
        factor_ids = {id(p) for m in model.modules() if is_low_rank(m) for p in m.factor_parameters()}
        assert factor_ids <= optimizer.no_decay_params


class TestEndToEnd:
    def test_train_cuttlefish_learns_and_compresses(self, loaders):
        train_loader, val_loader = loaders
        model = make_mlp()
        optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9)
        config = CuttlefishConfig(min_full_rank_epochs=2, max_full_rank_epochs=4,
                                  profile_mode="none", epsilon=0.5)
        trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                            epochs=10, config=config)
        assert manager.switched
        assert manager.report.switch_epoch <= 5
        assert trainer.final_val_accuracy() > 0.6
        assert model.num_parameters() <= manager.report.params_before

    def test_report_ranks_reflect_training_dynamics(self, loaders):
        """Ranks selected after a few epochs of training are below full rank."""
        train_loader, val_loader = loaders
        model = make_mlp()
        optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
        config = CuttlefishConfig(min_full_rank_epochs=3, max_full_rank_epochs=6,
                                  profile_mode="none")
        _, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                      epochs=8, config=config)
        ranks = manager.report.selected_ranks
        assert ranks
        assert any(r < 48 for r in ranks.values())
