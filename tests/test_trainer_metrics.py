"""Tests for the generic Trainer loop and the evaluation metrics."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, DataLoader
from repro.models import MLP
from repro.optim import SGD, ConstantLR
from repro.tensor import Tensor, functional as F
from repro.train import (
    AverageMeter,
    Callback,
    Trainer,
    accuracy,
    classification_metric,
    f1_score,
    matthews_corrcoef,
    mlm_loss,
    spearman_correlation,
    top_k_accuracy,
)
from repro.utils import get_rng


def toy_loaders(n=200, dim=10, classes=3):
    rng = get_rng(offset=55)
    centers = 4 * rng.standard_normal((classes, dim))
    labels = rng.integers(0, classes, size=n)
    features = (centers[labels] + rng.standard_normal((n, dim))).astype(np.float32)
    ds = ArrayDataset(features, labels.astype(np.int64))
    split = int(0.8 * n)
    from repro.data import Subset
    return (DataLoader(Subset(ds, range(split)), batch_size=32, shuffle=True),
            DataLoader(Subset(ds, range(split, n)), batch_size=32))


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_top_k(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_top_k_caps_at_num_classes(self):
        logits = np.array([[1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), k=10) == 1.0

    def test_accuracy_requires_2d(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3))

    def test_f1_score(self):
        preds = np.array([1, 1, 0, 0, 1])
        targets = np.array([1, 0, 0, 1, 1])
        # tp=2, fp=1, fn=1 → precision=2/3, recall=2/3 → f1=2/3.
        assert f1_score(preds, targets) == pytest.approx(2 / 3)

    def test_f1_zero_when_no_true_positives(self):
        assert f1_score(np.zeros(4), np.ones(4)) == 0.0

    def test_matthews_perfect_and_random(self):
        assert matthews_corrcoef(np.array([1, 0, 1]), np.array([1, 0, 1])) == pytest.approx(1.0)
        assert matthews_corrcoef(np.array([1, 1, 1]), np.array([1, 0, 1])) == 0.0

    def test_spearman_monotone_relationship(self):
        x = np.arange(10, dtype=float)
        assert spearman_correlation(x, x ** 3) == pytest.approx(1.0)
        assert spearman_correlation(x, -x) == pytest.approx(-1.0)

    def test_spearman_constant_input(self):
        assert spearman_correlation(np.ones(5), np.arange(5)) == 0.0

    def test_classification_metric_dispatch(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([0, 1])
        assert classification_metric("accuracy", logits, targets) == 1.0
        assert classification_metric("f1", logits, targets) == 1.0
        with pytest.raises(KeyError):
            classification_metric("bleu", logits, targets)

    def test_mlm_loss_ignores_unmasked(self):
        logits = np.zeros((1, 3, 4))
        labels = np.array([[1, -100, -100]])
        assert mlm_loss(logits, labels) == pytest.approx(np.log(4))

    def test_mlm_loss_all_ignored(self):
        assert mlm_loss(np.zeros((1, 2, 4)), np.full((1, 2), -100)) == 0.0

    def test_average_meter(self):
        meter = AverageMeter()
        meter.update(1.0, n=2)
        meter.update(4.0, n=1)
        assert meter.average == pytest.approx(2.0)
        meter.reset()
        assert meter.average == 0.0


class TestTrainer:
    def test_training_reduces_loss(self):
        train_loader, val_loader = toy_loaders()
        model = MLP(10, [32], 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.2, momentum=0.9),
                          train_loader, val_loader)
        history = trainer.fit(6)
        assert history[-1].train_loss < history[0].train_loss
        assert trainer.final_val_accuracy() > 0.6

    def test_history_records_parameters_and_lr(self):
        train_loader, val_loader = toy_loaders()
        model = MLP(10, [16], 3)
        optimizer = SGD(model.parameters(), lr=0.05)
        trainer = Trainer(model, optimizer, train_loader, val_loader,
                          scheduler=ConstantLR(optimizer))
        trainer.fit(2)
        record = trainer.history[-1]
        assert record.num_parameters == model.num_parameters()
        assert record.lr == pytest.approx(0.05)
        assert record.epoch_seconds > 0

    def test_callbacks_invoked_in_order(self):
        events = []

        class Recorder(Callback):
            def on_train_begin(self, trainer):
                events.append("begin")
            def on_epoch_end(self, trainer, epoch, logs):
                events.append(f"epoch{epoch}")
            def on_train_end(self, trainer):
                events.append("end")

        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                callbacks=[Recorder()]).fit(2)
        assert events == ["begin", "epoch0", "epoch1", "end"]

    def test_step_level_callback_ordering(self):
        events = []

        class Recorder(Callback):
            def on_train_begin(self, trainer):
                events.append("begin")
            def on_batch_begin(self, trainer, batch_index, batch):
                events.append(f"batch_begin{batch_index}")
            def on_batch_end(self, trainer, batch_index, logs):
                assert "loss" in logs
                events.append(f"batch_end{batch_index}")
            def on_evaluate_end(self, trainer, logs):
                assert "accuracy" in logs
                events.append("evaluate_end")
            def on_epoch_end(self, trainer, epoch, logs):
                events.append(f"epoch_end{epoch}")
            def on_train_end(self, trainer):
                events.append("end")

        train_loader, val_loader = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        Trainer(model, SGD(model.parameters(), lr=0.1), train_loader, val_loader,
                callbacks=[Recorder()], max_batches_per_epoch=2).fit(2)
        per_epoch = ["batch_begin0", "batch_end0", "batch_begin1", "batch_end1", "evaluate_end"]
        assert events == (["begin"] + per_epoch + ["epoch_end0"]
                          + per_epoch + ["epoch_end1"] + ["end"])

    def test_step_callbacks_see_batch_accuracy_on_default_loss_path(self):
        batch_logs = []

        class Recorder(Callback):
            def on_batch_end(self, trainer, batch_index, logs):
                batch_logs.append(logs)

        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                callbacks=[Recorder()]).fit(1)
        assert all("accuracy" in logs for logs in batch_logs)

    def test_train_accuracy_is_real_on_default_loss_path(self):
        train_loader, val_loader = toy_loaders()
        model = MLP(10, [32], 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.2, momentum=0.9),
                          train_loader, val_loader)
        history = trainer.fit(6)
        # A separable toy task: the running train accuracy must move well away
        # from the constant 0.0 the old loop reported, and end near the val acc.
        assert history[-1].train_accuracy > 0.6
        assert history[-1].train_accuracy > history[0].train_accuracy - 0.05
        assert 0.0 <= history[-1].train_accuracy <= 1.0

    def test_train_accuracy_absent_for_custom_loss(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        def custom_loss(m, batch):
            return F.cross_entropy(m(batch[0]), batch[-1])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                          loss_fn=custom_loss)
        history = trainer.fit(1)
        # No logits recorded -> the accuracy meter never updates and reports 0.
        assert history[-1].train_accuracy == 0.0

    def test_loss_hook_adds_penalty(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        calls = []
        def hook(m):
            calls.append(1)
            return None
        Trainer(model, SGD(model.parameters(), lr=0.1), train_loader, loss_hook=hook).fit(1)
        assert len(calls) == len(train_loader)

    def test_add_grad_hook_composes_instead_of_clobbering(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        calls = []
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                          grad_hook=lambda m: calls.append("first"),
                          max_batches_per_epoch=1)
        second = lambda m: calls.append("second")
        trainer.add_grad_hook(second)
        trainer.add_grad_hook(second)   # re-entrant fit must not stack duplicates
        trainer.fit(1)
        assert calls == ["first", "second"]

    def test_grad_hook_can_zero_gradients(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        initial = {name: p.data.copy() for name, p in model.named_parameters()}

        def freeze_all(m):
            for p in m.parameters():
                if p.grad is not None:
                    p.grad[:] = 0.0

        Trainer(model, SGD(model.parameters(), lr=0.5), train_loader, grad_hook=freeze_all).fit(1)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, initial[name])

    def test_max_batches_per_epoch(self):
        train_loader, _ = toy_loaders(n=160)
        model = MLP(10, [8], 3)
        seen = []
        def counting_loss(m, batch):
            seen.append(1)
            return F.cross_entropy(m(batch[0]), batch[-1])
        Trainer(model, SGD(model.parameters(), lr=0.1), train_loader,
                loss_fn=counting_loss, max_batches_per_epoch=2).fit(1)
        assert len(seen) == 2

    def test_evaluate_reports_top5(self):
        train_loader, val_loader = toy_loaders()
        model = MLP(10, [8], 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train_loader, val_loader)
        stats = trainer.evaluate()
        assert set(stats) == {"loss", "accuracy", "top5"}
        assert stats["top5"] >= stats["accuracy"]

    def test_evaluate_without_loader_returns_empty(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        assert Trainer(model, SGD(model.parameters(), lr=0.1), train_loader).evaluate() == {}

    def test_rebuild_optimizer_params(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        optimizer = SGD(model.parameters(), lr=0.1)
        trainer = Trainer(model, optimizer, train_loader)
        model.classifier = nn.Linear(8, 3)
        trainer.rebuild_optimizer_params()
        assert {id(p) for p in optimizer.params} == {id(p) for p in model.parameters()}

    def test_best_and_final_accuracy_nan_without_validation(self):
        train_loader, _ = toy_loaders(n=64)
        model = MLP(10, [8], 3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train_loader)
        trainer.fit(1)
        assert np.isnan(trainer.best_val_accuracy())


class TestDegenerateMetricInputs:
    """0/0 cases must be defined as 0.0, never NaN or ZeroDivisionError."""

    def test_f1_no_positive_predictions(self):
        preds = np.zeros(6, dtype=np.int64)
        targets = np.array([0, 0, 1, 1, 0, 1])
        assert f1_score(preds, targets) == 0.0

    def test_f1_no_positive_targets(self):
        preds = np.array([1, 0, 1, 0])
        targets = np.zeros(4, dtype=np.int64)
        assert f1_score(preds, targets) == 0.0

    def test_f1_empty_batch(self):
        assert f1_score(np.array([]), np.array([])) == 0.0

    def test_matthews_single_class_targets(self):
        preds = np.array([0, 1, 0, 1])
        targets = np.zeros(4, dtype=np.int64)
        value = matthews_corrcoef(preds, targets)
        assert value == 0.0 and np.isfinite(value)

    def test_matthews_single_class_predictions(self):
        preds = np.ones(4, dtype=np.int64)
        targets = np.array([0, 1, 0, 1])
        assert matthews_corrcoef(preds, targets) == 0.0

    def test_matthews_empty_batch(self):
        assert matthews_corrcoef(np.array([]), np.array([])) == 0.0

    def test_spearman_constant_predictions(self):
        preds = np.full(5, 2.5)
        targets = np.arange(5.0)
        assert spearman_correlation(preds, targets) == 0.0

    def test_spearman_constant_targets(self):
        assert spearman_correlation(np.arange(5.0), np.full(5, 1.0)) == 0.0

    def test_spearman_empty_batch(self):
        assert spearman_correlation(np.array([]), np.array([])) == 0.0

    def test_average_meter_well_defined_before_first_update(self):
        meter = AverageMeter()
        assert meter.average == 0.0
        assert meter.avg == 0.0          # torch-style alias, same semantics
        meter.update(3.0, n=2)
        assert meter.avg == pytest.approx(3.0)
        assert meter.avg == meter.average


class TestTrainerTelemetry:
    def test_registry_counts_steps_and_samples(self):
        from repro.telemetry import validate_snapshot

        train, val = toy_loaders()
        model = MLP(10, [16], 3, rng=get_rng(offset=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train, val)
        trainer.train_epoch()
        snap = trainer.metrics.snapshot()
        validate_snapshot(snap)
        assert snap["namespace"] == "train"
        assert snap["counters"]["steps_total"] == 5       # 160 samples / 32
        assert snap["counters"]["samples_total"] == 160
        assert snap["collected"]["pipeline"]["batches"] == 5
        assert "op_counters" in snap["collected"]

    def test_traced_epoch_records_step_phases(self):
        from repro.telemetry import tracing

        train, val = toy_loaders()
        model = MLP(10, [16], 3, rng=get_rng(offset=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train, val)
        session = tracing.enable("t")
        try:
            trainer.train_epoch()
            trainer.evaluate()
        finally:
            tracing.disable()
        names = [ev[0] for ev in session.events]
        assert names.count("step") == 5
        for phase in ("data_wait", "forward", "backward", "optimizer",
                      "accounting"):
            assert names.count(phase) == 5
        assert "eval" in names
        # Children must account for essentially the whole step (the ≥95%
        # acceptance bar): the phases partition requested→compute_end.
        summary = tracing.summarize_trace(session.event_dicts())
        assert summary["coverage"]["fraction"] >= 0.99

    def test_untraced_epoch_records_nothing(self):
        from repro.telemetry import tracing

        train, val = toy_loaders()
        model = MLP(10, [16], 3, rng=get_rng(offset=1))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), train, val)
        trainer.train_epoch()
        assert tracing.current_session() is None
