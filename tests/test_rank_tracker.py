"""Tests for per-layer rank tracking and the Ê stopping rule."""

import numpy as np
import pytest

from repro.core import RankTracker
from repro.core.rank_tracker import LayerRankHistory
from repro.models import MLP


@pytest.fixture
def mlp():
    return MLP(16, [32, 32, 32], 4)


class TestLayerRankHistory:
    def test_derivative_infinite_with_single_point(self):
        history = LayerRankHistory("layer", full_rank=10)
        history.stable_ranks = [5.0]
        assert history.derivative() == float("inf")

    def test_derivative_of_flat_trajectory_is_zero(self):
        history = LayerRankHistory("layer", full_rank=10)
        history.stable_ranks = [5.0, 5.0, 5.0]
        assert history.derivative() == 0.0

    def test_derivative_measures_recent_change(self):
        history = LayerRankHistory("layer", full_rank=10)
        history.stable_ranks = [10.0, 8.0, 6.0]
        assert history.derivative(window=2) == pytest.approx(2.0)

    def test_rank_ratios(self):
        history = LayerRankHistory("layer", full_rank=20)
        history.stable_ranks = [10.0, 5.0]
        assert history.rank_ratios == [0.5, 0.25]


class TestRankTracker:
    def test_initialisation_records_xi_and_full_rank(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates())
        for history in tracker.histories.values():
            assert history.full_rank == 32
            assert history.xi >= 1.0

    def test_update_appends_one_value_per_layer(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates())
        recorded = tracker.update(mlp)
        assert set(recorded) == set(mlp.factorization_candidates())
        assert tracker.epochs_recorded == 1

    def test_no_convergence_before_min_epochs(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates(), min_epochs=3)
        tracker.update(mlp)
        tracker.update(mlp)
        assert not tracker.has_converged()

    def test_convergence_when_weights_frozen(self, mlp):
        """If weights do not change the stable ranks are constant ⇒ converged."""
        tracker = RankTracker(mlp, mlp.factorization_candidates(), min_epochs=2)
        for _ in range(3):
            tracker.update(mlp)
        assert tracker.has_converged()

    def test_no_convergence_while_ranks_move(self, mlp, rng):
        """Alternating a layer between (near) rank-1 and full-rank weights keeps
        the stable-rank derivative far above ε, so the tracker must not stop."""
        tracker = RankTracker(mlp, mlp.factorization_candidates(), epsilon=0.1, min_epochs=2)
        paths = mlp.factorization_candidates()
        module = mlp.get_submodule(paths[0])
        rank_one = np.outer(rng.standard_normal(32), rng.standard_normal(32)).astype(np.float32)
        full_rank = rng.standard_normal((32, 32)).astype(np.float32)
        for step in range(4):
            module.weight.data = rank_one if step % 2 == 0 else full_rank
            tracker.update(mlp)
        assert not tracker.has_converged()

    def test_select_ranks_bounded_by_full_rank(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates())
        tracker.update(mlp)
        ranks = tracker.select_ranks(mlp)
        assert all(1 <= r <= 32 for r in ranks.values())

    def test_select_ranks_scaled_mode_near_full_at_init(self, mlp):
        """At initialisation the scaled stable rank should be ≈ full rank (that is its purpose)."""
        tracker = RankTracker(mlp, mlp.factorization_candidates(), rank_mode="scaled_stable")
        tracker.update(mlp)
        ranks = tracker.select_ranks(mlp)
        assert all(r >= 28 for r in ranks.values())

    def test_select_ranks_vanilla_mode_lower_than_scaled(self, mlp):
        scaled = RankTracker(mlp, mlp.factorization_candidates(), rank_mode="scaled_stable")
        vanilla = RankTracker(mlp, mlp.factorization_candidates(), rank_mode="stable")
        assert all(
            vanilla.select_ranks(mlp)[p] <= scaled.select_ranks(mlp)[p]
            for p in mlp.factorization_candidates()
        )

    def test_low_rank_weights_get_low_rank_selection(self, mlp, rng):
        tracker = RankTracker(mlp, mlp.factorization_candidates(), rank_mode="stable")
        for path in mlp.factorization_candidates():
            module = mlp.get_submodule(path)
            u = rng.standard_normal((32, 2)).astype(np.float32)
            v = rng.standard_normal((2, 32)).astype(np.float32)
            module.weight.data = (u @ v) / 10
        ranks = tracker.select_ranks(mlp)
        assert all(r <= 4 for r in ranks.values())

    def test_rank_ratio_matrix_shape(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates())
        for _ in range(4):
            tracker.update(mlp)
        matrix = tracker.rank_ratio_matrix()
        assert matrix.shape == (len(mlp.factorization_candidates()), 4)
        assert np.all((matrix > 0) & (matrix <= 1.0 + 1e-6))

    def test_rank_ratio_table_keys(self, mlp):
        tracker = RankTracker(mlp, mlp.factorization_candidates())
        tracker.update(mlp)
        table = tracker.rank_ratio_table()
        assert set(table) == set(mlp.factorization_candidates())

    def test_empty_candidates(self, mlp):
        tracker = RankTracker(mlp, [])
        assert tracker.epochs_recorded == 0
        assert tracker.rank_ratio_matrix().size == 0
