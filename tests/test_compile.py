"""Tests for the ``numpy-compiled`` capture-and-replay backend.

Covers bit-identity of replayed training steps against the ``numpy``
reference (including dropout mask streams and batch-norm running
statistics), capture invalidation on every guard the plan key encodes
(shape, dtype, grad mode, Cuttlefish-style parameter restructure), chain
fusion, the derived-input eager fallback, the plan-in-manifest round trip,
and the CLI's loud unknown-backend error.
"""

import json
import os

import numpy as np
import pytest

from repro import models, nn
from repro.compile import StepCompiler, backend_compiles
from repro.optim import SGD
from repro.tensor import Tensor, functional as F, no_grad, use_backend
from repro.utils import seed_everything


def _mlp(seed: int = 0) -> nn.Module:
    seed_everything(seed)
    return nn.Sequential(nn.Linear(12, 24, activation="relu"), nn.Linear(24, 6))


def _batch(rng: np.random.Generator, n: int = 8, dim: int = 12, classes: int = 6):
    x = rng.standard_normal((n, dim)).astype(np.float32)
    y = rng.integers(0, classes, size=n)
    return x, y


def _train_eager(backend: str, build, batches, steps: int):
    model = build()
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
    losses = []
    with use_backend(backend):
        for i in range(steps):
            x, y = batches[i % len(batches)]
            opt.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
    return losses, model


def _train_compiled(build, batches, steps: int, compiler=None):
    model = build()
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
    compiler = compiler or StepCompiler()
    losses = []
    with use_backend("numpy-compiled"):
        for i in range(steps):
            x, y = batches[i % len(batches)]
            opt.zero_grad()
            handle = compiler.forward(model, (x, y),
                                      lambda: F.cross_entropy(model(x), y))
            handle.backward()
            opt.step()
            losses.append(float(handle.loss.data))
    return losses, model, compiler


# --------------------------------------------------------------------------- #
# Bit-identity vs the numpy reference
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    def test_mlp_multi_step_bit_identical(self):
        rng = np.random.default_rng(0)
        batches = [_batch(rng)]
        ref_losses, ref_model = _train_eager("numpy", _mlp, batches, steps=4)
        losses, model, compiler = _train_compiled(_mlp, batches, steps=4)
        assert losses == ref_losses
        for a, b in zip(ref_model.parameters(), model.parameters()):
            assert np.array_equal(a.data, b.data)
        assert compiler.stats == {"captures": 1, "replays": 3, "fallbacks": 0}

    def test_conv_bn_dropout_bit_identical_with_running_stats(self):
        def build():
            seed_everything(0)
            return nn.Sequential(
                nn.Conv2d(3, 8, 3, padding=1),
                nn.BatchNorm2d(8),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Dropout(0.25),
                nn.Flatten(),
                nn.Linear(8 * 8 * 8, 10),
            )

        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, size=4)
        batches = [(x, y)]
        ref_losses, ref_model = _train_eager("numpy", build, batches, steps=4)
        losses, model, _ = _train_compiled(build, batches, steps=4)
        assert losses == ref_losses
        for a, b in zip(ref_model.parameters(), model.parameters()):
            assert np.array_equal(a.data, b.data)
        ref_state, state = ref_model.state_dict(), model.state_dict()
        for key in ref_state:
            if "running" in key:
                assert np.array_equal(ref_state[key], state[key]), key

    def test_replay_sees_fresh_batch_data(self):
        # Same shapes, different contents: each replay must consume the new
        # arrays (feeds + the cross-entropy target patch), not stale capture
        # data.
        rng = np.random.default_rng(2)
        batches = [_batch(rng) for _ in range(3)]
        ref_losses, _ = _train_eager("numpy", _mlp, batches, steps=3)
        losses, _, compiler = _train_compiled(_mlp, batches, steps=3)
        assert losses == ref_losses
        assert compiler.stats["captures"] == 1
        assert compiler.stats["replays"] == 2


# --------------------------------------------------------------------------- #
# Capture invalidation (satellite: every guard forces a recapture)
# --------------------------------------------------------------------------- #
class TestInvalidation:
    def _step(self, compiler, model, opt, x, y):
        opt.zero_grad()
        handle = compiler.forward(model, (x, y),
                                  lambda: F.cross_entropy(model(x), y))
        handle.backward()
        opt.step()
        return float(handle.loss.data)

    def _eager_reference(self, build, batch_seq):
        model = build()
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
        losses = []
        with use_backend("numpy"):
            for x, y in batch_seq:
                opt.zero_grad()
                loss = F.cross_entropy(model(x), y)
                loss.backward()
                opt.step()
                losses.append(float(loss.data))
        return losses

    def test_shape_change_recaptures_bit_identically(self):
        rng = np.random.default_rng(3)
        seq = [_batch(rng, n=8), _batch(rng, n=8), _batch(rng, n=4),
               _batch(rng, n=8)]
        ref = self._eager_reference(_mlp, seq)
        model = _mlp()
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
        compiler = StepCompiler()
        with use_backend("numpy-compiled"):
            losses = [self._step(compiler, model, opt, x, y) for x, y in seq]
        assert losses == ref
        # 8-row capture, 8-row replay, 4-row capture, 8-row replay: shape
        # lands on a different key but the old plan stays warm.
        assert compiler.stats["captures"] == 2
        assert compiler.stats["replays"] == 2

    def test_dtype_change_recaptures(self):
        rng = np.random.default_rng(4)
        x, y = _batch(rng)
        model = _mlp()
        opt = SGD(model.parameters(), lr=0.05)
        compiler = StepCompiler()
        with use_backend("numpy-compiled"):
            self._step(compiler, model, opt, x, y)
            self._step(compiler, model, opt, x, y.astype(np.int32))
        assert compiler.stats["captures"] == 2

    def test_no_grad_mode_is_a_separate_key(self):
        rng = np.random.default_rng(5)
        x, y = _batch(rng)
        model = _mlp()
        compiler = StepCompiler()
        with use_backend("numpy"):
            ref_train = F.cross_entropy(model(x), y)
            with no_grad():
                ref_eval = model(x)
        with use_backend("numpy-compiled"):
            h_train = compiler.forward(model, (x, y),
                                       lambda: F.cross_entropy(model(x), y))
            with no_grad():
                h_eval = compiler.forward(model, (x,), lambda: model(x))
                h_eval2 = compiler.forward(model, (x,), lambda: model(x))
        assert compiler.stats["captures"] == 2
        assert h_eval2.was_replay
        assert np.array_equal(h_train.loss.data, ref_train.data)
        assert np.array_equal(h_eval.loss.data, ref_eval.data)
        assert np.array_equal(h_eval2.loss.data, ref_eval.data)

    def test_cuttlefish_rank_switch_recaptures_bit_identically(self):
        from repro.core import factorize_model

        def build():
            seed_everything(7)
            return nn.Sequential(nn.Linear(16, 32, activation="relu"),
                                 nn.Linear(32, 8))

        rng = np.random.default_rng(6)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        y = rng.integers(0, 8, size=8)

        def run(backend, compiled):
            model = build()
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            losses = []
            compiler = StepCompiler() if compiled else None
            with use_backend(backend):
                for step in range(4):
                    if step == 2:
                        # Mid-run rank switch: swaps modules and parameters.
                        factorize_model(model, {"0": 4, "1": 4},
                                        skip_non_reducing=False)
                        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
                    opt.zero_grad()
                    if compiled:
                        handle = compiler.forward(
                            model, (x, y), lambda: F.cross_entropy(model(x), y))
                        handle.backward()
                        loss_value = float(handle.loss.data)
                    else:
                        loss = F.cross_entropy(model(x), y)
                        loss.backward()
                        loss_value = float(loss.data)
                    opt.step()
                    losses.append(loss_value)
            return losses, compiler

        ref, _ = run("numpy", compiled=False)
        losses, compiler = run("numpy-compiled", compiled=True)
        assert losses == ref
        assert compiler.stats["captures"] == 2  # pre- and post-switch graphs
        assert compiler.stats["replays"] == 2


# --------------------------------------------------------------------------- #
# Plan internals
# --------------------------------------------------------------------------- #
class TestPlanInternals:
    def test_elementwise_chains_are_fused(self):
        def build():
            seed_everything(0)
            return nn.Sequential(nn.Linear(6, 6), nn.Tanh(), nn.Sigmoid(),
                                 nn.GELU(), nn.Linear(6, 4))

        rng = np.random.default_rng(8)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        y = rng.integers(0, 4, size=4)
        model = build()
        compiler = StepCompiler()
        with use_backend("numpy-compiled"):
            h = compiler.forward(model, (x, y),
                                 lambda: F.cross_entropy(model(x), y))
            h.backward()
        plan = next(iter(compiler._plans.values()))
        assert plan.ready and plan.has_backward
        assert plan.num_chain_steps >= 1

    def test_backward_buffers_are_liveness_pooled(self):
        model = _mlp()
        rng = np.random.default_rng(9)
        x, y = _batch(rng)
        compiler = StepCompiler()
        with use_backend("numpy-compiled"):
            h = compiler.forward(model, (x, y),
                                 lambda: F.cross_entropy(model(x), y))
            h.backward()
        plan = next(iter(compiler._plans.values()))
        # Fewer static buffers than backward steps: lifetimes are reused.
        assert 0 < plan.num_grad_buffers <= plan.num_backward_steps

    def test_derived_input_falls_back_to_eager(self):
        # The loss consumes x + 1 (a derived array the capture cannot see as
        # a leaf), so the strict input-match guard must blacklist the key and
        # run eagerly — with correct results — forever.
        model = _mlp()
        rng = np.random.default_rng(10)
        x, y = _batch(rng)
        compiler = StepCompiler()

        def thunk():
            return F.cross_entropy(model(x + 1.0), y)

        with use_backend("numpy"):
            ref = F.cross_entropy(model(x + 1.0), y)
        with use_backend("numpy-compiled"):
            h1 = compiler.forward(model, (x, y), thunk)
            h1.backward()
            model.zero_grad()
            h2 = compiler.forward(model, (x, y), thunk)
        assert compiler.stats["captures"] == 0
        assert compiler.stats["fallbacks"] >= 1
        assert np.array_equal(h1.loss.data, ref.data)
        assert np.array_equal(h2.loss.data, ref.data)

    def test_backend_compiles_flag(self):
        with use_backend("numpy-compiled"):
            assert backend_compiles()
        with use_backend("numpy-fast"):
            assert not backend_compiles()


# --------------------------------------------------------------------------- #
# Plan-in-manifest round trip (satellite)
# --------------------------------------------------------------------------- #
class TestPlanInManifest:
    def _export(self, tmp_path, build, spec, input_shape):
        from repro.serve import export_artifact

        seed_everything(0)
        model = build()
        model.eval()
        path = os.path.join(str(tmp_path), "model.npz")
        manifest = export_artifact(path, model, model_spec=spec,
                                   input_shape=input_shape)
        return path, manifest

    def test_resnet_plan_roundtrip_bit_equal_to_planless_load(self, tmp_path):
        from repro.serve import load_artifact

        path, manifest = self._export(
            tmp_path, lambda: models.resnet18(num_classes=10),
            {"name": "resnet18", "kwargs": {"num_classes": 10}}, (3, 32, 32))
        assert "inference_plan" in manifest
        planned = load_artifact(path)
        planless = load_artifact(path)
        planless._plan_failed = True  # force the eager path
        rng = np.random.default_rng(11)
        x = rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
        out_planned = planned(x)     # canonicalizes to 4 rows -> plan shape
        out_planless = planless(x)
        assert planned._plan is not None, "embedded plan was never used"
        assert np.array_equal(out_planned, out_planless)
        # Off-plan batch geometry still works (eager fallback inside planned).
        x8 = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        assert np.array_equal(planned(x8), planless(x8))

    def test_deit_plan_roundtrip(self, tmp_path):
        from repro.serve import load_artifact

        path, manifest = self._export(
            tmp_path,
            lambda: models.deit_micro(num_classes=10, image_size=16),
            {"name": "deit_micro",
             "kwargs": {"num_classes": 10, "image_size": 16}}, (3, 16, 16))
        assert "inference_plan" in manifest
        planned = load_artifact(path)
        planless = load_artifact(path)
        planless._plan_failed = True
        rng = np.random.default_rng(12)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        a, b = planned(x), planless(x)
        assert planned._plan is not None
        assert np.array_equal(a, b)

    def test_plan_payload_is_json_clean(self, tmp_path):
        _, manifest = self._export(
            tmp_path, lambda: models.resnet18(num_classes=10),
            {"name": "resnet18", "kwargs": {"num_classes": 10}}, (3, 32, 32))
        payload = manifest["inference_plan"]
        json.dumps(payload)  # stored inside the JSON manifest; must be clean
        assert payload["version"] == 1
        assert payload["input_shapes"] == [[4, 3, 32, 32]]
        assert payload["steps"]


# --------------------------------------------------------------------------- #
# Registry / CLI surface
# --------------------------------------------------------------------------- #
class TestSurface:
    def test_backend_is_registered(self):
        from repro.tensor import available_backends, backend_descriptions

        assert "numpy-compiled" in available_backends()
        assert backend_descriptions()["numpy-compiled"]

    def test_compiled_throughput_suite_is_registered(self):
        from repro import bench

        suite = bench.get_suite("compiled-throughput")
        names = {m.name for m in suite.metrics}
        assert names == {"numpy_fast_steps_per_sec",
                         "numpy_compiled_steps_per_sec", "compiled_speedup",
                         "deit_compiled_speedup"}
        assert suite.default_backend == "numpy-compiled"

    def test_bench_run_unknown_backend_is_a_loud_error(self):
        import io

        from repro.cli import main

        stream = io.StringIO()
        code = main(["bench", "run", "--suite", "compiled-throughput",
                     "--tiny", "--backend", "no-such-backend"],
                    stream=stream)
        out = stream.getvalue()
        assert code == 2
        assert "unknown backend 'no-such-backend'" in out
        assert "numpy-compiled" in out  # lists registered names

    def test_training_step_pair_sides_are_bit_identical(self):
        from repro.bench.workloads import training_step_pair

        out = training_step_pair(batch_size=4, image_size=16,
                                 steps=1, blocks=1, warmup_steps=1)
        # Both sides trained a private replica from identical seeds; the
        # backends share one float-op sequence, so the losses must agree
        # exactly after the same number of steps.
        assert out["a_final_loss"] == out["b_final_loss"]
        assert out["a_steps_per_sec"] > 0 and out["b_steps_per_sec"] > 0
        assert out["steps_per_side"] == 2.0

    def test_trainer_uses_compiler_under_compiled_backend(self):
        from repro.data import ArrayDataset, DataLoader
        from repro.train.trainer import Trainer

        seed_everything(0)
        model = _mlp()
        rng = np.random.default_rng(13)
        images = rng.standard_normal((16, 12)).astype(np.float32)
        labels = rng.integers(0, 6, size=16).astype(np.int64)
        loader = DataLoader(ArrayDataset(images, labels), batch_size=8,
                            shuffle=False)
        opt = SGD(model.parameters(), lr=0.05)
        with use_backend("numpy-compiled"):
            trainer = Trainer(model, opt, loader)
            logs = trainer.train_epoch()
            logs2 = trainer.train_epoch()
        assert trainer._compiler is not None
        assert trainer._compiler.stats["captures"] >= 1
        assert trainer._compiler.stats["replays"] >= 1
        assert np.isfinite(logs["loss"]) and np.isfinite(logs2["loss"])
