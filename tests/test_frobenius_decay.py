"""Tests for Frobenius decay on factorized layers."""

import numpy as np
import pytest

from repro import nn
from repro.core import FrobeniusDecay, LowRankConv2d, LowRankLinear, frobenius_penalty
from repro.optim import SGD


class TestFrobeniusDecayLinear:
    def test_gradient_matches_analytic_formula(self, rng):
        layer = LowRankLinear(10, 8, rank=3, bias=False)
        decay = FrobeniusDecay(coefficient=0.01)
        decay(nn.Sequential(layer))
        u = layer.u.data.astype(np.float64)
        vt = layer.vt.data.astype(np.float64)
        expected_u = 0.01 * u @ vt @ vt.T
        expected_vt = 0.01 * u.T @ u @ vt
        np.testing.assert_allclose(layer.u.grad, expected_u, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(layer.vt.grad, expected_vt, rtol=1e-4, atol=1e-6)

    def test_gradient_matches_numeric_penalty_gradient(self, rng, gradcheck):
        layer = LowRankLinear(6, 5, rank=2, bias=False)
        coefficient = 0.1
        decay = FrobeniusDecay(coefficient)
        decay(nn.Sequential(layer))

        u_data = layer.u.data.astype(np.float64)
        def penalty():
            product = u_data @ layer.vt.data.astype(np.float64)
            return 0.5 * coefficient * float(np.sum(product ** 2))
        numeric = gradcheck(penalty, u_data, eps=1e-4)
        np.testing.assert_allclose(layer.u.grad, numeric, atol=1e-3)

    def test_accumulates_into_existing_gradient(self):
        layer = LowRankLinear(4, 4, rank=2, bias=False)
        layer.u.grad = np.ones_like(layer.u.data)
        FrobeniusDecay(0.0)(nn.Sequential(layer))
        np.testing.assert_allclose(layer.u.grad, np.ones_like(layer.u.data))
        FrobeniusDecay(0.1)(nn.Sequential(layer))
        assert not np.allclose(layer.u.grad, np.ones_like(layer.u.data))

    def test_zero_coefficient_is_noop(self):
        layer = LowRankLinear(4, 4, rank=2)
        FrobeniusDecay(0.0)(nn.Sequential(layer))
        assert layer.u.grad is None

    def test_full_rank_layers_untouched(self):
        dense = nn.Linear(4, 4)
        FrobeniusDecay(0.1)(nn.Sequential(dense))
        assert dense.weight.grad is None


class TestFrobeniusDecayConv:
    def test_conv_gradient_matches_unrolled_formula(self):
        layer = LowRankConv2d(3, 6, 3, rank=2, bias=False)
        decay = FrobeniusDecay(coefficient=0.05)
        decay(nn.Sequential(layer))
        rank = layer.rank
        u = layer.u_weight.data.transpose(1, 2, 3, 0).reshape(-1, rank).astype(np.float64)
        vt = layer.v_weight.data.reshape(6, rank).T.astype(np.float64)
        expected_u = 0.05 * u @ vt @ vt.T
        grad_u = layer.u_weight.grad.transpose(1, 2, 3, 0).reshape(-1, rank)
        np.testing.assert_allclose(grad_u, expected_u, rtol=1e-4, atol=1e-6)

    def test_shrinks_composed_weight_under_training(self):
        """Repeated decay-only steps shrink ‖U Vᵀ‖ (the regulariser's purpose)."""
        layer = LowRankConv2d(2, 4, 3, rank=2, bias=False)
        model = nn.Sequential(layer)
        optimizer = SGD(model.parameters(), lr=0.5)
        decay = FrobeniusDecay(coefficient=0.5)
        initial = np.linalg.norm(layer.composed_weight())
        for _ in range(10):
            optimizer.zero_grad()
            decay(model)
            optimizer.step()
        assert np.linalg.norm(layer.composed_weight()) < initial


class TestIntegration:
    def test_configure_optimizer_excludes_factor_params(self):
        layer = LowRankLinear(8, 8, rank=2)
        model = nn.Sequential(layer, nn.Linear(8, 4))
        optimizer = SGD(model.parameters(), lr=0.1, weight_decay=0.1)
        FrobeniusDecay(1e-4).configure_optimizer(optimizer, model)
        assert id(layer.u) in optimizer.no_decay_params
        assert id(layer.vt) in optimizer.no_decay_params
        assert id(model[1].weight) not in optimizer.no_decay_params

    def test_frobenius_penalty_value(self):
        layer = LowRankLinear(4, 4, rank=2, bias=False)
        model = nn.Sequential(layer)
        expected = 0.5 * 0.2 * np.sum(layer.composed_weight().astype(np.float64) ** 2)
        assert frobenius_penalty(model, 0.2) == pytest.approx(expected, rel=1e-5)

    def test_penalty_zero_for_dense_model(self):
        assert frobenius_penalty(nn.Sequential(nn.Linear(4, 4)), 0.3) == 0.0
