"""Tests for datasets, loaders, augmentation and the synthetic task generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    GLUE_TASKS,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    VISION_TASKS,
    make_mlm_corpus,
    make_text_task,
    make_vision_task,
    train_val_split,
)
from repro.utils import seed_everything


class TestDatasetsAndLoader:
    def test_array_dataset_len_and_getitem(self, rng):
        images = rng.random((10, 3, 4, 4)).astype(np.float32)
        labels = np.arange(10)
        ds = ArrayDataset(images, labels)
        assert len(ds) == 10
        x, y = ds[3]
        np.testing.assert_allclose(x, images[3])
        assert y == 3

    def test_array_dataset_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros(3), np.zeros(4))

    def test_array_dataset_transform_applied(self, rng):
        ds = ArrayDataset(rng.random((5, 2)).astype(np.float32), np.zeros(5), transform=lambda x: x * 0)
        x, _ = ds[0]
        np.testing.assert_allclose(x, 0)

    def test_subset(self):
        ds = ArrayDataset(np.arange(10))
        sub = Subset(ds, [1, 3, 5])
        assert len(sub) == 3 and sub[2] == 5

    def test_loader_batches_cover_dataset(self):
        ds = ArrayDataset(np.arange(25), np.arange(25))
        loader = DataLoader(ds, batch_size=8)
        batches = list(loader)
        assert len(loader) == 4 and len(batches) == 4
        assert sum(len(b[0]) for b in batches) == 25

    def test_loader_drop_last(self):
        ds = ArrayDataset(np.arange(25))
        loader = DataLoader(ds, batch_size=8, drop_last=True)
        assert len(loader) == 3
        assert all(len(b[0]) == 8 for b in loader)

    def test_loader_shuffle_changes_order_but_not_content(self):
        ds = ArrayDataset(np.arange(64), np.arange(64))
        loader = DataLoader(ds, batch_size=64, shuffle=True)
        (x, _), = list(loader)
        assert not np.array_equal(x, np.arange(64))
        assert sorted(x.tolist()) == list(range(64))

    def test_loader_deterministic_given_seed(self):
        seed_everything(3)
        ds = ArrayDataset(np.arange(32))
        first = next(iter(DataLoader(ds, batch_size=32, shuffle=True)))[0]
        seed_everything(3)
        second = next(iter(DataLoader(ds, batch_size=32, shuffle=True)))[0]
        np.testing.assert_array_equal(first, second)

    def test_train_val_split_disjoint(self):
        ds = ArrayDataset(np.arange(100))
        train, val = train_val_split(ds, val_fraction=0.2)
        assert len(train) == 80 and len(val) == 20
        train_items = {int(train[i]) for i in range(len(train))}
        val_items = {int(val[i]) for i in range(len(val))}
        assert not train_items & val_items

    def test_train_val_split_zero_fraction_gives_empty_val(self):
        ds = ArrayDataset(np.arange(10))
        train, val = train_val_split(ds, val_fraction=0.0)
        assert len(train) == 10 and len(val) == 0
        assert list(iter(DataLoader(val, batch_size=4))) == []
        assert len(DataLoader(val, batch_size=4)) == 0

    def test_train_val_split_full_fraction_gives_empty_train(self):
        ds = ArrayDataset(np.arange(10))
        train, val = train_val_split(ds, val_fraction=1.0)
        assert len(train) == 0 and len(val) == 10
        assert list(iter(DataLoader(train, batch_size=4))) == []

    def test_train_val_split_rejects_out_of_range_fraction(self):
        ds = ArrayDataset(np.arange(10))
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=-0.1)
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=1.5)

    def test_array_dataset_target_transform(self):
        ds = ArrayDataset(np.arange(5, dtype=np.float32), np.arange(5),
                          target_transform=lambda y: y + 100)
        x, y = ds[2]
        assert x == 2.0 and y == 102

    def test_array_dataset_rejects_non_callable_transforms(self):
        with pytest.raises(TypeError):
            ArrayDataset(np.arange(3), transform="not-a-function")
        with pytest.raises(TypeError):
            ArrayDataset(np.arange(3), np.arange(3), target_transform=3.14)

    def test_target_transform_requires_a_target_array(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), target_transform=lambda y: y)

    def test_subset_out_of_range_index_raises(self):
        sub = Subset(ArrayDataset(np.arange(10)), [1, 3, 5])
        with pytest.raises(IndexError):
            sub[3]
        with pytest.raises(IndexError):
            sub[-4]
        assert sub[-1] == 5      # in-range negatives keep list semantics

    def test_subset_validates_indices_against_dataset(self):
        ds = ArrayDataset(np.arange(10))
        with pytest.raises(IndexError):
            Subset(ds, [0, 10])
        with pytest.raises(IndexError):
            Subset(ds, [-11])


class TestAugmentation:
    def test_normalize_standardises_channels(self, rng):
        image = rng.random((3, 8, 8)).astype(np.float32)
        out = Normalize()(image)
        assert out.shape == image.shape
        assert not np.allclose(out, image)

    def test_random_crop_preserves_shape(self, rng):
        image = rng.random((3, 16, 16)).astype(np.float32)
        out = RandomCrop(16, padding=2)(image)
        assert out.shape == (3, 16, 16)

    def test_random_flip_either_identity_or_mirror(self, rng):
        image = rng.random((3, 4, 4)).astype(np.float32)
        out = RandomHorizontalFlip(p=1.0)(image)
        np.testing.assert_allclose(out, image[:, :, ::-1])

    def test_compose_order(self):
        transform = Compose([lambda x: x + 1, lambda x: x * 2])
        np.testing.assert_allclose(transform(np.zeros(3)), 2 * np.ones(3))


class TestSyntheticVision:
    def test_registry_contains_paper_datasets(self):
        for name in ("cifar10", "cifar100", "svhn", "imagenet"):
            assert name in VISION_TASKS

    def test_shapes_and_labels(self):
        train, val, spec = make_vision_task("cifar10_small", augment=False)
        x, y = train[0]
        assert x.shape == (spec.channels, spec.image_size, spec.image_size)
        assert 0 <= y < spec.num_classes
        assert len(train) == spec.n_train and len(val) == spec.n_val

    def test_determinism_across_calls(self):
        a, _, _ = make_vision_task("svhn_small", augment=False)
        b, _, _ = make_vision_task("svhn_small", augment=False)
        np.testing.assert_allclose(a[0][0], b[0][0])

    def test_different_tasks_differ(self):
        a, _, _ = make_vision_task("cifar10_small", augment=False)
        b, _, _ = make_vision_task("svhn_small", augment=False)
        assert not np.allclose(a[0][0], b[0][0])

    def test_overrides(self):
        _, _, spec = make_vision_task("cifar10_small", overrides={"n_train": 32, "num_classes": 3})
        assert spec.n_train == 32 and spec.num_classes == 3

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            make_vision_task("mnist")

    def test_class_signal_is_learnable(self):
        """A nearest-class-mean classifier on raw pixels must beat chance —
        otherwise no training method can be compared on this data."""
        train, val, spec = make_vision_task("cifar10_small", augment=False)
        images = np.stack([train[i][0] for i in range(len(train))])
        labels = np.array([train[i][1] for i in range(len(train))])
        means = np.stack([images[labels == c].mean(axis=0) for c in range(spec.num_classes)])
        val_images = np.stack([val[i][0] for i in range(len(val))])
        val_labels = np.array([val[i][1] for i in range(len(val))])
        distances = ((val_images[:, None] - means[None]) ** 2).sum(axis=(2, 3, 4))
        accuracy = (distances.argmin(axis=1) == val_labels).mean()
        assert accuracy > 1.5 / spec.num_classes

    def test_harder_task_has_higher_intrinsic_rank(self):
        assert VISION_TASKS["cifar100"].intrinsic_rank > VISION_TASKS["cifar10"].intrinsic_rank
        assert VISION_TASKS["cifar10"].intrinsic_rank > VISION_TASKS["svhn"].intrinsic_rank


class TestSyntheticText:
    def test_glue_inventory_matches_paper(self):
        expected = {"mnli", "qnli", "qqp", "rte", "sst2", "mrpc", "cola", "stsb"}
        assert expected == set(GLUE_TASKS)

    def test_classification_task_shapes(self):
        train, val, spec = make_text_task("sst2")
        tokens, mask, label = train[0]
        assert tokens.shape == (spec.seq_len,)
        assert mask.shape == (spec.seq_len,)
        assert 0 <= label < spec.num_classes

    def test_regression_task_labels_in_range(self):
        train, _, spec = make_text_task("stsb")
        assert spec.is_regression
        labels = np.array([train[i][2] for i in range(len(train))])
        assert labels.min() >= 0.0 and labels.max() <= 5.0

    def test_padding_respects_mask(self):
        train, _, spec = make_text_task("rte")
        tokens, mask, _ = train[0]
        assert np.all(tokens[mask == 0] == 0)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            make_text_task("wnli")

    def test_class_signal_present(self):
        """Signature tokens must be more frequent within their class than across classes."""
        train, _, spec = make_text_task("sst2")
        tokens = np.stack([train[i][0] for i in range(len(train))])
        labels = np.array([train[i][2] for i in range(len(train))])
        overlap_same, overlap_diff = [], []
        class0 = tokens[labels == 0]
        class1 = tokens[labels == 1]
        vocab0 = np.bincount(class0.reshape(-1), minlength=spec.vocab_size)
        vocab1 = np.bincount(class1.reshape(-1), minlength=spec.vocab_size)
        correlation = np.corrcoef(vocab0[4:], vocab1[4:])[0, 1]
        assert correlation < 0.99   # class distributions are distinguishable


class TestSyntheticMLM:
    def test_shapes_and_mask_convention(self):
        train, val, spec = make_mlm_corpus()
        inputs, labels = train[0]
        assert inputs.shape == (spec.seq_len,)
        masked = labels != -100
        assert np.all(inputs[masked] == spec.mask_token_id)
        assert np.all(labels[~masked] == -100)

    def test_mask_rate_close_to_config(self):
        train, _, spec = make_mlm_corpus()
        inputs = np.stack([train[i][0] for i in range(len(train))])
        rate = (inputs == spec.mask_token_id).mean()
        assert abs(rate - spec.mask_prob) < 0.05

    def test_context_predicts_tokens_better_than_uniform(self):
        """The Markov structure means bigram statistics beat the uniform baseline."""
        train, _, spec = make_mlm_corpus()
        labels = np.stack([train[i][1] for i in range(len(train))])
        valid = labels[labels != -100]
        # Tokens concentrate on a subset of the vocabulary under the low-rank chain.
        unique_fraction = len(np.unique(valid)) / spec.vocab_size
        assert unique_fraction < 1.0
