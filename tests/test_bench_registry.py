"""Suite registry, runner and longitudinal history (repro.bench)."""

import importlib.util
import json
import os

import pytest

from repro.bench.contract import ContractError, MetricSpec, validate_result
from repro.bench.history import append_result, format_history, read_history
from repro.bench.registry import (
    SuiteBudget,
    _REGISTRY,
    available_suites,
    get_suite,
    register_suite,
    suite_descriptions,
)
from repro.bench.runner import RunConfig, format_result_table, run_suite

SPEED = MetricSpec("speed", "ops/s")
LATENCY = MetricSpec("latency", "ms", higher_is_better=False)


@pytest.fixture
def registry():
    """Snapshot/restore the global suite registry around each test."""
    available_suites()  # force the one-shot builtin import before snapshotting
    saved = dict(_REGISTRY)
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


class TestRegistry:
    def test_register_and_lookup(self, registry):
        @register_suite("toy", "a toy suite", [SPEED], tags=("smoke",))
        def toy(budget):
            return {"speed": 1.0}

        suite = get_suite("toy")
        assert suite.fn is toy
        assert suite.metric("speed").unit == "ops/s"
        assert "toy" in available_suites()
        assert suite_descriptions()["toy"] == "a toy suite"

    def test_duplicate_name_rejected(self, registry):
        register_suite("dup", "first", [SPEED])(lambda budget: {"speed": 1.0})
        with pytest.raises(ValueError, match="already registered"):
            register_suite("dup", "second", [SPEED])(lambda budget: {"speed": 1.0})

    def test_empty_metrics_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one metric"):
            register_suite("bare", "no metrics", [])

    def test_duplicate_metric_rejected(self, registry):
        with pytest.raises(ValueError, match="twice"):
            register_suite("twice", "dup metric", [SPEED, SPEED])

    def test_unknown_suite_lists_available(self, registry):
        with pytest.raises(KeyError, match="unknown benchmark suite"):
            get_suite("no-such-suite")

    def test_builtin_suites_are_discoverable(self):
        names = available_suites()
        for expected in ("throughput", "pipeline", "dataparallel", "serving"):
            assert expected in names

    def test_unknown_metric_lookup_raises(self, registry):
        register_suite("m", "one metric", [SPEED])(lambda budget: {"speed": 1.0})
        with pytest.raises(KeyError, match="declares no metric"):
            get_suite("m").metric("nope")


class TestSuiteBudget:
    def test_explicit_iters_win(self):
        assert SuiteBudget(iters=7).resolve_iters(10, 2) == 7

    def test_tiny_falls_back_to_tiny_default(self):
        assert SuiteBudget(tiny=True).resolve_iters(10, 2) == 2

    def test_full_falls_back_to_full_default(self):
        assert SuiteBudget().resolve_iters(10, 2) == 10


class TestRunner:
    def _register_counting(self, name, values=(10.0, 12.0, 11.0)):
        calls = []

        @register_suite(name, "counting suite", [SPEED, LATENCY],
                        default_backend="numpy")
        def counting(budget):
            calls.append(budget)
            value = values[min(len(calls) - 1, len(values) - 1)]
            return {"speed": value, "latency": 1.0}

        return calls

    def test_warmup_runs_are_discarded(self, registry):
        calls = self._register_counting("count")
        result = run_suite("count", RunConfig(warmup=2, repeat=3))
        assert len(calls) == 5
        # First measured repeat is the third call overall → samples start at
        # values[2], so a warmup-polluted median would differ.
        assert len(result["metrics"]["speed"]["samples"]) == 3

    def test_result_is_schema_valid_and_records_budget(self, registry):
        self._register_counting("budgeted")
        result = run_suite("budgeted",
                           RunConfig(tiny=True, warmup=0, repeat=2, iters=5,
                                     extra_budget={"note": "test"}))
        validate_result(result)
        assert result["budget"] == {"tiny": True, "warmup": 0, "repeat": 2,
                                    "iters": 5, "note": "test"}
        assert result["backend"] == "numpy"

    def test_backend_override_reaches_suite_body(self, registry):
        calls = self._register_counting("backendy")
        run_suite("backendy", RunConfig(warmup=0, repeat=1, backend="custom"))
        assert calls[0].backend == "custom"

    def test_metric_declaration_violation_is_loud(self, registry):
        register_suite("liar", "wrong metrics", [SPEED])(
            lambda budget: {"other": 1.0})
        with pytest.raises(ContractError, match="violated its metric declaration"):
            run_suite("liar", RunConfig(warmup=0, repeat=1))

    def test_progress_callback_sees_every_stage(self, registry):
        self._register_counting("progress")
        stages = []
        run_suite("progress", RunConfig(warmup=1, repeat=2),
                  progress=lambda stage, i, n: stages.append((stage, i, n)))
        assert stages == [("warmup", 0, 1), ("repeat", 0, 2), ("repeat", 1, 2)]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            RunConfig(warmup=-1)
        with pytest.raises(ValueError, match="repeat"):
            RunConfig(repeat=0)

    def test_format_result_table_lists_metrics(self, registry):
        self._register_counting("tabled")
        text = format_result_table(run_suite("tabled", RunConfig(warmup=0, repeat=1)))
        assert "speed" in text and "latency" in text and "↓" in text


class TestHistory:
    def _result(self, suite="demo", value=10.0, commit="cafe1234"):
        from repro.bench.contract import build_result

        return build_result(
            suite, {"speed": {"unit": "ops/s", "higher_is_better": True,
                              "samples": [value]}},
            backend="numpy", budget={"tiny": True}, commit=commit,
            created_unix=1000.0)

    def test_append_is_additive(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        assert append_result(store, self._result(value=1.0)) == 1
        assert append_result(store, self._result(value=2.0)) == 1
        entries, skipped = read_history(store)
        assert [e["value"] for e in entries] == [1.0, 2.0]
        assert skipped == 0
        assert entries[0]["tiny"] is True

    def test_missing_store_reads_empty(self, tmp_path):
        entries, skipped = read_history(str(tmp_path / "absent.jsonl"))
        assert entries == [] and skipped == 0

    def test_malformed_lines_are_skipped_and_counted(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        append_result(store, self._result())
        with open(store, "a") as handle:
            handle.write("{broken json\n")
            handle.write(json.dumps({"suite": "demo"}) + "\n")  # no metric/value
        append_result(store, self._result(value=3.0))
        entries, skipped = read_history(store)
        assert len(entries) == 2
        assert skipped == 2

    def test_filters_and_last(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        for value in (1.0, 2.0, 3.0):
            append_result(store, self._result(suite="a", value=value))
        append_result(store, self._result(suite="b", value=9.0))
        entries, _ = read_history(store, suite="a", last=2)
        assert [e["value"] for e in entries] == [2.0, 3.0]
        entries, _ = read_history(store, metric="speed", suite="b")
        assert [e["value"] for e in entries] == [9.0]

    def test_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="last"):
            read_history(str(tmp_path / "h.jsonl"), last=0)

    def test_format_history_renders_rows_and_skips(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        append_result(store, self._result())
        entries, _ = read_history(store)
        text = format_history(entries, skipped=1)
        assert "cafe1234" in text
        assert "speed" in text
        assert "1 malformed line skipped" in text

    def test_format_history_empty(self):
        assert "no history entries" in format_history([], 0)


class TestBenchmarksCommonReport:
    """Satellite: benchmarks/common.py report() must append, not overwrite."""

    @pytest.fixture
    def common(self):
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "common.py")
        spec = importlib.util.spec_from_file_location("_bench_common_under_test",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_report_appends_with_timestamped_banner(self, common, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.setattr(common, "OUTPUT_DIR", str(tmp_path))
        common.report("demo", "first run")
        common.report("demo", "second run")
        capsys.readouterr()
        text = (tmp_path / "demo.txt").read_text()
        assert text.count("===== demo @ ") == 2
        assert "first run" in text and "second run" in text

    def test_report_writes_contract_twin_when_given(self, common, tmp_path,
                                                    monkeypatch, capsys):
        from repro.bench.contract import build_result, load_result

        monkeypatch.setattr(common, "OUTPUT_DIR", str(tmp_path))
        result = build_result(
            "demo", {"m": {"unit": "x", "higher_is_better": True,
                           "samples": [1.0]}})
        common.report("demo", "with contract", suite_result=result)
        capsys.readouterr()
        loaded = load_result(str(tmp_path / "demo.bench.json"))
        assert loaded["suite"] == "demo"
