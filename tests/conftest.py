"""Shared fixtures: deterministic seeding and small reusable models/datasets."""

import numpy as np
import pytest

from repro.utils import seed_everything


@pytest.fixture(autouse=True)
def _seed_everything():
    """Every test starts from the same global seed for reproducibility."""
    seed_everything(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def numeric_gradient(fn, array, eps=1e-3):
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` (mutated in place)."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture
def gradcheck():
    return numeric_gradient
