"""The shared experiment harness behind the benchmark tables
(repro.train.experiments), exercised at smoke-test scale."""

import numpy as np
import pytest

from repro.train.experiments import (
    VisionExperimentConfig,
    format_rows,
    projected_training_hours,
    reference_profiling,
    run_vision_method,
)


def _tiny_config(**overrides):
    defaults = dict(
        task="cifar10_small", model="resnet18", width_mult=0.125,
        epochs=2, batch_size=32, peak_lr=0.2, warmup_epochs=1,
        weight_decay=1e-3, max_batches_per_epoch=2,
    )
    defaults.update(overrides)
    return VisionExperimentConfig(**defaults)


class TestRunVisionMethod:
    def test_pufferfish_row_reports_compression(self):
        row = run_vision_method("pufferfish", _tiny_config())
        assert row.method == "pufferfish"
        assert 0 < row.params_fraction < 1.0
        assert row.extra["switch_epoch"] >= 1

    def test_si_fd_row_trains_factorized_from_scratch(self):
        row = run_vision_method("si_fd", _tiny_config())
        assert row.params_fraction < 1.0
        assert row.wallclock_seconds > 0

    def test_xnor_row_reports_bit_compression(self):
        row = run_vision_method("xnor", _tiny_config())
        assert row.params_fraction == pytest.approx(1 / 32)
        assert row.speedup_vs_full_rank < 1.0   # binarisation overhead

    def test_grasp_row_reports_sparsity(self):
        row = run_vision_method("grasp", _tiny_config())
        assert 0 < row.extra["sparsity"] < 1
        assert row.params < 176012              # fewer effective params than dense

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            run_vision_method("magic", _tiny_config())

    def test_rows_share_the_same_budget(self):
        full = run_vision_method("full_rank", _tiny_config())
        cuttle = run_vision_method("cuttlefish", _tiny_config())
        # Same full-rank architecture at the start ⇒ identical baseline size.
        assert full.params == pytest.approx(cuttle.params / cuttle.params_fraction, rel=1e-6)


class TestProjectedTime:
    def test_projection_monotone_in_epochs(self):
        config = _tiny_config()
        short = projected_training_hours(config, 4, None, epochs_full=2, epochs_low=0)
        long = projected_training_hours(config, 4, None, epochs_full=4, epochs_low=0)
        assert long > short

    def test_low_rank_epochs_cheaper_than_full_rank_epochs(self):
        config = _tiny_config()
        ratios = {"layer3.0.conv1": 0.25, "layer3.0.conv2": 0.25,
                  "layer4.0.conv1": 0.25, "layer4.0.conv2": 0.25,
                  "layer4.1.conv1": 0.25, "layer4.1.conv2": 0.25}
        all_full = projected_training_hours(config, 4, ratios, epochs_full=4, epochs_low=0)
        half_low = projected_training_hours(config, 4, ratios, epochs_full=2, epochs_low=2)
        assert half_low < all_full

    def test_overhead_multiplier_scales_linearly(self):
        config = _tiny_config()
        base = projected_training_hours(config, 4, None, 2, 0)
        doubled = projected_training_hours(config, 4, None, 2, 0, overhead_multiplier=2.0)
        assert doubled == pytest.approx(2 * base, rel=1e-9)


class TestReferenceProfiling:
    def test_reference_decision_skips_first_stack(self):
        """At paper width and batch 1024, Algorithm 2 keeps the first ResNet stack full rank."""
        result = reference_profiling(_tiny_config(), num_classes=10)
        assert result is not None
        assert "layer1" in result.skip_stacks
        assert set(result.factorize_stacks) >= {"layer3", "layer4"}

    def test_reference_decision_is_memoised(self):
        config = _tiny_config()
        first = reference_profiling(config, num_classes=10)
        second = reference_profiling(config, num_classes=10)
        assert first is second

    def test_cache_distinguishes_probe_rank_ratio_and_threshold(self):
        """Ablations that vary rho-bar / upsilon must not reuse a stale K decision."""
        base = reference_profiling(_tiny_config(), num_classes=10)
        other_ratio = reference_profiling(_tiny_config(profile_rank_ratio=0.5), num_classes=10)
        other_threshold = reference_profiling(
            _tiny_config(profile_speedup_threshold=4.0), num_classes=10)
        assert other_ratio is not base
        assert other_threshold is not base
        # A stricter threshold can only shrink the set of factorized stacks.
        assert set(other_threshold.factorize_stacks) <= set(base.factorize_stacks)


class TestFormatting:
    def test_format_rows_contains_headers_and_methods(self):
        row = run_vision_method("full_rank", _tiny_config())
        text = format_rows([row])
        assert "method" in text and "full_rank" in text
        assert "params" in text and "speedup" in text
