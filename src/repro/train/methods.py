"""Unified training-method API: one lifecycle, one registry, nine methods.

Every comparison table in the paper runs N methods on the same
(task, model, budget) cell and reports (# params, accuracy, time).  The
:class:`Method` base class turns each method — Cuttlefish and all eight
baselines — into a pluggable component with a uniform lifecycle, mirroring
the ``repro.models`` registry pattern:

1. ``prepare(model, context)`` — structural transforms before training
   (XNOR layer conversion, SI&FD factorize-at-init, GraSP pruning masks);
2. ``configure(context)`` — optimizer-dependent setup once the optimizer and
   scheduler exist (Frobenius decay's weight-decay exclusions);
3. ``callbacks()`` / ``loss_hook()`` / ``grad_hook()`` — contributions to the
   :class:`~repro.train.trainer.Trainer` (epoch- and step-level events,
   extra loss terms, gradient masking);
4. ``execute(context)`` — the training loop itself; the default runs
   ``context.trainer.fit(config.epochs)`` and methods with a bespoke outer
   loop (IMP's prune-rewind rounds) override it;
5. ``finalize(context) -> MethodResult`` — what the comparison table needs:
   parameter count, accuracy, the full-rank/low-rank epoch split and the
   overhead multiplier that drive the roofline time projection.

Methods self-register with :func:`register_method`; the experiment harness
(``repro.train.experiments.run_experiment``) builds them by name through
:func:`build_method` and composes the shared projection/reporting logic once.

This module deliberately imports nothing from ``repro.core`` or
``repro.baselines`` at module level — those packages import the decorator
from here, and the built-in registrations are pulled in lazily on first
registry access.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Type

from repro.train.trainer import Callback
from repro.utils import get_logger

logger = get_logger("train.methods")


# --------------------------------------------------------------------------- #
# Data carried across the lifecycle
# --------------------------------------------------------------------------- #
@dataclass
class ExperimentContext:
    """Everything a :class:`Method` may need during one experiment run.

    The harness fills the fields in lifecycle order: loaders and factories
    exist from the start, ``model`` is set after ``prepare``, ``optimizer``
    and ``scheduler`` before ``configure``, and ``trainer`` before
    ``execute``.
    """

    config: Any                                   # VisionExperimentConfig (or compatible)
    task_spec: Any = None                         # dataset spec (``num_classes``, …)
    train_loader: Any = None
    val_loader: Any = None
    model: Any = None
    optimizer: Any = None
    scheduler: Any = None
    trainer: Any = None
    full_rank_params: int = 0                     # parameter count before any transform
    optimizer_factory: Optional[Callable] = None  # optimizer_factory(model) -> Optimizer
    scheduler_factory: Optional[Callable] = None  # scheduler_factory(optimizer) -> LRScheduler
    reference_profiler: Optional[Callable] = None  # () -> Optional[ProfilingResult]

    @property
    def num_classes(self) -> int:
        return self.task_spec.num_classes


@dataclass
class MethodResult:
    """What ``finalize`` hands back to the harness for one table row.

    ``epochs_full``/``epochs_low`` and ``overhead_multiplier`` parameterise
    the paper-scale roofline projection of the "Time" column;
    ``rank_ratios`` (per-path rank / full rank of the trained model) lets the
    harness price the low-rank phase on the reference model.
    ``params_fraction`` overrides the default ``params / full_rank_params``
    for methods whose effective size is not a parameter count (XNOR's
    1-bit-out-of-32 fraction).
    """

    params: int
    accuracy: float
    wallclock_seconds: float
    epochs_full: float
    epochs_low: float = 0.0
    overhead_multiplier: float = 1.0
    rank_ratios: Optional[Dict[str, float]] = None
    params_fraction: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# The Method lifecycle
# --------------------------------------------------------------------------- #
class Method:
    """Base class of every registered training method.

    Subclasses override only the lifecycle stages their algorithm needs; the
    defaults describe plain full-rank training.  Constructor keyword
    arguments are the method's public knobs — :func:`build_method` validates
    them against the signature so typos fail loudly.
    """

    #: registry name, set by :func:`register_method`.
    name: str = ""
    #: one-line summary shown by ``repro-cuttlefish list-methods``.
    description: str = ""
    #: build a per-epoch LR scheduler for this method's trainer.
    uses_scheduler: bool = True
    #: apply the experiment config's label smoothing inside the default loss.
    uses_label_smoothing: bool = False

    def prepare(self, model, context: ExperimentContext):
        """Transform ``model`` before the optimizer is built; return the model."""
        return model

    def configure(self, context: ExperimentContext) -> None:
        """Optimizer-dependent setup, run after ``context.optimizer`` exists."""

    def callbacks(self) -> List[Callback]:
        """Trainer callbacks contributed by this method."""
        return []

    def loss_hook(self) -> Optional[Callable]:
        """Optional callable adding differentiable terms to the loss."""
        return None

    def grad_hook(self) -> Optional[Callable]:
        """Optional callable run after ``backward``, before ``optimizer.step``."""
        return None

    def execute(self, context: ExperimentContext) -> None:
        """Run training.  Default: one ``Trainer.fit`` over the budget."""
        context.trainer.fit(context.config.epochs)

    def finalize(self, context: ExperimentContext) -> MethodResult:
        """Summarise the run.  Default describes plain dense training."""
        trainer = context.trainer
        return MethodResult(
            params=context.model.num_parameters(),
            accuracy=trainer.final_val_accuracy(),
            wallclock_seconds=trainer.total_train_seconds,
            epochs_full=float(context.config.epochs),
        )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_METHOD_REGISTRY: Dict[str, Type[Method]] = {}


def register_method(name: str) -> Callable[[Type[Method]], Type[Method]]:
    """Class decorator registering a :class:`Method` subclass under ``name``."""

    def decorator(cls: Type[Method]) -> Type[Method]:
        if not (isinstance(cls, type) and issubclass(cls, Method)):
            raise TypeError(f"@register_method({name!r}) expects a Method subclass, got {cls!r}")
        if name in _METHOD_REGISTRY and _METHOD_REGISTRY[name] is not cls:
            raise ValueError(f"method name {name!r} already registered by "
                             f"{_METHOD_REGISTRY[name].__qualname__}")
        cls.name = name
        _METHOD_REGISTRY[name] = cls
        return cls

    return decorator


def _ensure_builtin_methods() -> None:
    """Import the modules whose import side effect registers the built-ins.

    Lazy so that ``repro.train`` stays importable without ``repro.core`` /
    ``repro.baselines`` (which import the decorator from this module).
    """
    import repro.baselines            # noqa: F401  (registers the 8 baselines)
    import repro.core.cuttlefish      # noqa: F401  (registers "cuttlefish")


def available_methods() -> List[str]:
    """Sorted names accepted by :func:`build_method`."""
    _ensure_builtin_methods()
    return sorted(_METHOD_REGISTRY)


def method_descriptions() -> Dict[str, str]:
    """name → one-line description for every registered method."""
    _ensure_builtin_methods()
    return {name: _METHOD_REGISTRY[name].description or
            (inspect.getdoc(_METHOD_REGISTRY[name]) or "").split("\n")[0]
            for name in sorted(_METHOD_REGISTRY)}


def build_method(name: str, **kwargs) -> Method:
    """Instantiate a registered method by name.

    Raises ``KeyError`` for an unknown name (matching the model registry) and
    ``ValueError`` naming any keyword argument the method does not accept, so
    typos like ``cuttelfish_config=`` fail loudly instead of being ignored.
    """
    _ensure_builtin_methods()
    if name not in _METHOD_REGISTRY:
        raise KeyError(f"unknown method {name!r}; available: {available_methods()}")
    cls = _METHOD_REGISTRY[name]
    if cls.__init__ is object.__init__:
        # No constructor of its own: the method has no knobs at all.
        accepted, takes_var_kwargs = set(), False
    else:
        parameters = inspect.signature(cls.__init__).parameters
        takes_var_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                               for p in parameters.values())
        accepted = {p for p in parameters if p != "self"}
    if not takes_var_kwargs:
        unknown = sorted(set(kwargs) - accepted)
        if unknown:
            raise ValueError(
                f"method {name!r} got unknown argument(s) {unknown}; "
                f"accepted: {sorted(accepted) or '(none)'}"
            )
    return cls(**kwargs)


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
def low_rank_ratios(model) -> Dict[str, float]:
    """Per-path rank ratio of every factorized layer of a trained model."""
    from repro.core import is_low_rank  # lazy: repro.core imports this module

    ratios: Dict[str, float] = {}
    for name, module in model.named_modules():
        if not name or not is_low_rank(module):
            continue
        if hasattr(module, "kernel_size"):
            full = min(module.in_channels * module.kernel_size[0] * module.kernel_size[1],
                       module.out_channels)
        else:
            full = min(module.in_features, module.out_features)
        ratios[name] = module.rank / max(full, 1)
    return ratios


# --------------------------------------------------------------------------- #
# The baseline column
# --------------------------------------------------------------------------- #
@register_method("full_rank")
class FullRankMethod(Method):
    """Plain dense training — the full-rank baseline column of every table."""

    description = "conventional full-rank training (the paper's baseline column)"
    uses_label_smoothing = True


__all__ = [
    "ExperimentContext",
    "FullRankMethod",
    "Method",
    "MethodResult",
    "available_methods",
    "build_method",
    "low_rank_ratios",
    "method_descriptions",
    "register_method",
]
