"""Generic supervised training loop with an epoch-level callback hook.

The Cuttlefish algorithm (and several baselines: EB-Train, IMP, LC) is a
*training-time* transformation — it watches the model between epochs and may
replace layers, rebuild optimizer state or adjust the learning rate.  The
:class:`Trainer` therefore exposes a small callback protocol at two
granularities:

* epoch level — ``on_train_begin``, ``on_epoch_end(trainer, epoch, logs)``
  and ``on_train_end``; callbacks may mutate ``trainer.model`` and
  ``trainer.optimizer`` between epochs;
* step level — ``on_batch_begin(trainer, batch_index, batch)`` and
  ``on_batch_end(trainer, batch_index, logs)`` around every optimizer step,
  and ``on_evaluate_end(trainer, logs)`` after each validation pass, so
  per-iteration work (XNOR re-binarisation accounting, LC's penalty
  bookkeeping) lives in callbacks instead of special-cased loops.

This keeps the training loop itself free of any Cuttlefish-specific logic and
identical across the full-rank baseline and every low-rank method.

Data flows in through the :class:`~repro.data.pipeline.BatchStream` protocol
— any length-aware iterable of stacked-array batch tuples works (the legacy
``DataLoader``, the vectorized ``PipelineLoader``, a ``PrefetchingLoader``
around either).  The trainer advances the stream's epoch (``set_epoch``)
before every training epoch so epoch-keyed shuffling and counter-based
augmentation stay deterministic, and it splits wall time per epoch into
*data stall* (blocked in ``next(batch)``) versus *step compute* — the
numbers that say whether the input pipeline or the model is the bottleneck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.data.pipeline import BatchStream
from repro.optim import LRScheduler, Optimizer
from repro.profiling.pipeline import PipelineStats
from repro.telemetry import MetricsRegistry
from repro.telemetry import tracing as _tracing
from repro.tensor import Tensor, functional as F, no_grad
from repro.train.metrics import AverageMeter, top_k_accuracy
from repro.utils import get_logger

logger = get_logger("train")


class Callback:
    """Base class for epoch- and step-level training hooks."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        pass

    def on_batch_begin(self, trainer: "Trainer", batch_index: int, batch) -> None:
        pass

    def on_batch_end(self, trainer: "Trainer", batch_index: int, logs: Dict[str, float]) -> None:
        pass

    def on_evaluate_end(self, trainer: "Trainer", logs: Dict[str, float]) -> None:
        pass

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: Dict[str, float]) -> None:
        pass

    def on_train_end(self, trainer: "Trainer") -> None:
        pass


@dataclass
class EpochRecord:
    """Per-epoch training record collected into ``Trainer.history``."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None
    val_top5: Optional[float] = None
    lr: float = 0.0
    epoch_seconds: float = 0.0
    num_parameters: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


def _collect_op_counters() -> Dict[str, Dict[str, float]]:
    """Backend per-op counters as plain dicts for the metrics snapshot."""
    from repro.profiling.counters import op_counters

    return {name: {"calls": count.calls, "flops": count.flops}
            for name, count in op_counters().items()}


def default_loss_fn(model: nn.Module, batch: Sequence[np.ndarray]) -> Tensor:
    """Cross-entropy over an ``(inputs, labels)`` batch.

    Runs through the fused :func:`repro.tensor.functional.softmax_cross_entropy`
    kernel (a single graph node on fusing backends).
    """
    inputs, labels = batch[0], batch[-1]
    logits = model(inputs)
    return F.softmax_cross_entropy(logits, labels)


def default_forward_fn(model: nn.Module, batch: Sequence[np.ndarray]) -> Tensor:
    """Return logits for an ``(inputs, ..., labels)`` batch."""
    return model(batch[0])


class Trainer:
    """Mini-batch SGD training loop.

    Parameters
    ----------
    model, optimizer, train_loader, val_loader:
        The usual suspects.
    loss_fn:
        ``loss_fn(model, batch) -> Tensor`` scalar loss.  Defaults to
        cross-entropy on ``(inputs, labels)`` batches.
    forward_fn:
        ``forward_fn(model, batch) -> Tensor`` producing logits for
        evaluation.  Defaults to ``model(batch[0])``.
    scheduler:
        Optional per-epoch learning rate scheduler.
    label_smoothing:
        Applied inside the default loss function only.
    loss_hook:
        Optional callable adding extra differentiable terms to the loss
        (used by Frobenius decay).
    grad_hook:
        Optional callable invoked after ``backward`` and before
        ``optimizer.step`` (used by gradient-masking baselines).
    """

    def __init__(
        self,
        model: nn.Module,
        optimizer: Optimizer,
        train_loader: BatchStream,
        val_loader: Optional[BatchStream] = None,
        loss_fn: Optional[Callable] = None,
        forward_fn: Optional[Callable] = None,
        scheduler: Optional[LRScheduler] = None,
        callbacks: Optional[List[Callback]] = None,
        label_smoothing: float = 0.0,
        loss_hook: Optional[Callable[[nn.Module], Tensor]] = None,
        grad_hook: Optional[Callable[[nn.Module], None]] = None,
        max_batches_per_epoch: Optional[int] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.scheduler = scheduler
        self.callbacks = list(callbacks or [])
        self.label_smoothing = label_smoothing
        self.loss_hook = loss_hook
        self.grad_hook = grad_hook
        self._added_grad_hooks: List[Callable] = []
        self.max_batches_per_epoch = max_batches_per_epoch
        self.history: List[EpochRecord] = []
        self.total_train_seconds = 0.0
        # Epoch counter fed to the stream's ``set_epoch`` — monotonic across
        # repeated ``fit`` calls so multi-phase methods (IMP rewinds,
        # Cuttlefish's two phases) never replay an epoch's augmentation bits.
        self.epochs_completed = 0
        # Data-stall vs step-compute accounting (see repro.profiling.pipeline):
        # cumulative across the trainer's life plus the most recent epoch.
        self.pipeline_stats = PipelineStats()
        self.last_epoch_pipeline_stats: Optional[PipelineStats] = None
        # Unified metrics: lifetime step/sample counters (updated once per
        # epoch — zero per-step cost) plus the pipeline split and the
        # backend's per-op counters as collectors.
        self.metrics = MetricsRegistry("train")
        self.metrics.register_collector("pipeline", self.pipeline_stats.as_dict)
        self.metrics.register_collector("op_counters", _collect_op_counters)
        # Logits of the most recent training batch, recorded by the default
        # loss path so train_epoch can report a real running accuracy.
        self._last_train_logits: Optional[Tensor] = None
        # Lazily created when the active backend asks for compiled plans
        # (``numpy-compiled``); holds one replayable plan per step signature.
        self._compiler = None

        if loss_fn is None:
            def loss_fn(model, batch):
                logits = model(batch[0])
                self._last_train_logits = logits
                return F.softmax_cross_entropy(logits, batch[-1],
                                               label_smoothing=self.label_smoothing)
        self.loss_fn = loss_fn
        self.forward_fn = forward_fn or default_forward_fn

    # ------------------------------------------------------------------ #
    # Single epoch
    # ------------------------------------------------------------------ #
    def _loss_with_hook(self, batch) -> Tensor:
        loss = self.loss_fn(self.model, batch)
        if self.loss_hook is not None:
            extra = self.loss_hook(self.model)
            if extra is not None:
                loss = loss + extra
        return loss

    def _step_compiler(self):
        """The step compiler, when the active backend wants compiled plans."""
        from repro.tensor.backend import get_backend

        if not getattr(get_backend(), "compiled_plans", False):
            return None
        if self._compiler is None:
            from repro.compile import StepCompiler

            self._compiler = StepCompiler()
        return self._compiler

    def train_epoch(self) -> Dict[str, float]:
        self.model.train()
        epoch = self.epochs_completed
        set_epoch = getattr(self.train_loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)
        stats = PipelineStats()
        loss_meter, acc_meter = AverageMeter(), AverageMeter()
        compiler = self._step_compiler()
        iterator = iter(self.train_loader)
        batch_index = 0
        try:
            while True:
                requested = time.perf_counter()
                try:
                    batch = next(iterator)
                except StopIteration:
                    break
                # The cap check sits *after* the fetch on purpose: the old
                # enumerate loop materialised batch ``max`` before breaking,
                # and the legacy loader's per-sample transforms draw from a
                # stateful stream — skipping that fetch would shift every
                # later epoch's augmentation bits away from the seed capture.
                if self.max_batches_per_epoch is not None and batch_index >= self.max_batches_per_epoch:
                    break
                delivered = time.perf_counter()
                stats.observe_stall(delivered - requested)
                # One branch per step when tracing is off; when on, the phase
                # boundaries reuse the perf_counter stamps the loop already
                # takes plus three extra clock reads — no context managers in
                # the hot path.
                traced = _tracing.enabled()
                for callback in self.callbacks:
                    callback.on_batch_begin(self, batch_index, batch)
                self._last_train_logits = None
                if compiler is not None:
                    handle = compiler.forward(
                        self.model, batch,
                        lambda: self._loss_with_hook(batch),
                        aux=lambda: {"logits": self._last_train_logits})
                    loss = handle.loss
                    if handle.was_replay:
                        self._last_train_logits = handle.aux.get("logits")
                else:
                    handle = None
                    loss = self._loss_with_hook(batch)
                if traced:
                    forward_end = time.perf_counter()
                self.optimizer.zero_grad()
                if handle is not None:
                    handle.backward()
                else:
                    loss.backward()
                if self.grad_hook is not None:
                    self.grad_hook(self.model)
                if traced:
                    backward_end = time.perf_counter()
                self.optimizer.step()
                if traced:
                    optimizer_end = time.perf_counter()
                batch_size = len(batch[-1])
                loss_meter.update(loss.item(), batch_size)
                batch_accuracy = self._batch_accuracy(batch)
                if batch_accuracy is not None:
                    acc_meter.update(batch_accuracy, batch_size)
                batch_logs = {"loss": loss.item()}
                if batch_accuracy is not None:
                    batch_logs["accuracy"] = batch_accuracy
                for callback in self.callbacks:
                    callback.on_batch_end(self, batch_index, batch_logs)
                compute_end = time.perf_counter()
                stats.observe_compute(compute_end - delivered, batch_size)
                if traced:
                    self._record_step_spans(batch_index, requested, delivered,
                                            forward_end, backward_end,
                                            optimizer_end, compute_end)
                batch_index += 1
        finally:
            # A prefetching stream keeps producer threads behind its
            # iterator; closing the generator (early break, error) shuts
            # them down deterministically instead of leaking them.
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
        self._last_train_logits = None
        self.epochs_completed += 1
        self.last_epoch_pipeline_stats = stats
        self.pipeline_stats.merge(stats)
        self.metrics.counter("steps_total").inc(batch_index)
        self.metrics.counter("samples_total").inc(stats.samples)
        return {
            "loss": loss_meter.average,
            "accuracy": acc_meter.average,
            "data_stall_seconds": stats.stall_seconds,
            "data_compute_seconds": stats.compute_seconds,
            "samples_per_sec": stats.samples_per_sec,
        }

    @staticmethod
    def _record_step_spans(batch_index: int, requested: float, delivered: float,
                           forward_end: float, backward_end: float,
                           optimizer_end: float, compute_end: float) -> None:
        """Emit one ``step`` span and its phase children from loop timestamps.

        ``forward`` covers the loss forward pass plus any loss hook;
        ``backward`` covers zero_grad, backprop and the grad hook;
        ``accounting`` is the meters/callbacks tail — recorded explicitly so
        the children account for the step end to end.
        """
        _tracing.record_span("step", requested, compute_end, cat="train",
                             batch=batch_index)
        _tracing.record_span("data_wait", requested, delivered, cat="train",
                             parent="step")
        _tracing.record_span("forward", delivered, forward_end, cat="train",
                             parent="step")
        _tracing.record_span("backward", forward_end, backward_end, cat="train",
                             parent="step")
        _tracing.record_span("optimizer", backward_end, optimizer_end,
                             cat="train", parent="step")
        _tracing.record_span("accounting", optimizer_end, compute_end,
                             cat="train", parent="step")

    def _batch_accuracy(self, batch) -> Optional[float]:
        """Running top-1 accuracy from the training logits, when they apply.

        Only the default loss path records logits, and only plain
        ``(N, C)`` classification batches are scored — custom losses (MLM,
        distillation) and non-integer targets report no train accuracy.
        """
        logits = self._last_train_logits
        if logits is None or logits.data.ndim != 2:
            return None
        labels = np.asarray(batch[-1])
        if labels.ndim != 1 or len(labels) != len(logits.data) \
                or not np.issubdtype(labels.dtype, np.integer):
            return None
        return top_k_accuracy(logits.data, labels, k=1)

    @no_grad()
    def evaluate(self, loader: Optional[BatchStream] = None) -> Dict[str, float]:
        # Under no_grad the engine builds no graph nodes at all (and conv
        # layers reuse their geometry-keyed im2col buffers), so evaluation is
        # a pure-forward fast path.
        loader = loader or self.val_loader
        if loader is None:
            return {}
        self.model.eval()
        loss_meter = AverageMeter()
        all_logits, all_labels = [], []
        with _tracing.span("eval", cat="train"):
            for batch in loader:
                logits = self.forward_fn(self.model, batch)
                labels = batch[-1]
                loss = F.softmax_cross_entropy(logits, labels)
                loss_meter.update(loss.item(), len(labels))
                all_logits.append(logits.data)
                all_labels.append(labels)
        logits = np.concatenate(all_logits)
        labels = np.concatenate(all_labels)
        top5_k = min(5, logits.shape[1])
        return {
            "loss": loss_meter.average,
            "accuracy": top_k_accuracy(logits, labels, k=1),
            "top5": top_k_accuracy(logits, labels, k=top5_k),
        }

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #
    def fit(self, epochs: int, evaluate_every: int = 1, verbose: bool = False) -> List[EpochRecord]:
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for epoch in range(epochs):
            start = time.perf_counter()
            with _tracing.span("train_epoch", cat="train", epoch=epoch):
                train_stats = self.train_epoch()
            elapsed = time.perf_counter() - start
            self.total_train_seconds += elapsed

            val_stats: Dict[str, float] = {}
            if self.val_loader is not None and (epoch + 1) % evaluate_every == 0:
                val_stats = self.evaluate()
                for callback in self.callbacks:
                    callback.on_evaluate_end(self, val_stats)

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_stats["loss"],
                train_accuracy=train_stats["accuracy"],
                val_loss=val_stats.get("loss"),
                val_accuracy=val_stats.get("accuracy"),
                val_top5=val_stats.get("top5"),
                lr=self.optimizer.lr,
                epoch_seconds=elapsed,
                num_parameters=self.model.num_parameters(),
                extra={
                    "data_stall_seconds": train_stats.get("data_stall_seconds", 0.0),
                    "data_compute_seconds": train_stats.get("data_compute_seconds", 0.0),
                    "samples_per_sec": train_stats.get("samples_per_sec", 0.0),
                },
            )
            self.history.append(record)
            if verbose:
                logger.info(
                    "epoch %d loss=%.4f val_acc=%s lr=%.4g params=%d "
                    "stall=%.3fs compute=%.3fs (%.1f samples/s)",
                    epoch, record.train_loss,
                    f"{record.val_accuracy:.4f}" if record.val_accuracy is not None else "n/a",
                    record.lr, record.num_parameters,
                    record.extra["data_stall_seconds"],
                    record.extra["data_compute_seconds"],
                    record.extra["samples_per_sec"],
                )

            logs = {"train_loss": record.train_loss, **{f"val_{k}": v for k, v in val_stats.items()}}
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, logs)
            if self.scheduler is not None:
                self.scheduler.step()
        for callback in self.callbacks:
            callback.on_train_end(self)
        return self.history

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def best_val_accuracy(self) -> float:
        accs = [r.val_accuracy for r in self.history if r.val_accuracy is not None]
        return max(accs) if accs else float("nan")

    def final_val_accuracy(self) -> float:
        accs = [r.val_accuracy for r in self.history if r.val_accuracy is not None]
        return accs[-1] if accs else float("nan")

    def add_grad_hook(self, hook: Callable[[nn.Module], None]) -> None:
        """Compose ``hook`` after any grad hook already installed.

        Callbacks that install gradient hooks at runtime (LC's L-step pull,
        EB-Train's mask enforcement, Cuttlefish's Frobenius decay) must not
        clobber a hook the method contributed through the lifecycle.
        Adding the same hook twice is a no-op, so callbacks firing again on a
        resumed ``fit`` don't stack duplicate copies.
        """
        if hook in self._added_grad_hooks:
            return
        self._added_grad_hooks.append(hook)
        existing = self.grad_hook
        if existing is None:
            self.grad_hook = hook
            return

        def chained(model: nn.Module) -> None:
            existing(model)
            hook(model)

        self.grad_hook = chained

    def rebuild_optimizer_params(self) -> None:
        """Point the optimizer at the model's *current* parameters.

        Called after a structural change (factorization, pruning reset) so
        that stale parameters are dropped and new ones are tracked.
        """
        self.optimizer.set_parameters(self.model.parameters())
