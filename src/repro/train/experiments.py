"""Shared experiment harness used by the examples and the benchmark suite.

Every comparison table in the paper has the same shape: a task (dataset), an
architecture, and a set of methods (full-rank, Pufferfish, SI&FD, IMP,
XNOR-Net, LC, GraSP, EB-Train, Cuttlefish) each reported as

    (# params, validation accuracy, end-to-end time)

``run_vision_method`` runs one (task, model, method) cell at the configured
compute budget and returns an :class:`ExperimentRow`.

Scale split
-----------
Training runs on reduced-width models over synthetic data (that is what a CPU
budget allows), but two quantities are evaluated on a *paper-scale reference
model* — the same architecture at ``width_mult = 1.0``:

* the Algorithm-2 K decision (which stacks are worth factorizing) is taken on
  the reference model under the GPU roofline, because the answer depends on
  absolute channel counts and batch size, not on the reduced widths;
* the end-to-end "Time" column is projected by applying the *rank ratios*
  found on the reduced model to the reference model and pricing full-rank and
  factorized epochs with the roofline model at the paper's batch size.

Both substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.baselines import (
    EarlyBirdConfig,
    GraSPConfig,
    IMPConfig,
    LCConfig,
    PufferfishConfig,
    SIFDConfig,
    convert_to_xnor,
    effective_parameter_fraction,
    train_early_bird,
    train_grasp,
    train_imp,
    train_lc_compression,
    train_pufferfish,
    train_si_fd,
)
from repro.core import (
    CuttlefishCallback,
    CuttlefishConfig,
    CuttlefishManager,
    ProfilingResult,
    factorize_model,
    full_rank_of,
    is_low_rank,
    profile_layer_stacks,
)
from repro.data import DataLoader, make_vision_task
from repro.models import build_model
from repro.optim import SGD, build_paper_cifar_schedule
from repro.profiling import V100, DeviceSpec, predict_iteration_time
from repro.train.trainer import Trainer
from repro.utils import get_logger, get_rng, seed_everything

logger = get_logger("train.experiments")


@dataclass
class ExperimentRow:
    """One row of a paper-style comparison table."""

    method: str
    params: int
    params_fraction: float           # relative to the full-rank model
    val_accuracy: float
    wallclock_seconds: float
    projected_gpu_hours: float       # roofline-projected end-to-end time at paper scale
    speedup_vs_full_rank: float = 1.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "params": self.params,
            "params_fraction": self.params_fraction,
            "val_accuracy": self.val_accuracy,
            "wallclock_seconds": self.wallclock_seconds,
            "projected_gpu_hours": self.projected_gpu_hours,
            "speedup_vs_full_rank": self.speedup_vs_full_rank,
            **self.extra,
        }


@dataclass
class VisionExperimentConfig:
    """Compute-budget knobs shared by every method in a comparison."""

    task: str = "cifar10_small"
    model: str = "resnet18"
    width_mult: float = 0.25
    epochs: int = 8
    batch_size: int = 64
    peak_lr: float = 0.1
    warmup_epochs: int = 2
    weight_decay: float = 1e-4
    momentum: float = 0.9
    label_smoothing: float = 0.0
    max_batches_per_epoch: Optional[int] = None
    seed: int = 0
    small_input: bool = True

    # Paper-scale reference used for the K decision and the projected-time column.
    device: DeviceSpec = V100
    paper_batch_size: int = 1024
    paper_steps_per_epoch: int = 49          # 50 000 CIFAR images / batch 1024
    reference_width_mult: float = 1.0
    reference_image_size: int = 32
    reference_batch: int = 2
    use_reference_profiling: bool = True


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def _build_task(config: VisionExperimentConfig):
    train_ds, val_ds, spec = make_vision_task(config.task)
    train_loader = DataLoader(train_ds, batch_size=config.batch_size, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=config.batch_size)
    return train_loader, val_loader, spec


def _build_model(config: VisionExperimentConfig, num_classes: int,
                 width_mult: Optional[float] = None) -> nn.Module:
    kwargs = dict(num_classes=num_classes,
                  width_mult=width_mult if width_mult is not None else config.width_mult,
                  rng=get_rng(offset=config.seed + 1))
    if config.model in ("resnet18", "resnet50", "wide_resnet50_2"):
        kwargs["small_input"] = config.small_input
    return build_model(config.model, **kwargs)


def _build_optimizer(model: nn.Module, config: VisionExperimentConfig) -> SGD:
    optimizer = SGD(model.parameters(), lr=config.peak_lr, momentum=config.momentum,
                    weight_decay=config.weight_decay)
    bn_params = [
        p for module in model.modules()
        if isinstance(module, (nn.BatchNorm1d, nn.BatchNorm2d, nn.LayerNorm))
        for p in module._parameters.values() if p is not None
    ]
    optimizer.exclude_from_weight_decay(bn_params)
    return optimizer


def _reference_input(config: VisionExperimentConfig) -> np.ndarray:
    rng = get_rng(offset=777)
    size = config.reference_image_size
    return rng.standard_normal((config.reference_batch, 3, size, size)).astype(np.float32)


# Memoised reference-model profiling: keyed by everything the decision depends on.
_REFERENCE_PROFILE_CACHE: Dict[Tuple, ProfilingResult] = {}


def reference_profiling(config: VisionExperimentConfig, num_classes: int) -> Optional[ProfilingResult]:
    """Run Algorithm 2 on the paper-scale reference model (roofline, paper batch)."""
    key = (config.model, config.reference_width_mult, config.reference_image_size,
           config.paper_batch_size, config.device.name, num_classes, config.small_input)
    if key in _REFERENCE_PROFILE_CACHE:
        return _REFERENCE_PROFILE_CACHE[key]
    reference = _build_model(config, num_classes, width_mult=config.reference_width_mult)
    if not hasattr(reference, "layer_stack_paths"):
        return None
    example_input = _reference_input(config)
    labels = np.zeros(len(example_input), dtype=np.int64)
    batch_scale = config.paper_batch_size / len(example_input)
    result = profile_layer_stacks(
        reference, reference.layer_stack_paths(), (example_input, labels),
        mode="roofline", device=config.device, batch_scale=batch_scale,
    )
    _REFERENCE_PROFILE_CACHE[key] = result
    return result


def _rank_ratios_of(model: nn.Module) -> Dict[str, float]:
    """Per-path rank ratio of every factorized layer of a trained (reduced) model."""
    ratios: Dict[str, float] = {}
    for name, module in model.named_modules():
        if not name or not is_low_rank(module):
            continue
        if hasattr(module, "kernel_size"):
            full = min(module.in_channels * module.kernel_size[0] * module.kernel_size[1],
                       module.out_channels)
        else:
            full = min(module.in_features, module.out_features)
        ratios[name] = module.rank / max(full, 1)
    return ratios


def projected_training_hours(config: VisionExperimentConfig, num_classes: int,
                             rank_ratios: Optional[Dict[str, float]],
                             epochs_full: float, epochs_low: float,
                             overhead_multiplier: float = 1.0) -> float:
    """Project end-to-end GPU hours at paper scale from the roofline model.

    The reference (full-width) model is priced for the full-rank phase; a copy
    factorized at the supplied per-layer rank ratios is priced for the
    low-rank phase.  ``overhead_multiplier`` models methods that repeat
    training (IMP) or add per-iteration work (XNOR binarisation).
    """
    example_input = _reference_input(config)
    batch_scale = config.paper_batch_size / len(example_input)
    reference = _build_model(config, num_classes, width_mult=config.reference_width_mult)
    full_time = predict_iteration_time(reference, example_input, device=config.device,
                                       batch_scale=batch_scale)
    low_time = full_time
    if rank_ratios:
        ranks = {}
        for path, ratio in rank_ratios.items():
            try:
                module = reference.get_submodule(path)
            except KeyError:
                continue
            ranks[path] = max(1, int(round(full_rank_of(module) * ratio)))
        factorize_model(reference, ranks)
        low_time = predict_iteration_time(reference, example_input, device=config.device,
                                          batch_scale=batch_scale)
    seconds = config.paper_steps_per_epoch * (epochs_full * full_time + epochs_low * low_time)
    return overhead_multiplier * seconds / 3600.0


# --------------------------------------------------------------------------- #
# Methods
# --------------------------------------------------------------------------- #
def run_vision_method(method: str, config: Optional[VisionExperimentConfig] = None,
                      **method_kwargs) -> ExperimentRow:
    """Run one method on one vision task and return its comparison-table row.

    ``method`` is one of ``full_rank``, ``cuttlefish``, ``pufferfish``,
    ``si_fd``, ``imp``, ``xnor``, ``lc``, ``grasp``, ``early_bird``.
    """
    config = config or VisionExperimentConfig()
    seed_everything(config.seed)
    train_loader, val_loader, spec = _build_task(config)
    model = _build_model(config, spec.num_classes)
    full_rank_params = model.num_parameters()
    common = dict(max_batches_per_epoch=config.max_batches_per_epoch)
    epochs_full, epochs_low = float(config.epochs), 0.0
    extra: Dict[str, float] = {}
    overhead = 1.0

    optimizer = _build_optimizer(model, config)
    scheduler = build_paper_cifar_schedule(optimizer, config.epochs, config.peak_lr,
                                           start_lr=config.peak_lr / 8,
                                           warmup_epochs=config.warmup_epochs)

    if method == "full_rank":
        trainer = Trainer(model, optimizer, train_loader, val_loader, scheduler=scheduler,
                          label_smoothing=config.label_smoothing, **common)
        trainer.fit(config.epochs)
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "cuttlefish":
        cf_config = method_kwargs.pop("cuttlefish_config", None) or CuttlefishConfig(
            min_full_rank_epochs=2,
            max_full_rank_epochs=max(config.epochs // 2, 2),
            profile_mode="none",
        )
        manager = CuttlefishManager(model, config=cf_config)
        if config.use_reference_profiling:
            reference_result = reference_profiling(config, spec.num_classes)
            if reference_result is not None:
                manager.apply_profiling_result(reference_result)
        callback = CuttlefishCallback(manager)
        trainer = Trainer(model, optimizer, train_loader, val_loader, scheduler=scheduler,
                          callbacks=[callback], label_smoothing=config.label_smoothing, **common)
        trainer.fit(config.epochs)
        report = manager.report
        epochs_full = float(report.switch_epoch or config.epochs)
        epochs_low = config.epochs - epochs_full
        extra = {"switch_epoch": float(report.switch_epoch or -1), "k_hat": float(report.k_hat or -1),
                 "compression": report.compression_ratio}
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "pufferfish":
        pf_config = method_kwargs.pop("pufferfish_config", None) or PufferfishConfig(
            full_rank_epochs=max(config.epochs // 2, 1), rank_ratio=0.25)
        trainer, report = train_pufferfish(model, optimizer, train_loader, val_loader,
                                           epochs=config.epochs, config=pf_config,
                                           scheduler=scheduler,
                                           label_smoothing=config.label_smoothing, **common)
        epochs_full = float(report.switch_epoch or config.epochs)
        epochs_low = config.epochs - epochs_full
        extra = {"switch_epoch": float(report.switch_epoch or -1), "compression": report.compression_ratio}
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "si_fd":
        sf_config = method_kwargs.pop("si_fd_config", None) or SIFDConfig(rank_ratio=0.2)
        trainer, report = train_si_fd(model, optimizer, train_loader, val_loader,
                                      epochs=config.epochs, config=sf_config,
                                      scheduler=scheduler, **common)
        epochs_full, epochs_low = 0.0, float(config.epochs)
        extra = {"compression": report.compression_ratio}
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "lc":
        lc_config = method_kwargs.pop("lc_config", None) or LCConfig()
        trainer, report = train_lc_compression(model, optimizer, train_loader, val_loader,
                                               epochs=config.epochs, config=lc_config,
                                               scheduler=scheduler, **common)
        extra = {"compression": report.compression_ratio, "c_steps": float(report.c_steps)}
        # LC's alternating optimisation adds an SVD of every layer each epoch and
        # the quadratic-penalty term each iteration: far slower end to end.
        overhead = 8.0
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "imp":
        imp_config = method_kwargs.pop("imp_config", None) or IMPConfig(
            rounds=2, epochs_per_round=max(config.epochs // 2, 1))
        def optimizer_factory(m):
            return _build_optimizer(m, config)
        model, report = train_imp(model, optimizer_factory, train_loader, val_loader,
                                  config=imp_config,
                                  max_batches_per_epoch=config.max_batches_per_epoch)
        overhead = float(imp_config.rounds)
        extra = {"sparsity": report.final_sparsity, "rounds": float(imp_config.rounds)}
        accuracy = report.val_accuracy_per_round[-1]
        wallclock = report.total_seconds
        params = report.effective_parameters

    elif method == "xnor":
        first_conv = "conv1" if hasattr(model, "conv1") else None
        skip = [p for p in [first_conv, "fc", "classifier", "head"] if p]
        convert_to_xnor(model, skip_paths=skip)
        optimizer = _build_optimizer(model, config)
        trainer = Trainer(model, optimizer, train_loader, val_loader, scheduler=None, **common)
        trainer.fit(config.epochs)
        extra = {"effective_bits_fraction": effective_parameter_fraction()}
        # The paper's FP32 simulation of binarisation re-binarises weights and
        # activations every iteration, ~3-4× slower than dense training.
        overhead = 3.5
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = model.num_parameters()

    elif method == "grasp":
        gr_config = method_kwargs.pop("grasp_config", None) or GraSPConfig(sparsity=0.5)
        trainer, report = train_grasp(model, optimizer, train_loader, val_loader,
                                      epochs=config.epochs, config=gr_config,
                                      scheduler=scheduler, **common)
        extra = {"sparsity": report.sparsity}
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = report.remaining_parameters

    elif method == "early_bird":
        eb_config = method_kwargs.pop("early_bird_config", None) or EarlyBirdConfig()
        trainer, report = train_early_bird(model, optimizer, train_loader, val_loader,
                                           epochs=config.epochs, config=eb_config,
                                           scheduler=scheduler, **common)
        extra = {"channel_sparsity": report.channel_sparsity,
                 "ticket_epoch": float(report.ticket_epoch or -1)}
        # Structured channel pruning speeds up the post-ticket epochs roughly
        # quadratically in the kept-channel fraction.
        if report.ticket_epoch is not None:
            kept = 1.0 - report.channel_sparsity
            post = config.epochs - report.ticket_epoch
            epochs_full = float(report.ticket_epoch) + post * kept * kept
            epochs_low = 0.0
        accuracy = trainer.final_val_accuracy()
        wallclock = trainer.total_train_seconds
        params = report.effective_parameters or model.num_parameters()

    else:
        raise KeyError(f"unknown method {method!r}")

    rank_ratios = _rank_ratios_of(model) if method in ("cuttlefish", "pufferfish", "si_fd", "lc") else None
    projected = projected_training_hours(config, spec.num_classes, rank_ratios,
                                         epochs_full, epochs_low, overhead_multiplier=overhead)
    full_rank_projected = projected_training_hours(config, spec.num_classes, None,
                                                   float(config.epochs), 0.0)
    params_fraction = effective_parameter_fraction() if method == "xnor" else params / full_rank_params
    return ExperimentRow(
        method=method,
        params=params,
        params_fraction=params_fraction,
        val_accuracy=accuracy,
        wallclock_seconds=wallclock,
        projected_gpu_hours=projected,
        speedup_vs_full_rank=full_rank_projected / max(projected, 1e-12),
        extra=extra,
    )


def format_rows(rows, float_digits: int = 4) -> str:
    """Plain-text table of experiment rows (printed by the benchmark harnesses)."""
    header = ["method", "params", "params%", "val_acc", "cpu_s", "proj_gpu_h", "speedup"]
    lines = ["  ".join(f"{h:>12}" for h in header)]
    for row in rows:
        lines.append("  ".join([
            f"{row.method:>12}",
            f"{row.params:>12d}",
            f"{100 * row.params_fraction:>11.1f}%",
            f"{row.val_accuracy:>12.4f}",
            f"{row.wallclock_seconds:>12.1f}",
            f"{row.projected_gpu_hours:>12.3f}",
            f"{row.speedup_vs_full_rank:>12.2f}",
        ]))
    return "\n".join(lines)
