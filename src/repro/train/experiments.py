"""Shared experiment harness used by the examples and the benchmark suite.

Every comparison table in the paper has the same shape: a task (dataset), an
architecture, and a set of methods (full-rank, Pufferfish, SI&FD, IMP,
XNOR-Net, LC, GraSP, EB-Train, Cuttlefish) each reported as

    (# params, validation accuracy, end-to-end time)

``run_experiment`` runs one (task, model, method) cell at the configured
compute budget and returns an :class:`ExperimentRow`.  The method is built by
name from the unified registry (``repro.train.methods``) — there is no
per-method dispatch here; each registered :class:`~repro.train.methods.Method`
contributes its transforms, callbacks and hooks through the shared lifecycle,
and the projection/reporting logic below is composed exactly once.
``run_vision_method`` is the legacy spelling, kept as a thin wrapper.

Scale split
-----------
Training runs on reduced-width models over synthetic data (that is what a CPU
budget allows), but two quantities are evaluated on a *paper-scale reference
model* — the same architecture at ``width_mult = 1.0``:

* the Algorithm-2 K decision (which stacks are worth factorizing) is taken on
  the reference model under the GPU roofline, because the answer depends on
  absolute channel counts and batch size, not on the reduced widths;
* the end-to-end "Time" column is projected by applying the *rank ratios*
  found on the reduced model to the reference model and pricing full-rank and
  factorized epochs with the roofline model at the paper's batch size.

Both substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.core import (
    ProfilingResult,
    factorize_model,
    full_rank_of,
    profile_layer_stacks,
)
from repro.data import DataLoader, build_loaders, build_replica_loaders, make_vision_task
from repro.models import build_model
from repro.optim import SGD, build_paper_cifar_schedule
from repro.profiling import V100, DeviceSpec, predict_iteration_time
from repro.train.methods import ExperimentContext, build_method
from repro.train.trainer import Trainer
from repro.utils import get_logger, get_rng, seed_everything

logger = get_logger("train.experiments")


@dataclass
class ExperimentRow:
    """One row of a paper-style comparison table."""

    method: str
    params: int
    params_fraction: float           # relative to the full-rank model
    val_accuracy: float
    wallclock_seconds: float
    projected_gpu_hours: float       # roofline-projected end-to-end time at paper scale
    speedup_vs_full_rank: float = 1.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "params": self.params,
            "params_fraction": self.params_fraction,
            "val_accuracy": self.val_accuracy,
            "wallclock_seconds": self.wallclock_seconds,
            "projected_gpu_hours": self.projected_gpu_hours,
            "speedup_vs_full_rank": self.speedup_vs_full_rank,
            **self.extra,
        }


@dataclass
class VisionExperimentConfig:
    """Compute-budget knobs shared by every method in a comparison."""

    task: str = "cifar10_small"
    model: str = "resnet18"
    width_mult: float = 0.25
    epochs: int = 8
    batch_size: int = 64
    peak_lr: float = 0.1
    warmup_epochs: int = 2
    weight_decay: float = 1e-4
    momentum: float = 0.9
    label_smoothing: float = 0.0
    max_batches_per_epoch: Optional[int] = None
    seed: int = 0
    small_input: bool = True

    # Input pipeline.  ``legacy`` is the seed-faithful per-sample DataLoader;
    # ``pipeline`` is the vectorized streaming loader (counter-based
    # augmentation RNG), optionally prefetched on background producer
    # threads; ``auto`` resolves to ``pipeline`` when ``prefetch_depth > 0``
    # and ``legacy`` otherwise.  The two families differ in shuffle-stream
    # and augmentation bits, so rows are only comparable within one family
    # (an explicit ``legacy`` with prefetch_depth > 0 raises rather than
    # silently switching families); within the pipeline family results are
    # bit-identical at every prefetch depth/worker count.
    loader: str = "auto"
    prefetch_depth: int = 0
    loader_workers: int = 1
    reuse_collate_buffers: bool = False

    # Data-parallel training (repro.distributed).  ``world_size > 1`` runs N
    # replica workers over ShardedSampler shards with a deterministic
    # gradient all-reduce; it *requires* the pipeline loader family (shards
    # are epoch-keyed sampler slices).  ``dp_mode`` picks the drive:
    # "thread" (workers overlap only inside GIL-releasing BLAS kernels) or
    # "process" (forked workers + shared-memory gradient exchange — true
    # multi-core scaling, bit-identical to thread mode).  ``dp_lr_scaling``
    # applies the Goyal linear-scaling rule: peak lr × world_size, warming up
    # from the single-replica lr (the effective batch is
    # ``world_size × batch_size``).
    world_size: int = 1
    dp_mode: str = "thread"
    dp_lr_scaling: bool = True

    def uses_pipeline_loader(self) -> bool:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.dp_mode not in ("thread", "process"):
            raise ValueError(
                f"dp_mode must be 'thread' or 'process', got {self.dp_mode!r}")
        if self.loader == "pipeline":
            return True
        if self.loader == "auto":
            return (self.prefetch_depth > 0 or self.world_size > 1
                    or self.dp_mode == "process")
        if self.loader == "legacy":
            if self.prefetch_depth > 0:
                raise ValueError(
                    "prefetching requires the pipeline loader: got "
                    f"loader='legacy' with prefetch_depth={self.prefetch_depth} "
                    "(use loader='pipeline' or 'auto')")
            if self.world_size > 1 or self.dp_mode == "process":
                raise ValueError(
                    "data-parallel training requires the pipeline loader: got "
                    f"loader='legacy' with world_size={self.world_size}, "
                    f"dp_mode={self.dp_mode!r} (use loader='pipeline' or 'auto')")
            return False
        raise ValueError(f"unknown loader {self.loader!r}; use 'auto', 'legacy' or 'pipeline'")

    def effective_peak_lr(self) -> float:
        """Goyal linear-scaling rule: peak lr × world_size when enabled."""
        if self.world_size > 1 and self.dp_lr_scaling:
            return self.peak_lr * self.world_size
        return self.peak_lr

    # Paper-scale reference used for the K decision and the projected-time column.
    device: DeviceSpec = V100
    paper_batch_size: int = 1024
    paper_steps_per_epoch: int = 49          # 50 000 CIFAR images / batch 1024
    reference_width_mult: float = 1.0
    reference_image_size: int = 32
    reference_batch: int = 2
    use_reference_profiling: bool = True
    profile_rank_ratio: float = 0.25         # ρ̄ used by the Algorithm-2 probe
    profile_speedup_threshold: float = 1.5   # υ


@dataclass
class ExperimentSpec:
    """One (method, budget) cell of a comparison table.

    ``method_kwargs`` are passed to the method's constructor; unknown keys
    raise ``ValueError`` (see :func:`repro.train.methods.build_method`).
    """

    method: str
    config: Optional[VisionExperimentConfig] = None
    method_kwargs: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def _build_task(config: VisionExperimentConfig):
    """Build (train_loader, val_loader, task_spec, replica_loaders).

    ``replica_loaders`` is ``None`` except under data-parallel training
    (``world_size > 1``), where it holds one ShardedSampler-backed pipeline
    loader per rank; ``train_loader`` then stays the *global* (unsharded)
    pipeline loader so non-rank-aware consumers see the whole dataset.
    """
    train_ds, val_ds, spec = make_vision_task(config.task)
    replica_loaders = None
    if config.uses_pipeline_loader():
        train_loader, val_loader = build_loaders(
            train_ds, val_ds, config.batch_size,
            prefetch_depth=config.prefetch_depth,
            workers=config.loader_workers,
            reuse_buffers=config.reuse_collate_buffers,
        )
        if config.world_size > 1:
            replica_loaders = build_replica_loaders(
                train_ds, config.batch_size, config.world_size,
                prefetch_depth=config.prefetch_depth,
                workers=config.loader_workers,
                reuse_buffers=config.reuse_collate_buffers,
            )
    else:
        train_loader = DataLoader(train_ds, batch_size=config.batch_size, shuffle=True)
        val_loader = DataLoader(val_ds, batch_size=config.batch_size)
    return train_loader, val_loader, spec, replica_loaders


def _build_model(config: VisionExperimentConfig, num_classes: int,
                 width_mult: Optional[float] = None) -> nn.Module:
    kwargs = dict(num_classes=num_classes,
                  width_mult=width_mult if width_mult is not None else config.width_mult,
                  rng=get_rng(offset=config.seed + 1))
    if config.model in ("resnet18", "resnet50", "wide_resnet50_2"):
        kwargs["small_input"] = config.small_input
    return build_model(config.model, **kwargs)


def _build_optimizer(model: nn.Module, config: VisionExperimentConfig) -> SGD:
    optimizer = SGD(model.parameters(), lr=config.peak_lr, momentum=config.momentum,
                    weight_decay=config.weight_decay)
    bn_params = [
        p for module in model.modules()
        if isinstance(module, (nn.BatchNorm1d, nn.BatchNorm2d, nn.LayerNorm))
        for p in module._parameters.values() if p is not None
    ]
    optimizer.exclude_from_weight_decay(bn_params)
    return optimizer


def _build_scheduler(optimizer: SGD, config: VisionExperimentConfig):
    peak_lr = config.effective_peak_lr()
    if peak_lr != config.peak_lr:
        # Goyal warmup: start from the *single-replica* lr and ramp linearly
        # to the world_size-scaled peak over the warmup epochs.
        start_lr = config.peak_lr
    else:
        start_lr = config.peak_lr / 8
    return build_paper_cifar_schedule(optimizer, config.epochs, peak_lr,
                                      start_lr=start_lr,
                                      warmup_epochs=config.warmup_epochs)


def _reference_input(config: VisionExperimentConfig) -> np.ndarray:
    rng = get_rng(offset=777)
    size = config.reference_image_size
    return rng.standard_normal((config.reference_batch, 3, size, size)).astype(np.float32)


# Memoised reference-model profiling: keyed by everything the decision depends on.
_REFERENCE_PROFILE_CACHE: Dict[Tuple, ProfilingResult] = {}


def reference_profiling(config: VisionExperimentConfig, num_classes: int) -> Optional[ProfilingResult]:
    """Run Algorithm 2 on the paper-scale reference model (roofline, paper batch)."""
    key = (config.model, config.reference_width_mult, config.reference_image_size,
           config.paper_batch_size, config.reference_batch, config.device.name,
           num_classes, config.small_input,
           config.profile_rank_ratio, config.profile_speedup_threshold)
    if key in _REFERENCE_PROFILE_CACHE:
        return _REFERENCE_PROFILE_CACHE[key]
    reference = _build_model(config, num_classes, width_mult=config.reference_width_mult)
    if not hasattr(reference, "layer_stack_paths"):
        return None
    example_input = _reference_input(config)
    labels = np.zeros(len(example_input), dtype=np.int64)
    batch_scale = config.paper_batch_size / len(example_input)
    result = profile_layer_stacks(
        reference, reference.layer_stack_paths(), (example_input, labels),
        rank_ratio=config.profile_rank_ratio,
        speedup_threshold=config.profile_speedup_threshold,
        mode="roofline", device=config.device, batch_scale=batch_scale,
    )
    _REFERENCE_PROFILE_CACHE[key] = result
    return result


def projected_training_hours(config: VisionExperimentConfig, num_classes: int,
                             rank_ratios: Optional[Dict[str, float]],
                             epochs_full: float, epochs_low: float,
                             overhead_multiplier: float = 1.0) -> float:
    """Project end-to-end GPU hours at paper scale from the roofline model.

    The reference (full-width) model is priced for the full-rank phase; a copy
    factorized at the supplied per-layer rank ratios is priced for the
    low-rank phase.  ``overhead_multiplier`` models methods that repeat
    training (IMP) or add per-iteration work (XNOR binarisation).
    """
    example_input = _reference_input(config)
    batch_scale = config.paper_batch_size / len(example_input)
    reference = _build_model(config, num_classes, width_mult=config.reference_width_mult)
    full_time = predict_iteration_time(reference, example_input, device=config.device,
                                       batch_scale=batch_scale)
    low_time = full_time
    if rank_ratios:
        ranks = {}
        for path, ratio in rank_ratios.items():
            try:
                module = reference.get_submodule(path)
            except KeyError:
                continue
            ranks[path] = max(1, int(round(full_rank_of(module) * ratio)))
        factorize_model(reference, ranks)
        low_time = predict_iteration_time(reference, example_input, device=config.device,
                                          batch_scale=batch_scale)
    seconds = config.paper_steps_per_epoch * (epochs_full * full_time + epochs_low * low_time)
    return overhead_multiplier * seconds / 3600.0


# --------------------------------------------------------------------------- #
# The generic experiment runner
# --------------------------------------------------------------------------- #
def run_experiment(spec: ExperimentSpec, return_context: bool = False):
    """Run one registered method on one vision task; return its table row.

    The lifecycle is identical for every method (see
    :class:`repro.train.methods.Method`): build → prepare → optimizer/
    scheduler → configure → trainer → execute → finalize, after which the
    paper-scale roofline projection prices the reported time column.

    With ``return_context=True`` the return value is ``(row, context)`` —
    the context carries the trained ``context.model``, which is what the CLI
    ``train --export`` / ``--save-checkpoint`` paths hand to the serving
    exporter.
    """
    config = spec.config or VisionExperimentConfig()
    # Fail fast — before any training — on unknown names or misspelled kwargs.
    method = build_method(spec.method, **spec.method_kwargs)

    seed_everything(config.seed)
    train_loader, val_loader, task_spec, replica_loaders = _build_task(config)
    model = _build_model(config, task_spec.num_classes)
    context = ExperimentContext(
        config=config,
        task_spec=task_spec,
        train_loader=train_loader,
        val_loader=val_loader,
        full_rank_params=model.num_parameters(),
        optimizer_factory=lambda m: _build_optimizer(m, config),
        scheduler_factory=lambda opt: _build_scheduler(opt, config),
    )
    if config.use_reference_profiling:
        context.reference_profiler = lambda: reference_profiling(config, task_spec.num_classes)

    context.model = method.prepare(model, context)
    context.optimizer = context.optimizer_factory(context.model)
    context.scheduler = context.scheduler_factory(context.optimizer) if method.uses_scheduler else None
    method.configure(context)
    trainer_kwargs = dict(
        scheduler=context.scheduler,
        callbacks=method.callbacks(),
        loss_hook=method.loss_hook(),
        grad_hook=method.grad_hook(),
        label_smoothing=config.label_smoothing if method.uses_label_smoothing else 0.0,
        max_batches_per_epoch=config.max_batches_per_epoch,
    )
    if config.world_size > 1 or config.dp_mode == "process":
        from repro.distributed import DataParallelTrainer

        context.trainer = DataParallelTrainer(
            context.model, context.optimizer, train_loader, val_loader,
            world_size=config.world_size, mode=config.dp_mode,
            replica_loaders=replica_loaders,
            **trainer_kwargs,
        )
    else:
        context.trainer = Trainer(
            context.model, context.optimizer, train_loader, val_loader,
            **trainer_kwargs,
        )
    try:
        method.execute(context)
        result = method.finalize(context)
    finally:
        # Process-mode trainers hold OS resources (forked workers + a
        # shared-memory segment); release them even when training fails.
        release = getattr(context.trainer, "shutdown", None)
        if release is not None:
            release()

    projected = projected_training_hours(config, task_spec.num_classes, result.rank_ratios,
                                         result.epochs_full, result.epochs_low,
                                         overhead_multiplier=result.overhead_multiplier)
    full_rank_projected = projected_training_hours(config, task_spec.num_classes, None,
                                                   float(config.epochs), 0.0)
    params_fraction = (result.params_fraction if result.params_fraction is not None
                       else result.params / max(context.full_rank_params, 1))
    row = ExperimentRow(
        method=spec.method,
        params=result.params,
        params_fraction=params_fraction,
        val_accuracy=result.accuracy,
        wallclock_seconds=result.wallclock_seconds,
        projected_gpu_hours=projected,
        speedup_vs_full_rank=full_rank_projected / max(projected, 1e-12),
        extra=result.extra,
    )
    if return_context:
        return row, context
    return row


def run_vision_method(method: str, config: Optional[VisionExperimentConfig] = None,
                      **method_kwargs) -> ExperimentRow:
    """Legacy entry point: ``run_experiment`` with positional spelling.

    ``method`` is any name in :func:`repro.train.methods.available_methods`.
    Unknown method names raise ``KeyError``; unknown ``method_kwargs`` raise
    ``ValueError`` naming the offending keys.
    """
    return run_experiment(ExperimentSpec(method=method, config=config,
                                         method_kwargs=method_kwargs))


def format_rows(rows, float_digits: int = 4) -> str:
    """Plain-text table of experiment rows (printed by the benchmark harnesses)."""
    header = ["method", "params", "params%", "val_acc", "cpu_s", "proj_gpu_h", "speedup"]
    lines = ["  ".join(f"{h:>12}" for h in header)]
    for row in rows:
        lines.append("  ".join([
            f"{row.method:>12}",
            f"{row.params:>12d}",
            f"{100 * row.params_fraction:>11.1f}%",
            f"{row.val_accuracy:>12.4f}",
            f"{row.wallclock_seconds:>12.1f}",
            f"{row.projected_gpu_hours:>12.3f}",
            f"{row.speedup_vs_full_rank:>12.2f}",
        ]))
    return "\n".join(lines)
