"""Training loops, metrics and experiment utilities.

``repro.train.experiments`` depends on :mod:`repro.core` and
:mod:`repro.baselines`, which themselves import the trainer from this
package; to keep those imports acyclic the experiment helpers are loaded
lazily on first attribute access.
"""

from repro.train.metrics import (
    AverageMeter,
    accuracy,
    classification_metric,
    f1_score,
    matthews_corrcoef,
    mlm_loss,
    spearman_correlation,
    top_k_accuracy,
)
from repro.train.methods import (
    ExperimentContext,
    Method,
    MethodResult,
    available_methods,
    build_method,
    low_rank_ratios,
    method_descriptions,
    register_method,
)
from repro.train.trainer import Callback, EpochRecord, Trainer, default_forward_fn, default_loss_fn

_LAZY_EXPERIMENT_EXPORTS = {
    "ExperimentRow",
    "ExperimentSpec",
    "VisionExperimentConfig",
    "format_rows",
    "run_experiment",
    "run_vision_method",
    "reference_profiling",
    "projected_training_hours",
}

__all__ = [
    "ExperimentContext",
    "Method",
    "MethodResult",
    "available_methods",
    "build_method",
    "low_rank_ratios",
    "method_descriptions",
    "register_method",
    "AverageMeter",
    "accuracy",
    "classification_metric",
    "f1_score",
    "matthews_corrcoef",
    "mlm_loss",
    "spearman_correlation",
    "top_k_accuracy",
    "Callback",
    "EpochRecord",
    "Trainer",
    "default_forward_fn",
    "default_loss_fn",
] + sorted(_LAZY_EXPERIMENT_EXPORTS)


def __getattr__(name):
    if name in _LAZY_EXPERIMENT_EXPORTS:
        from repro.train import experiments
        return getattr(experiments, name)
    raise AttributeError(f"module 'repro.train' has no attribute {name!r}")
