"""Evaluation metrics used across the paper's experiments.

Vision tasks report top-1/top-5 accuracy; GLUE tasks report accuracy, F1
(QQP/MRPC), Spearman correlation (STS-B) or Matthews correlation (CoLA);
BERT pre-training reports masked-language-model loss.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np
from scipy import stats


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose true label is within the top-k predictions."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("expected logits of shape (N, C)")
    k = min(k, logits.shape[1])
    top_k = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(top_k == targets[:, None], axis=1)))


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    return top_k_accuracy(logits, targets, k=1)


def f1_score(predictions: np.ndarray, targets: np.ndarray, positive_class: int = 1) -> float:
    """Binary F1 score, used for QQP and MRPC.

    Degenerate inputs are well-defined: with no true positives (including a
    batch with no positive predictions, no positive targets, or no samples at
    all) both precision and recall are 0/0 — the score is defined as 0.0.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.size == 0 or targets.size == 0:
        return 0.0
    tp = float(np.sum((predictions == positive_class) & (targets == positive_class)))
    fp = float(np.sum((predictions == positive_class) & (targets != positive_class)))
    fn = float(np.sum((predictions != positive_class) & (targets == positive_class)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def matthews_corrcoef(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Matthews correlation coefficient, used for CoLA.

    Single-class targets or predictions (and empty batches) zero the
    denominator — the 0/0 case is defined as 0.0, matching sklearn.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.size == 0 or targets.size == 0:
        return 0.0
    tp = float(np.sum((predictions == 1) & (targets == 1)))
    tn = float(np.sum((predictions == 0) & (targets == 0)))
    fp = float(np.sum((predictions == 1) & (targets == 0)))
    fn = float(np.sum((predictions == 0) & (targets == 1)))
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0:
        return 0.0
    return (tp * tn - fp * fn) / denom


def spearman_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank correlation, used for STS-B.

    Constant (zero-variance) arrays and empty batches have no defined rank
    correlation (0/0 inside the formula) — both return 0.0 instead of NaN.
    """
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.size == 0 or targets.size == 0:
        return 0.0
    if np.allclose(predictions, predictions[0]) or np.allclose(targets, targets[0]):
        return 0.0
    rho, _ = stats.spearmanr(predictions, targets)
    return float(rho) if np.isfinite(rho) else 0.0


def classification_metric(name: str, logits: np.ndarray, targets: np.ndarray) -> float:
    """Dispatch a GLUE-style metric by name."""
    if name == "accuracy":
        return accuracy(logits, targets)
    predictions = np.argmax(logits, axis=1) if logits.ndim == 2 else logits
    if name == "f1":
        return f1_score(predictions, targets)
    if name == "matthews":
        return matthews_corrcoef(predictions, targets)
    if name == "spearman":
        return spearman_correlation(logits.reshape(-1), targets)
    raise KeyError(f"unknown metric {name!r}")


def mlm_loss(logits: np.ndarray, labels: np.ndarray, ignore_index: int = -100) -> float:
    """Mean cross-entropy over masked positions only (BERT pre-training metric)."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)
    valid = flat_labels != ignore_index
    if not valid.any():
        return 0.0
    selected = flat_logits[valid]
    shifted = selected - selected.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return float(-log_probs[np.arange(len(selected)), flat_labels[valid]].mean())


class AverageMeter:
    """Running average over mini-batches (loss, accuracy, time)."""

    def __init__(self):
        self.total = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.total += float(value) * n
        self.count += n

    @property
    def average(self) -> float:
        """Running mean; 0.0 before the first ``update`` (never 0/0)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def avg(self) -> float:
        """Torch-style alias for :attr:`average` (same empty-meter semantics)."""
        return self.average

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
