"""Neural-network layers and containers (the ``torch.nn`` replacement)."""

from repro.nn.module import (
    Buffer,
    Identity,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    StateDictReport,
)
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.attention import MultiHeadAttention
from repro.nn.fuse import apply_fused_activations, fuse_linear_activations, fused_activation_map
from repro.nn import init

__all__ = [
    "Buffer",
    "Identity",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "StateDictReport",
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MultiHeadAttention",
    "apply_fused_activations",
    "fuse_linear_activations",
    "fused_activation_map",
    "init",
]
