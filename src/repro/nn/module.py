"""Module/Parameter system mirroring the subset of ``torch.nn`` used here.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
supports recursive traversal (``parameters``, ``named_modules``), train/eval
mode switching, ``state_dict``/``load_state_dict`` and in-place child
replacement — the latter is what lets Cuttlefish swap a full-rank layer for
its factorized counterpart mid-training.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.tensor import Tensor


class StateDictReport(NamedTuple):
    """What :meth:`Module.load_state_dict` could not match up.

    ``missing_keys`` exist on the module but were absent from the supplied
    state; ``unexpected_keys`` were supplied but have no destination.  Both
    are empty after a clean load.
    """

    missing_keys: List[str]
    unexpected_keys: List[str]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a :class:`Module`."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Buffer(Tensor):
    """A persistent, non-trainable tensor (e.g. BatchNorm running statistics)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=False)


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Attribute plumbing
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        params = self.__dict__.get("_parameters")
        buffers = self.__dict__.get("_buffers")
        modules = self.__dict__.get("_modules")
        if isinstance(value, Parameter):
            target = params
        elif isinstance(value, Buffer):
            target = buffers
        elif isinstance(value, Module):
            target = modules
        else:
            target = None
        # Drop the name from registries it no longer belongs to, but keep the
        # insertion position when overwriting within the same registry (so
        # replacing a child of a Sequential preserves execution order).
        for registry in (params, buffers, modules):
            if registry is not None and registry is not target and name in registry:
                del registry[name]
        if target is not None:
            target[name] = value
        object.__setattr__(self, name, value)

    def __delattr__(self, name: str) -> None:
        for registry in (self._parameters, self._buffers, self._modules):
            registry.pop(name, None)
        object.__delattr__(self, name)

    def register_buffer(self, name: str, value: Union[Buffer, np.ndarray, Tensor]) -> None:
        if not isinstance(value, Buffer):
            value = Buffer(value.data if isinstance(value, Tensor) else value)
        setattr(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    def set_child(self, name: str, module: "Module") -> None:
        """Replace a direct child module by attribute name (supports list indices)."""
        if name.isdigit() and hasattr(self, "_replace_index"):
            self._replace_index(int(name), module)
        else:
            setattr(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Buffer]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}{name}."
            yield from module.named_modules(prefix=child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def get_submodule(self, path: str) -> "Module":
        module: Module = self
        if not path:
            return module
        for part in path.split("."):
            module = module._modules[part]
        return module

    def set_submodule(self, path: str, new_module: "Module") -> None:
        """Replace the module at dotted ``path`` with ``new_module``."""
        parts = path.split(".")
        parent = self.get_submodule(".".join(parts[:-1])) if len(parts) > 1 else self
        parent.set_child(parts[-1], new_module)

    def apply(self, fn) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    # ------------------------------------------------------------------ #
    # Mode and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters in the module tree."""
        total = 0
        for param in self.parameters():
            if trainable_only and not param.requires_grad:
                continue
            total += param.size
        return total

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> StateDictReport:
        """Copy ``state`` into this module's parameters and buffers.

        Returns a :class:`StateDictReport` naming the keys that could not be
        matched, so ``strict=False`` callers can inspect what was skipped
        instead of having mismatches silently ignored.  With ``strict=True``
        any mismatch raises instead.  Shape mismatches always raise.
        """
        own: Dict[str, Tensor] = dict(self.named_parameters())
        own.update(dict(self.named_buffers()))
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, tensor in own.items():
            if name in state:
                if tensor.data.shape != np.asarray(state[name]).shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {tensor.data.shape} vs {np.asarray(state[name]).shape}"
                    )
                tensor.data = np.asarray(state[name], dtype=tensor.data.dtype).copy()
        return StateDictReport(sorted(missing), sorted(unexpected))

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def _replace_index(self, index: int, module: Module) -> None:
        key = list(self._modules.keys())[index] if index < len(self._modules) else str(index)
        setattr(self, key, module)

    def set_child(self, name: str, module: Module) -> None:
        if name in self._modules:
            setattr(self, name, module)
        else:
            super().set_child(name, module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """List container whose elements are registered child modules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def set_child(self, name: str, module: Module) -> None:
        if name in self._modules:
            setattr(self, name, module)
        else:
            super().set_child(name, module)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not callable
        raise RuntimeError("ModuleList is a container and cannot be called")


class Identity(Module):
    """No-op module; useful as a placeholder when layers are removed."""

    def forward(self, x):
        return x
