"""Weight initialisation schemes.

Includes the standard Kaiming/Xavier initialisers used by the full-rank
architectures and the *spectral initialisation* of Khodak et al. (2020) used
by the SI&FD baseline, where a factorized pair (U, Vᵀ) is initialised from the
truncated SVD of a conventionally-initialised full-rank weight.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import DEFAULT_DTYPE
from repro.utils import get_rng


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (out, in, kh, kw) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape)) // max(shape[0], 1)
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He-normal initialisation appropriate for ReLU networks."""
    rng = rng or get_rng()
    fan_in, _ = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or get_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def truncated_normal(
    shape: Tuple[int, ...], std: float = 0.02, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Normal samples clipped to ±2 std, as used for transformer embeddings."""
    rng = rng or get_rng()
    samples = rng.standard_normal(shape) * std
    return np.clip(samples, -2 * std, 2 * std).astype(DEFAULT_DTYPE)


def spectral_init(
    full_shape: Tuple[int, int],
    rank: int,
    rng: Optional[np.random.Generator] = None,
    base_init=kaiming_normal,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spectral initialisation of a factorized pair (Khodak et al., 2020).

    A full-rank matrix of ``full_shape = (m, n)`` is drawn from ``base_init``,
    its rank-``rank`` truncated SVD ``W ≈ U Σ Vᵀ`` is computed and the factors
    ``U Σ^{1/2}`` (shape ``(m, rank)``) and ``Σ^{1/2} Vᵀ`` (shape ``(rank, n)``)
    are returned.  This approximates the behaviour of the base initialiser when
    the factors are multiplied back together.
    """
    m, n = full_shape
    rank = int(min(rank, m, n))
    full = base_init((m, n), rng=rng).astype(np.float64)
    u, s, vt = np.linalg.svd(full, full_matrices=False)
    root = np.sqrt(s[:rank])
    u_factor = (u[:, :rank] * root[None, :]).astype(DEFAULT_DTYPE)
    v_factor = (root[:, None] * vt[:rank, :]).astype(DEFAULT_DTYPE)
    return u_factor, v_factor
