"""Standard neural-network layers: Linear, Conv2d, pooling, activations, dropout.

These are the full-rank building blocks of the paper's architectures.  Their
factorized (low-rank) counterparts live in :mod:`repro.core.low_rank_layers`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init as init_mod
from repro.nn.module import Buffer, Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.utils import get_rng

IntPair = Union[int, Tuple[int, int]]


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with ``W`` of shape ``(out, in)``.

    ``activation`` (``None``, ``"relu"`` or ``"gelu"``) folds the following
    nonlinearity into the same graph node via the fused
    :func:`repro.tensor.functional.linear_act` kernel — used by
    :func:`repro.nn.fuse_linear_activations` to collapse Linear→activation
    pairs on the hot path.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        activation: Optional[str] = None,
    ):
        super().__init__()
        if activation not in (None, "relu", "gelu"):
            raise ValueError(f"unsupported fused activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        rng = rng or get_rng()
        self.weight = Parameter(init_mod.kaiming_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(init_mod.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.activation is not None:
            return F.linear_act(x, self.weight, self.bias, activation=self.activation)
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        extra = f", activation={self.activation!r}" if self.activation else ""
        return f"in_features={self.in_features}, out_features={self.out_features}{extra}"


class Conv2d(Module):
    """2-D convolution over NCHW inputs, weight shape ``(out, in, kh, kw)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        rng = rng or get_rng()
        self.weight = Parameter(init_mod.kaiming_normal((out_channels, in_channels, kh, kw), rng=rng))
        self.bias = Parameter(init_mod.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0], -1))


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: IntPair = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng or get_rng(offset=9_001)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = rng or get_rng()
        self.weight = Parameter(init_mod.truncated_normal((num_embeddings, embedding_dim), rng=rng))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        return self.weight[token_ids]

    def extra_repr(self) -> str:
        return f"num_embeddings={self.num_embeddings}, embedding_dim={self.embedding_dim}"


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init_mod.ones((num_features,)))
        self.bias = Parameter(init_mod.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            out, batch_mean, batch_var = F.batch_norm2d_train(x, self.weight, self.bias, self.eps)
            cap = F._active_capture()
            if cap is not None:
                cap.register_stat_hook(self._update_running_stats, batch_mean, batch_var)
            self._update_running_stats(batch_mean, batch_var)
            return out
        mean = Tensor(self.running_mean.data.reshape(1, -1, 1, 1))
        var = Tensor(self.running_var.data.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        gamma = self.weight.reshape((1, -1, 1, 1))
        beta = self.bias.reshape((1, -1, 1, 1))
        return x_hat * gamma + beta

    def _update_running_stats(self, batch_mean: np.ndarray, batch_var: np.ndarray) -> None:
        momentum = self.momentum
        self.running_mean.data = (
            (1 - momentum) * self.running_mean.data + momentum * batch_mean.reshape(-1)
        )
        self.running_var.data = (
            (1 - momentum) * self.running_var.data + momentum * batch_var.reshape(-1)
        )

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}"


class BatchNorm1d(Module):
    """Batch normalisation over feature dimension of (N, C) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init_mod.ones((num_features,)))
        self.bias = Parameter(init_mod.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            cap = F._active_capture()
            if cap is not None:
                cap.register_stat_hook(self._update_running_stats, mean.data, var.data)
            self._update_running_stats(mean.data, var.data)
        else:
            mean = Tensor(self.running_mean.data.reshape(1, -1))
            var = Tensor(self.running_var.data.reshape(1, -1))
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        return x_hat * self.weight + self.bias

    def _update_running_stats(self, batch_mean: np.ndarray, batch_var: np.ndarray) -> None:
        momentum = self.momentum
        self.running_mean.data = (
            (1 - momentum) * self.running_mean.data + momentum * batch_mean.reshape(-1)
        )
        self.running_var.data = (
            (1 - momentum) * self.running_var.data + momentum * batch_var.reshape(-1)
        )

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}"


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init_mod.ones((normalized_shape,)))
        self.bias = Parameter(init_mod.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        return x_hat * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"normalized_shape={self.normalized_shape}"
