"""Graph-level fusion pass: collapse Linear → activation pairs into one node.

The paper's MLP-style blocks (VGG classifiers, the intro MLP, ResMLP/DeiT
feed-forwards built as ``Sequential`` chains) execute a dense layer
immediately followed by a ReLU/GELU.  :func:`fuse_linear_activations` walks a
module tree and, wherever an activation module directly follows a
:class:`~repro.nn.layers.Linear` inside a :class:`~repro.nn.module.Sequential`,
folds the activation into the linear layer's fused
:func:`~repro.tensor.functional.linear_act` kernel and replaces the
activation module with :class:`~repro.nn.module.Identity`.

The transform is value-preserving (the fused kernel replicates the unfused
float-op sequence exactly) and keeps module names and parameters intact, so
``state_dict`` round-trips.  It is intended for inference/benchmark use:
apply it *before* factorization — a fused Linear that is later swapped for a
low-rank pair silently loses its folded activation, so the pass refuses to
touch layers whose activation is already set.
"""

from __future__ import annotations

from repro.nn.layers import GELU, Linear, ReLU
from repro.nn.module import Identity, Module, Sequential

_FUSABLE = {ReLU: "relu", GELU: "gelu"}


def fuse_linear_activations(model: Module) -> int:
    """Fold activation modules following a Linear into the linear's node.

    Returns the number of pairs fused.  Safe to call repeatedly.
    """
    fused = 0
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        children = list(module.named_children())
        for (_, current), (next_name, following) in zip(children, children[1:]):
            activation = _FUSABLE.get(type(following))
            if activation is None:
                continue
            if isinstance(current, Linear) and current.activation is None:
                current.activation = activation
                module.set_child(next_name, Identity())
                fused += 1
    return fused


__all__ = ["fuse_linear_activations"]
