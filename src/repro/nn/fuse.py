"""Graph-level fusion pass: collapse Linear → activation pairs into one node.

The paper's MLP-style blocks (VGG classifiers, the intro MLP, ResMLP/DeiT
feed-forwards built as ``Sequential`` chains) execute a dense layer
immediately followed by a ReLU/GELU.  :func:`fuse_linear_activations` walks a
module tree and, wherever an activation module directly follows a
:class:`~repro.nn.layers.Linear` inside a :class:`~repro.nn.module.Sequential`,
folds the activation into the linear layer's fused
:func:`~repro.tensor.functional.linear_act` kernel and replaces the
activation module with :class:`~repro.nn.module.Identity`.

The transform is value-preserving (the fused kernel replicates the unfused
float-op sequence exactly) and keeps module names and parameters intact, so
``state_dict`` round-trips.  It is intended for inference/benchmark use:
apply it *before* factorization — a fused Linear that is later swapped for a
low-rank pair silently loses its folded activation, so the pass refuses to
touch layers whose activation is already set.
"""

from __future__ import annotations

from typing import Dict

from repro.nn.layers import GELU, Linear, ReLU
from repro.nn.module import Identity, Module, Sequential

_FUSABLE = {ReLU: "relu", GELU: "gelu"}
_ACTIVATION_CLASSES = {"relu": ReLU, "gelu": GELU}


def fuse_linear_activations(model: Module) -> int:
    """Fold activation modules following a Linear into the linear's node.

    Returns the number of pairs fused.  Safe to call repeatedly.
    """
    fused = 0
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        children = list(module.named_children())
        for (_, current), (next_name, following) in zip(children, children[1:]):
            activation = _FUSABLE.get(type(following))
            if activation is None:
                continue
            if isinstance(current, Linear) and current.activation is None:
                current.activation = activation
                module.set_child(next_name, Identity())
                fused += 1
    return fused


def fused_activation_map(model: Module) -> Dict[str, str]:
    """Module path → folded activation name, for every fused Linear in ``model``.

    This is what a serving artifact records so the fusion state survives a
    round-trip: activations carry no parameters, so ``state_dict`` alone
    cannot distinguish a fused model from an unfused one.
    """
    return {
        path: module.activation
        for path, module in model.named_modules()
        if isinstance(module, Linear) and module.activation is not None
    }


def apply_fused_activations(model: Module, mapping: Dict[str, str]) -> None:
    """Re-apply a recorded fusion state (see :func:`fused_activation_map`).

    For each ``path → activation`` entry the named Linear gets the activation
    folded in, and — mirroring :func:`fuse_linear_activations` — the directly
    following activation module inside the parent ``Sequential`` (if it is of
    the matching type) is replaced with :class:`Identity` so the nonlinearity
    is not applied twice.
    """
    for path, activation in mapping.items():
        linear = model.get_submodule(path)
        if not isinstance(linear, Linear):
            raise TypeError(f"fused-activation path {path!r} is a "
                            f"{type(linear).__name__}, expected Linear")
        if linear.activation not in (None, activation):
            raise ValueError(f"layer {path!r} already has activation "
                             f"{linear.activation!r}, cannot fold {activation!r}")
        linear.activation = activation
        parts = path.split(".")
        parent = model.get_submodule(".".join(parts[:-1])) if len(parts) > 1 else model
        if not isinstance(parent, Sequential):
            continue
        children = list(parent.named_children())
        names = [name for name, _ in children]
        index = names.index(parts[-1])
        if index + 1 < len(children):
            next_name, following = children[index + 1]
            if isinstance(following, _ACTIVATION_CLASSES[activation]):
                parent.set_child(next_name, Identity())


__all__ = ["fuse_linear_activations", "fused_activation_map", "apply_fused_activations"]
