"""Multi-head self-attention, the attention building block for DeiT and BERT.

The projections are ordinary :class:`repro.nn.Linear` layers so that
Cuttlefish's factorization machinery can treat them exactly like any other
dense weight (the paper factorizes W_Q, W_K, W_V and optionally the output
projection W_O of every attention layer).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class MultiHeadAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Parameters
    ----------
    embed_dim:
        Model (hidden) dimension ``d``.
    num_heads:
        Number of attention heads ``p``; ``d`` must be divisible by ``p``.
    dropout:
        Dropout probability applied to the attention weights.
    """

    def __init__(self, embed_dim: int, num_heads: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        """(N, L, D) → (N, heads, L, head_dim)."""
        n, length, _ = x.shape
        return x.reshape((n, length, self.num_heads, self.head_dim)).transpose((0, 2, 1, 3))

    def _merge_heads(self, x: Tensor) -> Tensor:
        """(N, heads, L, head_dim) → (N, L, D)."""
        n, heads, length, head_dim = x.shape
        return x.transpose((0, 2, 1, 3)).reshape((n, length, heads * head_dim))

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        """Self-attention over a sequence ``x`` of shape (N, L, D).

        ``attn_mask`` is an optional boolean array of shape (N, L) where True
        marks valid tokens; padded positions receive zero attention weight.
        """
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        bias = None
        if attn_mask is not None:
            mask = np.asarray(attn_mask, dtype=bool)
            bias = np.where(mask[:, None, None, :], 0.0, -1e9).astype(np.float32)
        # One fused node (scores → scale → mask → softmax) on fusing backends.
        weights = F.attention_weights(q, k, scale, bias)       # (N, heads, L, L)
        weights = self.attn_dropout(weights)
        context = weights.matmul(v)                            # (N, heads, L, head_dim)
        return self.out_proj(self._merge_heads(context))

    def extra_repr(self) -> str:
        return f"embed_dim={self.embed_dim}, num_heads={self.num_heads}"
