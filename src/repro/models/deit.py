"""DeiT-style Vision Transformer.

Architecture follows DeiT (Touvron et al., 2021b) without distillation: a
convolutional patch embedding, a learnable class token and positional
embeddings, and a stack of pre-norm Transformer encoder blocks
(multi-head self-attention + MLP).  The paper factorizes the attention
projections and the MLP layers of every block but never the patch-embedding
layer (K = 1 for transformers).

``deit_base``/``deit_small``/``deit_tiny`` use the published dimensions;
``deit_micro`` is the CPU-sized variant used by tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.utils import get_rng


class TransformerEncoderBlock(nn.Module):
    """Pre-norm Transformer block: LN → MHA → residual, LN → MLP → residual."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.norm1 = nn.LayerNorm(dim)
        self.attn = nn.MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm2 = nn.LayerNorm(dim)
        self.fc1 = nn.Linear(dim, hidden, rng=rng)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden, dim, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), attn_mask=attn_mask)
        mlp_out = self.fc2(self.dropout(self.act(self.fc1(self.norm2(x)))))
        return x + mlp_out


class VisionTransformer(nn.Module):
    """DeiT-style ViT classifier over NCHW images."""

    def __init__(
        self,
        image_size: int = 32,
        patch_size: int = 4,
        in_channels: int = 3,
        num_classes: int = 10,
        embed_dim: int = 192,
        depth: int = 12,
        num_heads: int = 3,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if image_size % patch_size:
            raise ValueError(f"image_size {image_size} not divisible by patch_size {patch_size}")
        rng = rng or get_rng(offset=23)
        self.embed_dim = embed_dim
        self.patch_size = patch_size
        self.num_patches = (image_size // patch_size) ** 2
        self.patch_embed = nn.Conv2d(in_channels, embed_dim, patch_size, stride=patch_size, rng=rng)
        self.cls_token = Parameter(nn.init.truncated_normal((1, 1, embed_dim), rng=rng))
        self.pos_embed = Parameter(nn.init.truncated_normal((1, self.num_patches + 1, embed_dim), rng=rng))
        self.blocks = nn.ModuleList(
            [TransformerEncoderBlock(embed_dim, num_heads, mlp_ratio, dropout, rng=rng) for _ in range(depth)]
        )
        self.norm = nn.LayerNorm(embed_dim)
        self.head = nn.Linear(embed_dim, num_classes, rng=rng)

    def _embed(self, x: Tensor) -> Tensor:
        """Image → sequence of patch tokens with a prepended class token."""
        patches = self.patch_embed(x)                              # (N, D, H', W')
        n, d, hp, wp = patches.shape
        tokens = patches.reshape((n, d, hp * wp)).transpose((0, 2, 1))  # (N, P, D)
        cls = self.cls_token * Tensor(np.ones((n, 1, 1), dtype=np.float32))
        tokens = Tensor.concatenate([cls, tokens], axis=1)
        return tokens + self.pos_embed

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        tokens = self._embed(x)
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        cls_repr = tokens[:, 0, :]
        return self.head(cls_repr)

    # ------------------------------------------------------------------ #
    # Structure exposed to Cuttlefish
    # ------------------------------------------------------------------ #
    def factorization_candidates(self) -> List[str]:
        """All attention and MLP projections; embeddings and head are excluded.

        Following §C.2 of the paper the per-head output projection
        (``attn.out_proj``) is also excluded: at ρ = 1/2 a square (d × d)
        projection gains nothing from factorization.
        """
        candidates = []
        for name, module in self.named_modules():
            if not name or not isinstance(module, nn.Linear):
                continue
            if name == "head" or name.endswith("out_proj"):
                continue
            candidates.append(name)
        return candidates

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        """One stack per encoder block (all blocks share shapes, like the paper notes)."""
        stacks: Dict[str, List[str]] = {}
        for i, _ in enumerate(self.blocks):
            prefix = f"blocks.{i}"
            stacks[f"block{i}"] = [
                f"{prefix}.attn.q_proj", f"{prefix}.attn.k_proj", f"{prefix}.attn.v_proj",
                f"{prefix}.attn.out_proj", f"{prefix}.fc1", f"{prefix}.fc2",
            ]
        return stacks


def deit_base(image_size: int = 224, num_classes: int = 1000, **kwargs) -> VisionTransformer:
    """DeiT-base: 86.6M parameters at paper scale."""
    return VisionTransformer(image_size=image_size, patch_size=16, num_classes=num_classes,
                             embed_dim=768, depth=12, num_heads=12, **kwargs)


def deit_small(image_size: int = 224, num_classes: int = 1000, **kwargs) -> VisionTransformer:
    return VisionTransformer(image_size=image_size, patch_size=16, num_classes=num_classes,
                             embed_dim=384, depth=12, num_heads=6, **kwargs)


def deit_tiny(image_size: int = 224, num_classes: int = 1000, **kwargs) -> VisionTransformer:
    return VisionTransformer(image_size=image_size, patch_size=16, num_classes=num_classes,
                             embed_dim=192, depth=12, num_heads=3, **kwargs)


def deit_micro(image_size: int = 16, num_classes: int = 8, depth: int = 4,
               embed_dim: int = 48, num_heads: int = 4, **kwargs) -> VisionTransformer:
    """CPU-sized DeiT used for tests/benchmarks on the synthetic tasks."""
    return VisionTransformer(image_size=image_size, patch_size=4, num_classes=num_classes,
                             embed_dim=embed_dim, depth=depth, num_heads=num_heads, **kwargs)
