"""Simple multi-layer perceptron.

Used for the two-hidden-layer FC example from the paper's introduction
(the search-space cardinality argument), for unit tests, and as the smallest
model exercising the full Cuttlefish pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils import get_rng


class MLP(nn.Module):
    """Fully connected classifier with ReLU activations."""

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or get_rng(offset=43)
        self.in_features = in_features
        self.num_classes = num_classes
        dims = [in_features] + list(hidden_sizes)
        hidden_layers: List[nn.Module] = []
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            hidden_layers.append(nn.Linear(d_in, d_out, rng=rng))
            hidden_layers.append(nn.ReLU())
        self.hidden = nn.Sequential(*hidden_layers)
        self.classifier = nn.Linear(dims[-1], num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 2:
            x = x.reshape((x.shape[0], -1))
        return self.classifier(self.hidden(x))

    def factorization_candidates(self) -> List[str]:
        """All hidden linear layers except the first; classifier excluded."""
        paths = [
            f"hidden.{name}" for name, module in self.hidden.named_modules()
            if name and isinstance(module, nn.Linear)
        ]
        return paths[1:]

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        paths = [
            f"hidden.{name}" for name, module in self.hidden.named_modules()
            if name and isinstance(module, nn.Linear)
        ]
        return {f"fc{i}": [p] for i, p in enumerate(paths)}
