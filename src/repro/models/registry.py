"""Model registry: build any architecture used in the paper by name.

``build_model("resnet18", num_classes=10, width_mult=0.25)`` returns the model
plus nothing else; experiment configs (``repro.train.experiments``) choose the
width multiplier appropriate for the compute budget.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.bert import (
    BertForMaskedLM,
    BertForSequenceClassification,
    bert_base,
    bert_micro,
    bert_mini,
)
from repro.models.deit import deit_base, deit_micro, deit_small, deit_tiny
from repro.models.mlp import MLP
from repro.models.resmlp import resmlp_micro, resmlp_s24, resmlp_s36
from repro.models.resnet import resnet18, resnet50, wide_resnet50_2
from repro.models.vgg import vgg19

_REGISTRY: Dict[str, Callable] = {
    "resnet18": resnet18,
    "resnet50": resnet50,
    "wide_resnet50_2": wide_resnet50_2,
    "vgg19": vgg19,
    "deit_base": deit_base,
    "deit_small": deit_small,
    "deit_tiny": deit_tiny,
    "deit_micro": deit_micro,
    "resmlp_s36": resmlp_s36,
    "resmlp_s24": resmlp_s24,
    "resmlp_micro": resmlp_micro,
    "bert_base": bert_base,
    "bert_mini": bert_mini,
    "bert_micro": bert_micro,
    "mlp": MLP,
}


def available_models() -> list:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs):
    """Instantiate a registered architecture by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[name](**kwargs)


__all__ = ["available_models", "build_model"]
