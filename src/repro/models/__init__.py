"""Model architectures evaluated in the paper."""

from repro.models.mlp import MLP
from repro.models.resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet50, wide_resnet50_2
from repro.models.vgg import VGG19, vgg19
from repro.models.deit import VisionTransformer, deit_base, deit_micro, deit_small, deit_tiny
from repro.models.resmlp import ResMLP, resmlp_micro, resmlp_s24, resmlp_s36
from repro.models.bert import (
    BertForMaskedLM,
    BertForSequenceClassification,
    BertModel,
    bert_base,
    bert_micro,
    bert_mini,
)
from repro.models.registry import available_models, build_model

__all__ = [
    "MLP",
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "VGG19",
    "vgg19",
    "VisionTransformer",
    "deit_base",
    "deit_micro",
    "deit_small",
    "deit_tiny",
    "ResMLP",
    "resmlp_micro",
    "resmlp_s24",
    "resmlp_s36",
    "BertForMaskedLM",
    "BertForSequenceClassification",
    "BertModel",
    "bert_base",
    "bert_micro",
    "bert_mini",
    "available_models",
    "build_model",
]
