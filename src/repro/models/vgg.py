"""VGG-19-BN as used in the paper (Table 7).

The paper's VGG-19 variant keeps the 16 convolution layers of the original
network, drops the two hidden FC layers, replaces the final max-pool with an
average pool and ends in a single linear classifier — 17 learnable layers in
total.  Each convolution is followed by BatchNorm + ReLU.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils import get_rng

# Channel plan of VGG-19: numbers are conv output channels, "M" is a max-pool.
VGG19_PLAN = [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
              512, 512, 512, 512, "M", 512, 512, 512, 512, "A"]


class _PoolIfPossible(nn.Module):
    """Max-pool that becomes a no-op once the spatial extent is too small.

    Keeps the full 5-stack VGG structure usable on the reduced-resolution
    synthetic tasks (e.g. 16×16 inputs) without changing the layer inventory.
    """

    def __init__(self, kernel_size: int = 2, stride: int = 2):
        super().__init__()
        self.pool = nn.MaxPool2d(kernel_size, stride=stride)
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] < self.kernel_size or x.shape[-2] < self.kernel_size:
            return x
        return self.pool(x)


class VGG19(nn.Module):
    """VGG-19 with BatchNorm, matching the paper's 17-layer variant."""

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 rng: Optional[np.random.Generator] = None, in_channels: int = 3):
        super().__init__()
        rng = rng or get_rng(offset=19)
        self.num_classes = num_classes
        layers: List[nn.Module] = []
        channels = in_channels
        self._conv_indices: List[int] = []
        self._stack_boundaries: List[int] = []  # conv counts at each pooling boundary
        conv_count = 0
        for item in VGG19_PLAN:
            if item == "M":
                layers.append(_PoolIfPossible(2, stride=2))
                self._stack_boundaries.append(conv_count)
            elif item == "A":
                # The paper replaces the final max-pool with average pooling;
                # here global average pooling happens in ``forward`` so this is
                # only a stack boundary marker.
                self._stack_boundaries.append(conv_count)
            else:
                out_channels = max(int(round(item * width_mult)), 4)
                self._conv_indices.append(len(layers))
                layers.append(nn.Conv2d(channels, out_channels, 3, padding=1, bias=False, rng=rng))
                layers.append(nn.BatchNorm2d(out_channels))
                layers.append(nn.ReLU())
                channels = out_channels
                conv_count += 1
        self.features = nn.Sequential(*layers)
        self.classifier = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.features(x)
        out = out.mean(axis=(2, 3))
        return self.classifier(out)

    # ------------------------------------------------------------------ #
    # Structure exposed to Cuttlefish
    # ------------------------------------------------------------------ #
    def conv_layer_paths(self) -> List[str]:
        """Module paths of the 16 convolution layers, in network order."""
        return [f"features.{idx}" for idx in self._conv_indices]

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        """Group convolution layers into the five pooling-delimited stacks."""
        paths = self.conv_layer_paths()
        stacks: Dict[str, List[str]] = {}
        start = 0
        for stack_id, end in enumerate(self._stack_boundaries, start=1):
            stacks[f"stack{stack_id}"] = paths[start:end]
            start = end
        return stacks

    def factorization_candidates(self) -> List[str]:
        """All conv layers except the very first; the classifier is never factorized."""
        return self.conv_layer_paths()[1:]


def vgg19(num_classes: int = 10, width_mult: float = 1.0,
          rng: Optional[np.random.Generator] = None, in_channels: int = 3) -> VGG19:
    return VGG19(num_classes=num_classes, width_mult=width_mult, rng=rng, in_channels=in_channels)
