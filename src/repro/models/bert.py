"""BERT-style Transformer encoder for GLUE fine-tuning and MLM pre-training.

The model mirrors the structure the paper fine-tunes: token + position
embeddings, a stack of post-norm Transformer encoder blocks, a pooler over the
[CLS] token, and task heads (sequence classification / regression, or a
masked-language-model head).  ``bert_base`` reproduces the published
dimensions; ``bert_micro``/``bert_mini`` are CPU-sized variants.

Per §C.2 of the paper, during factorized fine-tuning the attention
projections are factorized while the feed-forward (fc1/fc2) layers are frozen
(mirroring the LoRA-style treatment the authors adopt); this behaviour is
implemented by the GLUE experiment configs, not hard-coded here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils import get_rng


class BertEncoderBlock(nn.Module):
    """Post-norm Transformer encoder block (BERT layout)."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.attn = nn.MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.norm1 = nn.LayerNorm(dim)
        self.fc1 = nn.Linear(dim, hidden, rng=rng)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden, dim, rng=rng)
        self.norm2 = nn.LayerNorm(dim)
        self.dropout = nn.Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        x = self.norm1(x + self.attn(x, attn_mask=attn_mask))
        mlp_out = self.fc2(self.dropout(self.act(self.fc1(x))))
        return self.norm2(x + mlp_out)


class BertModel(nn.Module):
    """BERT encoder backbone producing per-token hidden states."""

    def __init__(
        self,
        vocab_size: int = 256,
        max_seq_len: int = 64,
        embed_dim: int = 128,
        depth: int = 4,
        num_heads: int = 4,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or get_rng(offset=31)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.max_seq_len = max_seq_len
        self.token_embed = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.pos_embed = nn.Embedding(max_seq_len, embed_dim, rng=rng)
        self.embed_norm = nn.LayerNorm(embed_dim)
        self.blocks = nn.ModuleList(
            [BertEncoderBlock(embed_dim, num_heads, mlp_ratio, dropout, rng=rng) for _ in range(depth)]
        )

    def forward(self, token_ids: np.ndarray, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        token_ids = np.asarray(token_ids)
        seq_len = token_ids.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_seq_len {self.max_seq_len}")
        positions = np.arange(seq_len)[None, :].repeat(token_ids.shape[0], axis=0)
        hidden = self.token_embed(token_ids) + self.pos_embed(positions)
        hidden = self.embed_norm(hidden)
        for block in self.blocks:
            hidden = block(hidden, attn_mask=attn_mask)
        return hidden

    def factorization_candidates(self) -> List[str]:
        """Attention projections of every block; embeddings excluded."""
        candidates = []
        for name, module in self.named_modules():
            if not name or not isinstance(module, nn.Linear):
                continue
            if ".attn." in name:
                candidates.append(name)
        return candidates

    def feed_forward_paths(self) -> List[str]:
        """fc1/fc2 paths — frozen (not updated) during factorized fine-tuning (§C.2)."""
        paths = []
        for name, module in self.named_modules():
            if name and isinstance(module, nn.Linear) and (name.endswith("fc1") or name.endswith("fc2")):
                paths.append(name)
        return paths

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        stacks: Dict[str, List[str]] = {}
        for i, _ in enumerate(self.blocks):
            prefix = f"blocks.{i}"
            stacks[f"block{i}"] = [
                f"{prefix}.attn.q_proj", f"{prefix}.attn.k_proj",
                f"{prefix}.attn.v_proj", f"{prefix}.attn.out_proj",
                f"{prefix}.fc1", f"{prefix}.fc2",
            ]
        return stacks


class BertForSequenceClassification(nn.Module):
    """BERT backbone + [CLS] pooler + classification/regression head."""

    def __init__(self, backbone: BertModel, num_classes: int, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or get_rng(offset=37)
        self.backbone = backbone
        self.num_classes = num_classes
        self.pooler = nn.Linear(backbone.embed_dim, backbone.embed_dim, rng=rng)
        self.dropout = nn.Dropout(dropout, rng=rng)
        self.classifier = nn.Linear(backbone.embed_dim, num_classes, rng=rng)

    def forward(self, token_ids: np.ndarray, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        hidden = self.backbone(token_ids, attn_mask=attn_mask)
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return self.classifier(self.dropout(pooled))

    def factorization_candidates(self) -> List[str]:
        return [f"backbone.{p}" for p in self.backbone.factorization_candidates()]

    def feed_forward_paths(self) -> List[str]:
        return [f"backbone.{p}" for p in self.backbone.feed_forward_paths()]

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        return {
            name: [f"backbone.{p}" for p in paths]
            for name, paths in self.backbone.layer_stack_paths().items()
        }


class BertForMaskedLM(nn.Module):
    """BERT backbone + masked-language-model head (used for Table 17)."""

    def __init__(self, backbone: BertModel, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or get_rng(offset=41)
        self.backbone = backbone
        self.transform = nn.Linear(backbone.embed_dim, backbone.embed_dim, rng=rng)
        self.norm = nn.LayerNorm(backbone.embed_dim)
        self.decoder = nn.Linear(backbone.embed_dim, backbone.vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        hidden = self.backbone(token_ids, attn_mask=attn_mask)
        hidden = self.norm(self.transform(hidden).gelu())
        return self.decoder(hidden)

    def factorization_candidates(self) -> List[str]:
        candidates = [f"backbone.{p}" for p in self.backbone.factorization_candidates()]
        candidates += [f"backbone.{p}" for p in self.backbone.feed_forward_paths()]
        return candidates

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        return {
            name: [f"backbone.{p}" for p in paths]
            for name, paths in self.backbone.layer_stack_paths().items()
        }


def bert_base(vocab_size: int = 30522, max_seq_len: int = 128, **kwargs) -> BertModel:
    """BERT-base dimensions (108M parameters at paper scale)."""
    return BertModel(vocab_size=vocab_size, max_seq_len=max_seq_len,
                     embed_dim=768, depth=12, num_heads=12, **kwargs)


def bert_mini(vocab_size: int = 256, max_seq_len: int = 64, **kwargs) -> BertModel:
    return BertModel(vocab_size=vocab_size, max_seq_len=max_seq_len,
                     embed_dim=128, depth=4, num_heads=4, **kwargs)


def bert_micro(vocab_size: int = 200, max_seq_len: int = 32, **kwargs) -> BertModel:
    """CPU-sized BERT used for the synthetic GLUE/MLM experiments."""
    return BertModel(vocab_size=vocab_size, max_seq_len=max_seq_len,
                     embed_dim=64, depth=3, num_heads=4, **kwargs)
