"""ResNet family: ResNet-18, ResNet-50 and WideResNet-50-2.

The layer-stack structure (four stacks with strides 1, 2, 2, 2, BasicBlock for
ResNet-18, Bottleneck for ResNet-50/WideResNet) follows the paper's Table 6.
Two knobs adapt the architectures to a CPU budget without changing their
structure:

* ``width_mult`` scales every channel count (1.0 reproduces the paper widths);
* ``small_input`` selects the CIFAR stem (3×3 stride-1 first conv, no max-pool)
  versus the ImageNet stem (7×7 stride-2 conv + max-pool), exactly as the
  paper does for CIFAR vs ImageNet training.

``layer_stack_paths()`` exposes the module paths of each convolution stack so
Cuttlefish's K-profiling (Algorithm 2) can factorize one stack at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils import get_rng


def _scaled(channels: int, width_mult: float) -> int:
    return max(int(round(channels * width_mult)), 4)


class BasicBlock(nn.Module):
    """Two 3×3 convolutions with an identity (or 1×1 projection) shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels * self.expansion:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels * self.expansion, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels * self.expansion),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + identity).relu()


class Bottleneck(nn.Module):
    """1×1 reduce → 3×3 → 1×1 expand bottleneck used by ResNet-50/WideResNet."""

    expansion = 4

    def __init__(self, in_channels: int, mid_channels: int, stride: int = 1,
                 out_channels: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        out_channels = out_channels if out_channels is not None else mid_channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, mid_channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(mid_channels)
        self.conv2 = nn.Conv2d(mid_channels, mid_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(mid_channels)
        self.conv3 = nn.Conv2d(mid_channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + identity).relu()


class ResNet(nn.Module):
    """Generic ResNet over NCHW images."""

    def __init__(
        self,
        block,
        layers: Sequence[int],
        num_classes: int = 10,
        width_mult: float = 1.0,
        small_input: bool = True,
        base_width: int = 64,
        width_per_group: int = 64,
        rng: Optional[np.random.Generator] = None,
        in_channels: int = 3,
    ):
        super().__init__()
        rng = rng or get_rng(offset=17)
        self.block = block
        self.num_classes = num_classes
        widths = [_scaled(base_width * (2 ** i), width_mult) for i in range(4)]
        mid_scale = width_per_group / 64.0

        if small_input:
            self.conv1 = nn.Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
            self.maxpool = nn.Identity()
        else:
            self.conv1 = nn.Conv2d(in_channels, widths[0], 7, stride=2, padding=3, bias=False, rng=rng)
            self.maxpool = nn.MaxPool2d(3, stride=2, padding=1)
        self.bn1 = nn.BatchNorm2d(widths[0])

        in_ch = widths[0]
        stacks = []
        for stack_index, (width, blocks) in enumerate(zip(widths, layers)):
            stride = 1 if stack_index == 0 else 2
            modules = []
            for block_index in range(blocks):
                block_stride = stride if block_index == 0 else 1
                if block is Bottleneck:
                    mid = _scaled(width * mid_scale, 1.0)
                    out_ch = width * Bottleneck.expansion
                    modules.append(Bottleneck(in_ch, mid, stride=block_stride, out_channels=out_ch, rng=rng))
                    in_ch = out_ch
                else:
                    modules.append(BasicBlock(in_ch, width, stride=block_stride, rng=rng))
                    in_ch = width
            stacks.append(nn.Sequential(*modules))
        self.layer1, self.layer2, self.layer3, self.layer4 = stacks

        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.fc = nn.Linear(in_ch, num_classes, rng=rng)
        self._final_channels = in_ch

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.bn1(self.conv1(x)).relu()
        out = self.maxpool(out)
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.layer4(out)
        out = self.avgpool(out)
        out = out.reshape((out.shape[0], -1))
        return self.fc(out)

    # ------------------------------------------------------------------ #
    # Structure exposed to Cuttlefish
    # ------------------------------------------------------------------ #
    def layer_stack_paths(self) -> Dict[str, List[str]]:
        """Map stack name → module paths of the conv/linear layers inside it."""
        stacks: Dict[str, List[str]] = {}
        for stack_name in ("layer1", "layer2", "layer3", "layer4"):
            stack = getattr(self, stack_name)
            paths = [
                f"{stack_name}.{name}" for name, module in stack.named_modules()
                if isinstance(module, (nn.Conv2d, nn.Linear)) and name
            ]
            stacks[stack_name] = paths
        return stacks

    def factorization_candidates(self) -> List[str]:
        """Ordered module paths of all layers eligible for factorization.

        Follows the paper's convention: the very first convolution and the
        final classification layer are never factorized.
        """
        candidates = []
        for name, module in self.named_modules():
            if not name or name in ("conv1", "fc"):
                continue
            if isinstance(module, (nn.Conv2d, nn.Linear)):
                candidates.append(name)
        return candidates


def resnet18(num_classes: int = 10, width_mult: float = 1.0, small_input: bool = True,
             rng: Optional[np.random.Generator] = None, in_channels: int = 3) -> ResNet:
    """ResNet-18 (BasicBlock ×[2,2,2,2]); paper's CIFAR/SVHN workhorse."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes=num_classes, width_mult=width_mult,
                  small_input=small_input, rng=rng, in_channels=in_channels)


def resnet50(num_classes: int = 1000, width_mult: float = 1.0, small_input: bool = False,
             rng: Optional[np.random.Generator] = None, in_channels: int = 3) -> ResNet:
    """ResNet-50 (Bottleneck ×[3,4,6,3]); paper's ImageNet baseline."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes=num_classes, width_mult=width_mult,
                  small_input=small_input, rng=rng, in_channels=in_channels)


def wide_resnet50_2(num_classes: int = 1000, width_mult: float = 1.0, small_input: bool = False,
                    rng: Optional[np.random.Generator] = None, in_channels: int = 3) -> ResNet:
    """WideResNet-50-2: ResNet-50 with doubled bottleneck width."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes=num_classes, width_mult=width_mult,
                  small_input=small_input, width_per_group=128, rng=rng, in_channels=in_channels)
