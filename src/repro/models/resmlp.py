"""ResMLP (Touvron et al., 2021a).

Each block applies (i) an affine pre-norm, a *cross-patch* linear layer acting
on the token dimension and a residual, then (ii) an affine pre-norm, a
*cross-channel* two-layer MLP and a residual.  ResMLP-S36 at paper scale has
36 blocks with embedding dimension 384; ``resmlp_micro`` is the CPU-sized
variant used by tests and benchmarks.

All linear layers except the patch embedding and the classifier head are
candidates for factorization (the paper uses K = 1, ρ = 1/2 for ResMLP).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.utils import get_rng


class Affine(nn.Module):
    """Element-wise affine transform ``x * alpha + beta`` (ResMLP's norm-free trick)."""

    def __init__(self, dim: int):
        super().__init__()
        self.alpha = Parameter(np.ones(dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return x * self.alpha + self.beta


class ResMLPBlock(nn.Module):
    """Cross-patch linear + cross-channel MLP with layer-scale residuals."""

    def __init__(self, dim: int, num_patches: int, mlp_ratio: float = 4.0,
                 init_scale: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = int(dim * mlp_ratio)
        self.norm1 = Affine(dim)
        self.token_mix = nn.Linear(num_patches, num_patches, rng=rng)
        self.scale1 = Parameter(np.full(dim, init_scale, dtype=np.float32))
        self.norm2 = Affine(dim)
        self.fc1 = nn.Linear(dim, hidden, rng=rng)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden, dim, rng=rng)
        self.scale2 = Parameter(np.full(dim, init_scale, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        # Token mixing operates across the patch dimension: (N, P, D) → transpose → linear → transpose.
        mixed = self.token_mix(self.norm1(x).transpose((0, 2, 1))).transpose((0, 2, 1))
        x = x + mixed * self.scale1
        channel = self.fc2(self.act(self.fc1(self.norm2(x))))
        return x + channel * self.scale2


class ResMLP(nn.Module):
    """ResMLP image classifier."""

    def __init__(
        self,
        image_size: int = 32,
        patch_size: int = 4,
        in_channels: int = 3,
        num_classes: int = 10,
        embed_dim: int = 384,
        depth: int = 36,
        mlp_ratio: float = 4.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if image_size % patch_size:
            raise ValueError(f"image_size {image_size} not divisible by patch_size {patch_size}")
        rng = rng or get_rng(offset=29)
        self.embed_dim = embed_dim
        self.num_patches = (image_size // patch_size) ** 2
        self.patch_embed = nn.Conv2d(in_channels, embed_dim, patch_size, stride=patch_size, rng=rng)
        self.blocks = nn.ModuleList(
            [ResMLPBlock(embed_dim, self.num_patches, mlp_ratio, rng=rng) for _ in range(depth)]
        )
        self.norm = Affine(embed_dim)
        self.head = nn.Linear(embed_dim, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        patches = self.patch_embed(x)
        n, d, hp, wp = patches.shape
        tokens = patches.reshape((n, d, hp * wp)).transpose((0, 2, 1))
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        pooled = tokens.mean(axis=1)
        return self.head(pooled)

    def factorization_candidates(self) -> List[str]:
        """All block linear layers; embedding and head excluded (K = 1)."""
        candidates = []
        for name, module in self.named_modules():
            if not name or not isinstance(module, nn.Linear):
                continue
            if name == "head":
                continue
            candidates.append(name)
        return candidates

    def layer_stack_paths(self) -> Dict[str, List[str]]:
        stacks: Dict[str, List[str]] = {}
        for i, _ in enumerate(self.blocks):
            prefix = f"blocks.{i}"
            stacks[f"block{i}"] = [f"{prefix}.token_mix", f"{prefix}.fc1", f"{prefix}.fc2"]
        return stacks


def resmlp_s36(image_size: int = 224, num_classes: int = 1000, **kwargs) -> ResMLP:
    """ResMLP-S36 at paper scale (44.7M parameters)."""
    return ResMLP(image_size=image_size, patch_size=16, num_classes=num_classes,
                  embed_dim=384, depth=36, **kwargs)


def resmlp_s24(image_size: int = 224, num_classes: int = 1000, **kwargs) -> ResMLP:
    return ResMLP(image_size=image_size, patch_size=16, num_classes=num_classes,
                  embed_dim=384, depth=24, **kwargs)


def resmlp_micro(image_size: int = 16, num_classes: int = 8, depth: int = 4,
                 embed_dim: int = 48, **kwargs) -> ResMLP:
    """CPU-sized ResMLP used for tests/benchmarks on the synthetic tasks."""
    return ResMLP(image_size=image_size, patch_size=4, num_classes=num_classes,
                  embed_dim=embed_dim, depth=depth, **kwargs)
