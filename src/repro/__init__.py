"""repro — a from-scratch reproduction of Cuttlefish (MLSys 2023).

The package is organised as:

* :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — a numpy-based
  training substrate (autograd, layers, optimizers) replacing PyTorch.
* :mod:`repro.data` — synthetic stand-ins for CIFAR/SVHN/ImageNet/GLUE.
* :mod:`repro.models` — ResNet, VGG, DeiT, ResMLP, BERT architectures.
* :mod:`repro.core` — Cuttlefish itself: stable-rank tracking, automatic
  (E, K, R) selection, factorized layers, the Cuttlefish trainer.
* :mod:`repro.baselines` — Pufferfish, SI&FD, IMP, LC compression, XNOR-Net,
  GraSP, EB-Train and distillation baselines.
* :mod:`repro.train` — generic training loops, metrics, experiment configs.
* :mod:`repro.profiling` — FLOPs/parameter counting and a roofline cost model.
"""

__version__ = "1.0.0"

from repro.tensor import Tensor, no_grad
from repro.utils import seed_everything

__all__ = ["Tensor", "no_grad", "seed_everything", "__version__"]
