"""Optimizers and learning-rate schedules."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adamw import Adam, AdamW
from repro.optim.lr_scheduler import (
    ConstantLR,
    CosineAnnealingLR,
    LinearWarmup,
    LRScheduler,
    MultiStepLR,
    WarmupMultiStepLR,
    build_paper_cifar_schedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "ConstantLR",
    "CosineAnnealingLR",
    "LinearWarmup",
    "LRScheduler",
    "MultiStepLR",
    "WarmupMultiStepLR",
    "build_paper_cifar_schedule",
]
