"""SGD with momentum and (decoupled-from-loss) L2 weight decay.

This matches the paper's vision-training recipe: SGD + momentum 0.9 +
weight decay 1e-4, with weight decay optionally disabled per parameter (the
paper disables it on BatchNorm parameters, and replaces it with Frobenius
decay on factorized layers).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.backend import get_backend


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    Parameters
    ----------
    params:
        Parameters to optimize.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty added to the gradient (``g ← g + wd * w``).
    no_decay_params:
        Optional set of parameter ids excluded from weight decay (BatchNorm
        scales/biases, factorized layers under Frobenius decay).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        no_decay_params: Optional[Set[int]] = None,
    ):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self.no_decay_params: Set[int] = set(no_decay_params or ())

    def exclude_from_weight_decay(self, params: Iterable[Parameter]) -> None:
        """Mark parameters whose gradient should not receive the L2 term."""
        self.no_decay_params.update(id(p) for p in params)

    def step(self) -> None:
        """In-place parameter update.

        Every arithmetic step mirrors the out-of-place reference update
        (``g ← g + wd·w``, ``v ← m·v + g``, ``w ← w − lr·g``) with the same
        float-op ordering, so results are bit-identical — but all temporaries
        live in persistent per-parameter scratch buffers, so step cost no
        longer scales with allocation churn.
        """
        be = get_backend()
        be.record("sgd_step")
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            state = self._get_state(p)
            scratch = state.get("scratch")
            if scratch is None:
                scratch = state["scratch"] = np.empty_like(p.data)
            if self.weight_decay and id(p) not in self.no_decay_params:
                np.multiply(p.data, self.weight_decay, out=scratch)
                scratch += grad                      # == grad + wd * w
                grad = scratch
            if self.momentum:
                velocity = state.get("velocity")
                if velocity is None:
                    velocity = state["velocity"] = np.zeros_like(p.data)
                velocity *= self.momentum
                velocity += grad                     # == momentum * v + grad
                if self.nesterov:
                    nesterov = state.get("nesterov")
                    if nesterov is None:
                        nesterov = state["nesterov"] = np.empty_like(p.data)
                    np.multiply(velocity, self.momentum, out=nesterov)
                    nesterov += grad                 # == grad + momentum * v
                    grad = nesterov
                else:
                    grad = velocity
            if grad is scratch:
                scratch *= self.lr
            else:
                np.multiply(grad, self.lr, out=scratch)
            p.data -= scratch                        # == w - lr * grad
            be.add_flops("sgd_step", 2.0 * p.data.size)
