"""Optimizer base class.

A key requirement for Cuttlefish is rebuilding optimizer state when the model
is factorized mid-training (the full-rank parameters disappear and new U/Vᵀ
parameters appear).  :meth:`Optimizer.set_parameters` supports exactly that:
it replaces the tracked parameter list and drops stale per-parameter state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a flat list of parameters and per-parameter state."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def set_parameters(self, params: Iterable[Parameter]) -> None:
        """Replace the tracked parameters (used after low-rank factorization).

        Per-parameter state (momentum buffers, Adam moments) for parameters no
        longer present is discarded; surviving parameters keep their state.
        """
        new_params = [p for p in params]
        surviving = {id(p) for p in new_params}
        self.state = {key: value for key, value in self.state.items() if key in surviving}
        self.params = new_params

    def _get_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        key = id(param)
        if key not in self.state:
            self.state[key] = {}
        return self.state[key]

    def step(self) -> None:
        raise NotImplementedError
