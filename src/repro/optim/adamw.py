"""Adam and AdamW optimizers.

AdamW (decoupled weight decay, Loshchilov & Hutter 2019) is what the paper
uses for DeiT/ResMLP training and BERT fine-tuning.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.backend import get_backend


class AdamW(Optimizer):
    """Adam with decoupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        no_decay_params: Optional[Set[int]] = None,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.no_decay_params: Set[int] = set(no_decay_params or ())
        self._step_count = 0

    def exclude_from_weight_decay(self, params: Iterable[Parameter]) -> None:
        self.no_decay_params.update(id(p) for p in params)

    def step(self) -> None:
        """In-place parameter update.

        Mirrors the out-of-place reference Adam update with the same float-op
        ordering (bit-identical results) while keeping every temporary in two
        persistent scratch buffers per parameter, so step cost no longer
        scales with allocation churn.
        """
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1 ** t
        bias_correction2 = 1.0 - self.beta2 ** t
        be = get_backend()
        be.record("adamw_step")
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            state = self._get_state(p)
            m = state.get("m")
            if m is None:
                m = state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                state["s1"] = np.empty_like(p.data)
                state["s2"] = np.empty_like(p.data)
            v, s1, s2 = state["v"], state["s1"], state["s2"]
            m *= self.beta1
            np.multiply(grad, 1 - self.beta1, out=s1)
            m += s1                                  # == beta1*m + (1-beta1)*g
            v *= self.beta2
            np.multiply(grad, 1 - self.beta2, out=s1)
            s1 *= grad
            v += s1                                  # == beta2*v + (1-beta2)*g*g
            np.divide(m, bias_correction1, out=s1)   # m_hat
            np.divide(v, bias_correction2, out=s2)   # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.divide(s1, s2, out=s1)                # update = m_hat / (sqrt(v_hat)+eps)
            if self.weight_decay and id(p) not in self.no_decay_params:
                np.multiply(p.data, self.weight_decay, out=s2)
                s1 += s2                             # == update + wd * w
            s1 *= self.lr
            p.data -= s1                             # == w - lr * update
            be.add_flops("adamw_step", 12.0 * p.data.size)


class Adam(AdamW):
    """Classical Adam: L2 coupled into the gradient, default weight_decay 0."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self._l2 = weight_decay

    def step(self) -> None:
        if self._l2:
            for p in self.params:
                if p.grad is not None:
                    state = self._get_state(p)
                    buf = state.get("l2")
                    if buf is None:
                        buf = state["l2"] = np.empty_like(p.data)
                    np.multiply(p.data, self._l2, out=buf)
                    p.grad += buf                    # == grad + l2 * w
        super().step()
