"""Adam and AdamW optimizers.

AdamW (decoupled weight decay, Loshchilov & Hutter 2019) is what the paper
uses for DeiT/ResMLP training and BERT fine-tuning.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class AdamW(Optimizer):
    """Adam with decoupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        no_decay_params: Optional[Set[int]] = None,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.no_decay_params: Set[int] = set(no_decay_params or ())
        self._step_count = 0

    def exclude_from_weight_decay(self, params: Iterable[Parameter]) -> None:
        self.no_decay_params.update(id(p) for p in params)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1 ** t
        bias_correction2 = 1.0 - self.beta2 ** t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            state = self._get_state(p)
            m = state.get("m")
            v = state.get("v")
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            state["m"], state["v"] = m, v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and id(p) not in self.no_decay_params:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


class Adam(AdamW):
    """Classical Adam: L2 coupled into the gradient, default weight_decay 0."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self._l2 = weight_decay

    def step(self) -> None:
        if self._l2:
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad + self._l2 * p.data
        super().step()
