"""Learning-rate schedules used in the paper's training recipes.

* :class:`MultiStepLR` — decay by a factor at fixed epoch milestones
  (ResNet/VGG on CIFAR, ResNet-50 on ImageNet).
* :class:`LinearWarmup` — linear scale-up over the first few epochs
  (the Goyal et al. large-minibatch recipe: 0.1 → 0.8 over 5 epochs).
* :class:`CosineAnnealingLR` — cosine decay (DeiT/ResMLP recipe).
* :class:`WarmupMultiStepLR` — composition of warm-up then multi-step decay,
  exactly the CIFAR schedule described in the paper.

Schedulers mutate ``optimizer.lr``; ``step`` is called once per epoch.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base class; sub-classes implement :meth:`get_lr`."""

    def __init__(self, optimizer: Optimizer, base_lr: float = None):
        self.optimizer = optimizer
        self.base_lr = float(base_lr if base_lr is not None else optimizer.lr)
        self.last_epoch = -1
        self.step()

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int = None) -> float:
        """Advance to the next epoch (or jump to ``epoch`` — the resume path).

        An explicit ``step(epoch=k)`` positions the scheduler at epoch ``k``;
        a following argless ``step()`` continues from ``k + 1``, so resumed
        runs and fresh runs walk the same lr sequence for every scheduler.
        """
        if epoch is None:
            self.last_epoch = self.last_epoch + 1
        else:
            epoch = int(epoch)
            if epoch < 0:
                raise ValueError(f"step(epoch=...) needs a non-negative epoch, got {epoch}")
            self.last_epoch = epoch
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr

    def scale_base_lr(self, factor: float) -> None:
        """Scale the base learning rate (used when switching to low-rank training).

        Applied mid-run this must *compose* with schedule state already
        consumed — e.g. ``MultiStepLR`` milestones that have passed keep
        their decay on top of the new base — so the current epoch's lr is
        re-derived and re-installed immediately rather than leaving the
        optimizer on a value derived from the unscaled base until the next
        ``step()``.
        """
        self.base_lr *= factor
        self.optimizer.lr = self.get_lr(max(self.last_epoch, 0))


class ConstantLR(LRScheduler):
    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class MultiStepLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1,
                 base_lr: float = None):
        self.milestones = sorted(milestones)
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class LinearWarmup(LRScheduler):
    """Linearly interpolate from ``start_lr`` to ``base_lr`` over ``warmup_epochs``.

    This is the Goyal et al. large-minibatch recipe — the schedule
    data-parallel training pairs with its ``k×`` lr scaling.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, start_lr: float,
                 base_lr: float = None):
        warmup_epochs = int(warmup_epochs)
        if warmup_epochs < 1:
            raise ValueError(
                f"LinearWarmup needs warmup_epochs >= 1, got {warmup_epochs} "
                "(use ConstantLR when no warmup is wanted)")
        self.warmup_epochs = warmup_epochs
        self.start_lr = start_lr
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        frac = epoch / self.warmup_epochs
        return self.start_lr + frac * (self.base_lr - self.start_lr)


class WarmupMultiStepLR(LRScheduler):
    """The paper's CIFAR schedule: linear warm-up then multi-step decay."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, start_lr: float,
                 milestones: Sequence[int], gamma: float = 0.1, base_lr: float = None):
        self.warmup_epochs = max(int(warmup_epochs), 1)
        self.start_lr = start_lr
        self.milestones = sorted(milestones)
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            frac = epoch / self.warmup_epochs
            return self.start_lr + frac * (self.base_lr - self.start_lr)
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0,
                 warmup_epochs: int = 0, base_lr: float = None):
        self.total_epochs = max(int(total_epochs), 1)
        self.min_lr = min_lr
        self.warmup_epochs = int(warmup_epochs)
        super().__init__(optimizer, base_lr)

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        progress = (epoch - self.warmup_epochs) / max(self.total_epochs - self.warmup_epochs, 1)
        progress = min(max(progress, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))


def build_paper_cifar_schedule(optimizer: Optimizer, total_epochs: int,
                               peak_lr: float, start_lr: float,
                               warmup_epochs: int = 5) -> WarmupMultiStepLR:
    """The exact schedule from the paper: warm up over 5 epochs, decay by 0.1 at
    50% and 75% of total epochs."""
    milestones: List[int] = [int(total_epochs * 0.5), int(total_epochs * 0.75)]
    return WarmupMultiStepLR(
        optimizer,
        warmup_epochs=warmup_epochs,
        start_lr=start_lr,
        milestones=milestones,
        base_lr=peak_lr,
    )
