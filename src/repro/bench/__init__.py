"""Unified perf-regression harness (DESIGN.md §12).

Layers:

* :mod:`repro.bench.contract`  — the versioned JSON results contract;
* :mod:`repro.bench.registry`  — ``@register_suite`` + discovery;
* :mod:`repro.bench.runner`    — warmup/iters/repeat execution + noise summary;
* :mod:`repro.bench.compare`   — noise-aware base-vs-candidate verdicts;
* :mod:`repro.bench.history`   — append-only longitudinal JSONL store;
* :mod:`repro.bench.workloads` — measurement bodies shared with the
  standalone ``benchmarks/bench_*.py`` scripts;
* :mod:`repro.bench.suites`    — the built-in throughput / pipeline /
  dataparallel / serving suites (imported lazily on first registry access);
* :mod:`repro.bench.script_utils` — shared flags + emission for the scripts.

Driven by the ``repro bench run|compare|history|list`` CLI verbs.
"""

from repro.bench.contract import (
    SCHEMA_VERSION,
    ContractError,
    MetricSpec,
    build_result,
    git_commit,
    host_fingerprint,
    load_result,
    summarize_samples,
    validate_result,
    write_result,
)
from repro.bench.registry import (
    Suite,
    SuiteBudget,
    available_suites,
    get_suite,
    register_suite,
    suite_descriptions,
)
from repro.bench.runner import RunConfig, format_result_table, run_suite
from repro.bench.compare import (
    CompareError,
    CompareReport,
    MetricVerdict,
    classify_metric,
    compare_results,
    format_markdown,
)
from repro.bench.history import (
    DEFAULT_STORE,
    append_result,
    format_history,
    read_history,
)
from repro.bench.script_utils import add_standard_flags, emit_script_result

__all__ = [
    "SCHEMA_VERSION",
    "ContractError",
    "MetricSpec",
    "build_result",
    "git_commit",
    "host_fingerprint",
    "load_result",
    "summarize_samples",
    "validate_result",
    "write_result",
    "Suite",
    "SuiteBudget",
    "available_suites",
    "get_suite",
    "register_suite",
    "suite_descriptions",
    "RunConfig",
    "format_result_table",
    "run_suite",
    "CompareError",
    "CompareReport",
    "MetricVerdict",
    "classify_metric",
    "compare_results",
    "format_markdown",
    "DEFAULT_STORE",
    "append_result",
    "format_history",
    "read_history",
    "add_standard_flags",
    "emit_script_result",
]
