"""Reusable benchmark workloads shared by registered suites and bench scripts.

Each function here performs ONE measurement of one workload and returns plain
floats; the suite layer (``repro.bench.suites``) maps them onto declared
metrics and the runner handles warmup/repeats.  The standalone
``benchmarks/bench_*.py`` scripts import the same functions for their core
measurements, so a number printed by a script and a number recorded by
``repro bench run`` come from identical code paths.

Heavy imports stay inside the functions: importing this module must not pull
in models, the serving stack or the distributed engine.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, Optional, Sequence

import numpy as np


# --------------------------------------------------------------------------- #
# Training-step throughput (bench_throughput's cell, in-process)
# --------------------------------------------------------------------------- #
def training_step_rate(
    model_name: str = "resnet18",
    *,
    width_mult: Optional[float] = 0.125,
    batch_size: int = 32,
    image_size: int = 32,
    num_classes: int = 10,
    optimizer_name: str = "sgd",
    backend: str = "numpy",
    steps: int = 4,
    warmup_steps: int = 2,
) -> Dict[str, float]:
    """Steps/sec of the full train step (forward, backward, optimizer).

    Runs under :func:`repro.tensor.use_backend` so the caller's global
    backend is restored; ``benchmarks/bench_throughput.py`` wraps this in a
    subprocess per measurement when full allocator isolation (or the
    historical seed engine) is wanted.
    """
    from repro.tensor import use_backend

    with use_backend(backend) as be:
        step = _build_train_step(model_name, width_mult, batch_size, image_size,
                                 num_classes, optimizer_name, be)
        for _ in range(max(warmup_steps, 0)):
            step()  # allocator, BLAS threads, im2col caches (and plan capture)
        start = time.perf_counter()
        final_loss = 0.0
        for _ in range(steps):
            final_loss = step()
        elapsed = time.perf_counter() - start

    return {
        "steps_per_sec": steps / elapsed if elapsed > 0 else 0.0,
        "elapsed_seconds": elapsed,
        "final_loss": final_loss,
        "steps": float(steps),
    }


def _build_train_step(model_name, width_mult, batch_size, image_size,
                      num_classes, optimizer_name, be):
    """One training-step closure for the *active* backend ``be``.

    On a plan-compiling backend the closure drives a private
    :class:`repro.compile.StepCompiler` (capture on first call, replay
    after); otherwise it is the plain eager step.  Model, optimizer and
    batch are built under fixed seeds so closures for different backends
    perform bit-identical arithmetic.
    """
    from repro.models import build_model
    from repro.tensor import functional as F
    from repro.utils import seed_everything

    seed_everything(0)
    kwargs = {"num_classes": num_classes}
    if width_mult is not None:
        kwargs["width_mult"] = width_mult
    model = build_model(model_name, **kwargs)

    if optimizer_name == "sgd":
        from repro.optim import SGD
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
    elif optimizer_name == "adamw":
        from repro.optim import AdamW
        optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.01)
    else:
        raise ValueError(f"unknown optimizer {optimizer_name!r} (use 'sgd' or 'adamw')")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch_size, 3, image_size, image_size)).astype(np.float32)
    y = rng.integers(0, num_classes, size=batch_size)

    if getattr(be, "compiled_plans", False):
        from repro.compile import StepCompiler

        compiler = StepCompiler()

        def step() -> float:
            optimizer.zero_grad()
            handle = compiler.forward(
                model, (x, y), lambda: F.cross_entropy(model(x), y))
            handle.backward()
            optimizer.step()
            return float(handle.loss.data)
    else:
        def step() -> float:
            optimizer.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            optimizer.step()
            return float(loss.data)
    return step


def training_step_pair(
    model_name: str = "resnet18",
    *,
    width_mult: Optional[float] = 0.125,
    batch_size: int = 32,
    image_size: int = 32,
    num_classes: int = 10,
    optimizer_name: str = "sgd",
    backend_a: str = "numpy-fast",
    backend_b: str = "numpy-compiled",
    steps: int = 2,
    blocks: int = 4,
    warmup_steps: int = 2,
) -> Dict[str, float]:
    """Drift-cancelling paired throughput of two backends on one cell.

    A sequential A-then-B measurement charges any slow host drift (thermal
    throttling, noisy neighbours) entirely to whichever side runs second.
    This instead alternates short timed blocks in an A-B-B-A pattern, so
    linear drift lands evenly on both sides, and aggregates each side's
    elapsed time across all blocks.  Both closures train their own model
    replica from identical seeds, so their final losses must agree exactly
    when the backends are bit-identical (reported for the caller to check).
    """
    from repro.tensor import use_backend

    sides = []
    for backend in (backend_a, backend_b):
        with use_backend(backend) as be:
            step = _build_train_step(model_name, width_mult, batch_size,
                                     image_size, num_classes, optimizer_name, be)
            for _ in range(max(warmup_steps, 0)):
                step()  # warm caches; capture + record on compiling backends
        sides.append((backend, step))

    def timed_block(side):
        backend, step = side
        with use_backend(backend):
            start = time.perf_counter()
            loss = 0.0
            for _ in range(steps):
                loss = step()
            return time.perf_counter() - start, loss

    elapsed = [0.0, 0.0]
    losses = [0.0, 0.0]
    for _ in range(max(blocks, 1)):
        for i in (0, 1, 1, 0):
            dt, losses[i] = timed_block(sides[i])
            elapsed[i] += dt
    n = 2 * max(blocks, 1) * steps
    return {
        "a_steps_per_sec": n / elapsed[0] if elapsed[0] > 0 else 0.0,
        "b_steps_per_sec": n / elapsed[1] if elapsed[1] > 0 else 0.0,
        "a_final_loss": losses[0],
        "b_final_loss": losses[1],
        "steps_per_side": float(n),
    }


# --------------------------------------------------------------------------- #
# Input-pipeline throughput (bench_pipeline's loaders)
# --------------------------------------------------------------------------- #
def build_pipeline_dataset(n: int, image_size: int = 32):
    """CIFAR-shaped synthetic dataset with the standard train transform."""
    from repro.data import ArrayDataset, standard_train_transform
    from repro.utils import get_rng

    rng = get_rng(offset=31)
    images = rng.random((n, 3, image_size, image_size), dtype=np.float64).astype(np.float32)
    labels = rng.integers(0, 10, size=n).astype(np.int64)
    return ArrayDataset(images, labels,
                        transform=standard_train_transform(image_size, crop_padding=2))


def build_pipeline_loaders(dataset, batch_size: int) -> Dict[str, object]:
    """Factories for every loader configuration the pipeline bench measures."""
    from repro.data import DataLoader, PipelineLoader, PrefetchingLoader

    def pipeline():
        return PipelineLoader(dataset, batch_size, shuffle=True)

    return {
        "legacy": lambda: DataLoader(dataset, batch_size, shuffle=True),
        "vectorized": pipeline,
        "prefetch-d2": lambda: PrefetchingLoader(pipeline(), depth=2),
        "prefetch-d4-w2": lambda: PrefetchingLoader(pipeline(), depth=4, workers=2),
    }


def drain_loader(loader, epochs: int, compute=None) -> Dict[str, float]:
    """Iterate ``epochs`` epochs; return the stall/compute split as a dict."""
    from repro.profiling import PipelineStats, instrument

    stats = PipelineStats()
    for epoch in range(epochs):
        set_epoch = getattr(loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)
        for batch in instrument(loader, stats):
            if compute is not None:
                compute(batch)
    return stats.as_dict()


def make_simulated_step(ms_target: float):
    """A GIL-releasing stand-in for one training step (~``ms_target`` ms)."""
    size = 192
    a = np.random.default_rng(0).standard_normal((size, size)).astype(np.float32)
    # Calibrate repetitions so the simulated step costs ~ms_target.
    reps, elapsed = 1, 0.0
    while True:
        start = time.perf_counter()
        for _ in range(reps):
            a @ a
        elapsed = time.perf_counter() - start
        if elapsed * 1e3 >= ms_target / 4 or reps >= 1 << 14:
            break
        reps *= 4
    reps = max(1, int(reps * ms_target / max(elapsed * 1e3, 1e-6)))

    def compute(batch):
        for _ in range(reps):
            a @ a

    return compute


def loader_throughput(
    *,
    samples: int = 2048,
    batch_size: int = 32,
    epochs: int = 3,
    image_size: int = 32,
    step_ms: float = 4.0,
    configs: Sequence[str] = ("legacy", "vectorized", "prefetch-d2", "prefetch-d4-w2"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Loader-only and compute-overlapped samples/sec per loader config."""
    from repro.utils import seed_everything

    seed_everything(0)
    dataset = build_pipeline_dataset(samples, image_size)
    factories = build_pipeline_loaders(dataset, batch_size)
    unknown = [name for name in configs if name not in factories]
    if unknown:
        raise ValueError(f"unknown loader configs {unknown}; have {sorted(factories)}")

    compute = make_simulated_step(step_ms)
    results: Dict[str, Dict[str, Dict[str, float]]] = {"loader_only": {}, "overlapped": {}}
    for name in configs:
        factory = factories[name]
        drain_loader(factory(), 1)  # warm-up epoch (allocator, caches)
        results["loader_only"][name] = drain_loader(factory(), epochs)
        results["overlapped"][name] = drain_loader(factory(), epochs, compute=compute)
    return results


# --------------------------------------------------------------------------- #
# Data-parallel training throughput (bench_dataparallel's cell)
# --------------------------------------------------------------------------- #
def build_dp_dataset(n: int, image_size: int, num_classes: int = 4):
    from repro.data import ArrayDataset
    from repro.utils import get_rng

    rng = get_rng(offset=31)
    images = rng.standard_normal((n, 3, image_size, image_size)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    return ArrayDataset(images, labels)


def build_dp_training(dataset, batch_size: int, width_mult: float, world_size: int,
                      mode: str = "thread"):
    from repro.data import PipelineLoader, build_replica_loaders
    from repro.distributed import DataParallelTrainer
    from repro.models import build_model
    from repro.optim import SGD
    from repro.utils import get_rng, seed_everything

    seed_everything(0)
    model = build_model("resnet18", num_classes=4, width_mult=width_mult,
                        small_input=True, rng=get_rng(offset=1))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    train_loader = PipelineLoader(dataset, batch_size, shuffle=True)
    replica_loaders = build_replica_loaders(dataset, batch_size, world_size)
    return DataParallelTrainer(model, optimizer, train_loader,
                               world_size=world_size, mode=mode,
                               replica_loaders=replica_loaders)


def dataparallel_throughput(dataset, *, batch_size: int, width_mult: float,
                            world_size: int, epochs: int,
                            mode: str = "thread") -> Dict[str, object]:
    """Samples/sec of data-parallel training at one world size.

    The warm-up epoch absorbs one-time costs (allocator, caches — and, in
    process mode, the fork + shared-segment setup), so the timed epochs
    measure steady-state lockstep throughput for both modes.
    """
    trainer = build_dp_training(dataset, batch_size, width_mult, world_size, mode)
    try:
        trainer.train_epoch()  # warm-up (allocator, caches, worker spawn)
        start = time.perf_counter()
        samples = 0
        last = {}
        for _ in range(epochs):
            last = trainer.train_epoch()
            samples += trainer.last_epoch_pipeline_stats.samples
        wall = time.perf_counter() - start
        stats = trainer.last_epoch_pipeline_stats
    finally:
        trainer.shutdown()
    return {
        "world_size": world_size,
        "mode": mode,
        "samples_per_sec": samples / wall if wall > 0 else 0.0,
        "wall_seconds": wall,
        "final_loss": last.get("loss"),
        "replica_stall_seconds": [
            stats.extra.get(f"replica{rank}_stall_seconds", 0.0)
            for rank in range(world_size)],
        "replica_compute_seconds": [
            stats.extra.get(f"replica{rank}_compute_seconds", 0.0)
            for rank in range(world_size)],
    }


# --------------------------------------------------------------------------- #
# Telemetry overhead (tracing enabled vs disabled on the Trainer hot loop)
# --------------------------------------------------------------------------- #
def telemetry_overhead(
    *,
    width_mult: float = 0.125,
    batch_size: int = 32,
    image_size: int = 16,
    samples: int = 128,
    num_classes: int = 4,
    steps: int = 8,
) -> Dict[str, float]:
    """Trainer steps/sec with span tracing enabled vs disabled.

    Exercises the real ``Trainer.train_epoch`` loop (the instrumented path:
    data_wait / forward / backward / optimizer spans per step); the enabled
    measurement records into an in-memory session, no file I/O in the timed
    region.  ``slowdown_ratio`` is the number the overhead budget in
    DESIGN.md §14 is written against: disabled over enabled steps/sec,
    ~1.0 when the instrumentation is free.
    """
    from repro.data import PipelineLoader
    from repro.models import build_model
    from repro.optim import SGD
    from repro.telemetry import tracing
    from repro.train.trainer import Trainer
    from repro.utils import get_rng, seed_everything

    def build() -> Trainer:
        seed_everything(0)
        model = build_model("resnet18", num_classes=num_classes,
                            width_mult=width_mult, small_input=True,
                            rng=get_rng(offset=1))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        dataset = build_dp_dataset(samples, image_size, num_classes)
        loader = PipelineLoader(dataset, batch_size, shuffle=True)
        return Trainer(model, optimizer, loader, max_batches_per_epoch=steps)

    def measure(traced: bool) -> float:
        trainer = build()
        trainer.train_epoch()  # warm-up (allocator, caches)
        if traced:
            tracing.enable("bench")
        try:
            start = time.perf_counter()
            trainer.train_epoch()
            elapsed = time.perf_counter() - start
        finally:
            if traced:
                tracing.disable()
        return steps / elapsed if elapsed > 0 else 0.0

    disabled_rate = measure(False)
    enabled_rate = measure(True)
    return {
        "disabled_steps_per_sec": disabled_rate,
        "enabled_steps_per_sec": enabled_rate,
        "slowdown_ratio": disabled_rate / max(enabled_rate, 1e-9),
    }


# --------------------------------------------------------------------------- #
# Serving throughput (bench_serving's cell, engine transport)
# --------------------------------------------------------------------------- #
def export_serving_artifact(path: str, *, width_mult: float = 0.125,
                            num_classes: int = 10, image_size: int = 32) -> str:
    """Export a dense ResNet-cell artifact for serving benchmarks."""
    from repro.models import build_model
    from repro.serve import export_artifact
    from repro.utils import get_rng, seed_everything

    seed_everything(0)
    model = build_model("resnet18", num_classes=num_classes, width_mult=width_mult)
    model.eval()
    shape = (3, image_size, image_size)
    example = get_rng(offset=123).standard_normal((8,) + shape).astype(np.float32)
    export_artifact(path, model,
                    model_spec={"name": "resnet18",
                                "kwargs": {"num_classes": num_classes,
                                           "width_mult": width_mult}},
                    input_shape=shape, example_batch=example,
                    metadata={"cell": "resnet", "variant": "dense"})
    return path


def serving_throughput(
    *,
    duration_s: float = 1.0,
    concurrency: int = 8,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    backend: Optional[str] = "numpy-fast",
    warmup_s: float = 0.25,
    artifact_path: Optional[str] = None,
) -> Dict[str, object]:
    """Closed-loop engine-transport load test: batched vs batch-1 serving."""
    from repro.serve import bench_artifact

    def run(path: str) -> Dict[str, object]:
        result = bench_artifact(
            path,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            duration_s=duration_s,
            concurrency=concurrency,
            transports=["engine"],
            backend=backend,
            warmup_s=warmup_s,
        )
        engine = result["transports"]["engine"]
        return {
            "batched_rps": engine["batched"]["throughput_rps"],
            "batch1_rps": engine["batch1"]["throughput_rps"],
            "batching_speedup": engine["speedup"],
            "batched_p99_ms": engine["batched"]["latency_ms"]["p99"],
            "raw": result,
        }

    if artifact_path is not None:
        return run(artifact_path)
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmpdir:
        return run(export_serving_artifact(os.path.join(tmpdir, "dense.npz")))


def serving_pool_throughput(
    *,
    pool_sizes: Sequence[int] = (1, 2, 4),
    duration_s: float = 1.0,
    concurrency: int = 16,
    max_batch_size: int = 16,
    max_wait_ms: float = 1.0,
    backend: Optional[str] = "numpy-fast",
    warmup_s: float = 0.25,
    mode: str = "auto",
    artifact_path: Optional[str] = None,
) -> Dict[str, object]:
    """Closed-loop engine-transport scaling curve across predictor-pool sizes.

    Every pool size runs the *same* batching policy and the *same* execution
    mode (``auto`` resolves to ``process`` when fork is available), so the
    pool-N over pool-1 ratio isolates what worker replication buys on top of
    micro-batching.  Bit-invariance across pool sizes is asserted per run:
    one probe batch must come back byte-identical from every configuration.
    """
    from repro.distributed.process import fork_available
    from repro.serve import BatchingPolicy, DynamicBatcher, load_artifact
    from repro.serve.loadgen import bench_engine
    from repro.utils import get_rng

    if mode == "auto":
        mode = "process" if fork_available() else "thread"

    def run(path: str) -> Dict[str, object]:
        per_size: Dict[int, Dict[str, object]] = {}
        probe_outputs: Dict[int, np.ndarray] = {}
        for size in pool_sizes:
            predictor = load_artifact(path, backend=backend)
            shape = predictor.input_shape
            samples = get_rng(offset=7).standard_normal(
                (max(64, 2 * concurrency),) + shape).astype(np.float32)
            probe = samples[:5]
            policy = BatchingPolicy(max_batch_size=max_batch_size,
                                    max_wait_ms=max_wait_ms)
            batcher = DynamicBatcher(predictor, policy=policy,
                                     name=f"pool{size}", workers=size, mode=mode)
            try:
                probe_outputs[size] = batcher.submit_batch(probe).result(timeout=60.0)
                result = bench_engine(batcher, samples, concurrency=concurrency,
                                      duration_s=duration_s, warmup_s=warmup_s)
            finally:
                batcher.close(drain=True)
            per_size[size] = result.as_dict()
        reference = probe_outputs[pool_sizes[0]]
        for size, outputs in probe_outputs.items():
            if not np.array_equal(reference, outputs):
                raise AssertionError(
                    f"pool size {size} ({mode} mode) changed predictions "
                    f"vs pool size {pool_sizes[0]} — bit-invariance broken")
        base = per_size[pool_sizes[0]]["throughput_rps"]
        top = pool_sizes[-1]
        return {
            "mode": mode,
            **{f"pool{size}_rps": per_size[size]["throughput_rps"]
               for size in pool_sizes},
            f"pool{top}_scaling": per_size[top]["throughput_rps"] / max(base, 1e-9),
            f"pool{top}_p99_ms": per_size[top]["latency_ms"]["p99"],
            "raw": {str(size): per_size[size] for size in pool_sizes},
        }

    if artifact_path is not None:
        return run(artifact_path)
    with tempfile.TemporaryDirectory(prefix="bench-serving-pool-") as tmpdir:
        return run(export_serving_artifact(os.path.join(tmpdir, "dense.npz")))
