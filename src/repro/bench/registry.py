"""Suite registry: named, declared benchmark workloads.

A *suite* wraps one benchmark workload behind a declared contract: its name,
a one-line description, and the exact metrics (unit + direction) every run
must produce.  Registration mirrors the method/backend registries elsewhere
in the codebase (``repro.train.methods``, ``repro.tensor.backend``): modules
call :func:`register_suite` at import time and consumers discover suites by
name, so the CLI, the CI matrix and the compare tool never hard-code a
workload list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.contract import MetricSpec

# A suite body receives the resolved budget and returns one sample per
# declared metric; the runner handles warmup, repeats and aggregation.
SuiteFn = Callable[["SuiteBudget"], Dict[str, float]]


@dataclass(frozen=True)
class SuiteBudget:
    """Resolved knobs handed to a suite body for one measurement repeat.

    ``tiny`` selects the CI smoke budget; ``iters`` scales the timed inner
    loop (suite-specific interpretation: steps, epochs or seconds); ``backend``
    is the tensor backend the workload should run under, when it cares.
    """

    tiny: bool = False
    iters: Optional[int] = None
    backend: Optional[str] = None

    def resolve_iters(self, full_default: int, tiny_default: int) -> int:
        if self.iters is not None:
            return self.iters
        return tiny_default if self.tiny else full_default


@dataclass(frozen=True)
class Suite:
    name: str
    description: str
    metrics: Tuple[MetricSpec, ...]
    fn: SuiteFn
    default_backend: Optional[str] = None
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def metric(self, name: str) -> MetricSpec:
        for spec in self.metrics:
            if spec.name == name:
                return spec
        raise KeyError(f"suite {self.name!r} declares no metric {name!r}")


_REGISTRY: Dict[str, Suite] = {}


def register_suite(
    name: str,
    description: str,
    metrics: Sequence[MetricSpec],
    *,
    default_backend: Optional[str] = None,
    tags: Sequence[str] = (),
) -> Callable[[SuiteFn], SuiteFn]:
    """Decorator registering a suite body under ``name``.

    Duplicate names and empty metric declarations are registration-time
    errors — a silently shadowed suite would make longitudinal histories
    lie about what was measured.
    """
    if not metrics:
        raise ValueError(f"suite {name!r} must declare at least one metric")
    seen = set()
    for spec in metrics:
        if spec.name in seen:
            raise ValueError(f"suite {name!r} declares metric {spec.name!r} twice")
        seen.add(spec.name)

    def decorator(fn: SuiteFn) -> SuiteFn:
        if name in _REGISTRY:
            raise ValueError(f"benchmark suite {name!r} is already registered")
        _REGISTRY[name] = Suite(
            name=name,
            description=description,
            metrics=tuple(metrics),
            fn=fn,
            default_backend=default_backend,
            tags=tuple(tags),
        )
        return fn

    return decorator


def available_suites() -> List[str]:
    """Registered suite names, sorted."""
    _ensure_builtin_suites()
    return sorted(_REGISTRY)


def get_suite(name: str) -> Suite:
    _ensure_builtin_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark suite {name!r}; available: {sorted(_REGISTRY)}")


def suite_descriptions() -> Dict[str, str]:
    _ensure_builtin_suites()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def _ensure_builtin_suites() -> None:
    """Import the built-in suite definitions exactly once.

    Deferred so that ``import repro.bench`` stays cheap and so tests can
    register synthetic suites without dragging in model/serving imports.
    """
    from repro.bench import suites  # noqa: F401  (import side effect registers)
