"""Append-only longitudinal store of benchmark medians.

One JSONL line per (run, metric): ``{"ts", "commit", "suite", "metric",
"value", "unit", "higher_is_better", "backend", "tiny"}``.  Appending never
rewrites existing lines, so the file is a durable perf trajectory across PRs;
CI uploads it as an artifact and ``repro bench history`` renders filtered
views of it.  Malformed lines (a crashed writer, a bad merge) are skipped on
read and reported in the view rather than aborting it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

DEFAULT_STORE = os.path.join("benchmarks", "output", "history.jsonl")


def append_result(store_path: str, result: Dict[str, Any]) -> int:
    """Append one line per metric of ``result``; returns lines written."""
    directory = os.path.dirname(os.path.abspath(store_path))
    os.makedirs(directory, exist_ok=True)
    budget = result.get("budget", {})
    lines = []
    for name, entry in result["metrics"].items():
        lines.append(json.dumps({
            "ts": result["created_unix"],
            "commit": result.get("commit"),
            "suite": result["suite"],
            "metric": name,
            "value": entry["median"],
            "unit": entry.get("unit", ""),
            "higher_is_better": entry.get("higher_is_better", True),
            "backend": result.get("backend"),
            "tiny": bool(budget.get("tiny", False)),
        }, default=float))
    with open(store_path, "a") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def read_history(
    store_path: str,
    *,
    suite: Optional[str] = None,
    metric: Optional[str] = None,
    last: Optional[int] = None,
) -> Tuple[List[Dict[str, Any]], int]:
    """Load (filtered) history entries in file order.

    Returns ``(entries, skipped)`` where ``skipped`` counts malformed lines.
    A missing store reads as empty — a fresh checkout has no trajectory yet.
    """
    if last is not None and last < 1:
        raise ValueError(f"last must be >= 1, got {last}")
    entries: List[Dict[str, Any]] = []
    skipped = 0
    if not os.path.exists(store_path):
        return entries, skipped
    with open(store_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                suite_name = entry["suite"]
                metric_name = entry["metric"]
                entry["value"] = float(entry["value"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
                continue
            if suite is not None and suite_name != suite:
                continue
            if metric is not None and metric_name != metric:
                continue
            entries.append(entry)
    if last is not None:
        entries = entries[-last:]
    return entries, skipped


def format_history(entries: List[Dict[str, Any]], skipped: int = 0) -> str:
    """Tabular view of history entries, newest last (append order)."""
    if not entries:
        body = "(no history entries match)"
    else:
        lines = [f"{'commit':<12} {'suite':<14} {'metric':<36} "
                 f"{'value':>12} {'unit':>10} {'budget':>6}"]
        for entry in entries:
            commit = (entry.get("commit") or "unknown")[:12]
            budget = "tiny" if entry.get("tiny") else "full"
            lines.append(
                f"{commit:<12} {entry['suite']:<14} {entry['metric']:<36} "
                f"{entry['value']:>12.4f} {entry.get('unit', ''):>10} {budget:>6}")
        body = "\n".join(lines)
    if skipped:
        body += f"\n({skipped} malformed line{'s' if skipped != 1 else ''} skipped)"
    return body
