"""Built-in benchmark suites over the repo's hot paths.

The suites cover every headline speed claim from PRs 2–7:

* ``throughput``        — training steps/sec, ``numpy`` vs ``numpy-fast``
  (PR 2);
* ``pipeline``          — loader samples/sec, legacy vs vectorized vs
  prefetched (PR 4);
* ``dataparallel``      — thread-mode data-parallel samples/sec at
  world_size 1 and 2 (PR 5);
* ``dataparallel-proc`` — process-mode (forked workers, shared-memory
  gradient exchange) samples/sec at world_size 1 and 2 (PR 7);
* ``serving``           — dynamic micro-batching vs batch-1 requests/sec
  (PR 3);
* ``telemetry-overhead`` — span-tracing cost on the Trainer hot loop,
  steps/sec enabled vs disabled (PR 8).

Each body performs ONE measurement at the resolved budget; warmup/repeat and
the noise summary live in :mod:`repro.bench.runner`.  Budgets are deliberately
small even at the full setting — these suites exist to detect *relative*
regressions between two commits on one host, not to reproduce the paper's
absolute numbers (the standalone ``benchmarks/bench_*.py`` scripts keep the
richer one-off analyses: seed-engine baselines, parity asserts, HTTP
transport, artifact-size comparisons).
"""

from __future__ import annotations

from typing import Dict

from repro.bench.contract import MetricSpec
from repro.bench.registry import SuiteBudget, register_suite

STEPS_PER_SEC = "steps/s"
SAMPLES_PER_SEC = "samples/s"
REQUESTS_PER_SEC = "req/s"
RATIO = "x"
MILLISECONDS = "ms"


@register_suite(
    "throughput",
    "training steps/sec on the ResNet cell: numpy vs numpy-fast backends",
    metrics=(
        MetricSpec("numpy_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("numpy_fast_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("numpy_fast_speedup", RATIO,
                   description="numpy-fast over numpy steps/sec"),
    ),
    default_backend="numpy-fast",
    tags=("training", "hot"),
)
def throughput_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import training_step_rate

    steps = budget.resolve_iters(full_default=8, tiny_default=2)
    slow = training_step_rate(backend="numpy", steps=steps)
    fast = training_step_rate(backend="numpy-fast", steps=steps)
    return {
        "numpy_steps_per_sec": slow["steps_per_sec"],
        "numpy_fast_steps_per_sec": fast["steps_per_sec"],
        "numpy_fast_speedup": fast["steps_per_sec"] / max(slow["steps_per_sec"], 1e-9),
    }


@register_suite(
    "compiled-throughput",
    "training steps/sec, numpy-fast vs the graph-captured numpy-compiled "
    "backend, measured in drift-cancelling A-B-B-A blocks on the ResNet "
    "and DeiT cells",
    metrics=(
        MetricSpec("numpy_fast_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("numpy_compiled_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("compiled_speedup", RATIO,
                   description="numpy-compiled over numpy-fast steps/sec (ResNet cell)"),
        MetricSpec("deit_compiled_speedup", RATIO,
                   description="numpy-compiled over numpy-fast steps/sec (DeiT cell)"),
    ),
    default_backend="numpy-compiled",
    tags=("training", "hot"),
)
def compiled_throughput_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import training_step_pair

    steps = budget.resolve_iters(full_default=2, tiny_default=1)
    blocks = 2 if budget.tiny else 4
    resnet = training_step_pair(steps=steps, blocks=blocks)
    deit = training_step_pair("deit_micro", width_mult=None, batch_size=8,
                              image_size=16, num_classes=8,
                              optimizer_name="adamw", steps=steps, blocks=blocks)
    return {
        "numpy_fast_steps_per_sec": resnet["a_steps_per_sec"],
        "numpy_compiled_steps_per_sec": resnet["b_steps_per_sec"],
        "compiled_speedup": resnet["b_steps_per_sec"] / max(resnet["a_steps_per_sec"], 1e-9),
        "deit_compiled_speedup": deit["b_steps_per_sec"] / max(deit["a_steps_per_sec"], 1e-9),
    }


@register_suite(
    "pipeline",
    "input-pipeline samples/sec: legacy loader vs vectorized vs prefetched",
    metrics=(
        MetricSpec("legacy_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("vectorized_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("vectorized_speedup", RATIO,
                   description="vectorized over legacy loader-only samples/sec"),
        MetricSpec("prefetch_overlapped_samples_per_sec", SAMPLES_PER_SEC,
                   description="best prefetched config under a simulated train step"),
    ),
    tags=("data", "hot"),
)
def pipeline_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import loader_throughput

    epochs = budget.resolve_iters(full_default=2, tiny_default=1)
    samples = 256 if budget.tiny else 1024
    results = loader_throughput(samples=samples, epochs=epochs)
    prefetch = max(
        results["overlapped"][name]["samples_per_sec"]
        for name in results["overlapped"] if name.startswith("prefetch"))
    legacy = results["loader_only"]["legacy"]["samples_per_sec"]
    vectorized = results["loader_only"]["vectorized"]["samples_per_sec"]
    return {
        "legacy_samples_per_sec": legacy,
        "vectorized_samples_per_sec": vectorized,
        "vectorized_speedup": vectorized / max(legacy, 1e-9),
        "prefetch_overlapped_samples_per_sec": prefetch,
    }


@register_suite(
    "dataparallel",
    "data-parallel training samples/sec at world_size 1 and 2",
    metrics=(
        MetricSpec("ws1_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("ws2_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("ws2_scaling", RATIO,
                   description="world_size 2 over world_size 1 samples/sec"),
    ),
    tags=("training", "distributed", "hot"),
)
def dataparallel_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import build_dp_dataset, dataparallel_throughput

    epochs = budget.resolve_iters(full_default=2, tiny_default=1)
    n = 128 if budget.tiny else 512
    image_size = 8 if budget.tiny else 16
    width_mult = 0.125 if budget.tiny else 0.25
    dataset = build_dp_dataset(n, image_size)
    ws1 = dataparallel_throughput(dataset, batch_size=32, width_mult=width_mult,
                                  world_size=1, epochs=epochs)
    ws2 = dataparallel_throughput(dataset, batch_size=32, width_mult=width_mult,
                                  world_size=2, epochs=epochs)
    return {
        "ws1_samples_per_sec": ws1["samples_per_sec"],
        "ws2_samples_per_sec": ws2["samples_per_sec"],
        "ws2_scaling": ws2["samples_per_sec"] / max(ws1["samples_per_sec"], 1e-9),
    }


@register_suite(
    "dataparallel-proc",
    "process-mode data-parallel samples/sec at world_size 1 and 2 "
    "(forked workers, shared-memory gradient exchange)",
    metrics=(
        MetricSpec("proc_ws1_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("proc_ws2_samples_per_sec", SAMPLES_PER_SEC),
        MetricSpec("proc_ws2_scaling", RATIO,
                   description="process-mode world_size 2 over world_size 1 "
                               "samples/sec"),
    ),
    tags=("training", "distributed", "hot"),
)
def dataparallel_proc_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import build_dp_dataset, dataparallel_throughput

    epochs = budget.resolve_iters(full_default=2, tiny_default=1)
    n = 128 if budget.tiny else 512
    image_size = 8 if budget.tiny else 16
    width_mult = 0.125 if budget.tiny else 0.25
    dataset = build_dp_dataset(n, image_size)
    ws1 = dataparallel_throughput(dataset, batch_size=32, width_mult=width_mult,
                                  world_size=1, epochs=epochs, mode="process")
    ws2 = dataparallel_throughput(dataset, batch_size=32, width_mult=width_mult,
                                  world_size=2, epochs=epochs, mode="process")
    return {
        "proc_ws1_samples_per_sec": ws1["samples_per_sec"],
        "proc_ws2_samples_per_sec": ws2["samples_per_sec"],
        "proc_ws2_scaling": ws2["samples_per_sec"] / max(ws1["samples_per_sec"], 1e-9),
    }


@register_suite(
    "telemetry-overhead",
    "span-tracing cost on the Trainer hot loop: steps/sec enabled vs disabled",
    metrics=(
        MetricSpec("disabled_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("enabled_steps_per_sec", STEPS_PER_SEC),
        MetricSpec("slowdown_ratio", RATIO, higher_is_better=False,
                   description="disabled over enabled steps/sec; ~1.0 when "
                               "the instrumentation is free"),
    ),
    tags=("training", "observability"),
)
def telemetry_overhead_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import telemetry_overhead

    steps = budget.resolve_iters(full_default=16, tiny_default=4)
    return telemetry_overhead(steps=steps,
                              samples=128 if budget.tiny else 512,
                              image_size=8 if budget.tiny else 16)


@register_suite(
    "serving",
    "inference requests/sec: dynamic micro-batching vs batch-1 (engine transport)",
    metrics=(
        MetricSpec("batched_rps", REQUESTS_PER_SEC),
        MetricSpec("batch1_rps", REQUESTS_PER_SEC),
        MetricSpec("batching_speedup", RATIO,
                   description="batched over batch-1 requests/sec"),
        MetricSpec("batched_p99_ms", MILLISECONDS, higher_is_better=False,
                   description="p99 end-to-end latency under the batching policy"),
    ),
    default_backend="numpy-fast",
    tags=("serving", "hot"),
)
def serving_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import serving_throughput

    duration = float(budget.resolve_iters(full_default=3, tiny_default=1))
    result = serving_throughput(
        duration_s=duration,
        concurrency=8 if budget.tiny else 32,
        backend=budget.backend or "numpy-fast",
        warmup_s=0.25 if budget.tiny else 0.5,
    )
    return {
        "batched_rps": float(result["batched_rps"]),
        "batch1_rps": float(result["batch1_rps"]),
        "batching_speedup": float(result["batching_speedup"]),
        "batched_p99_ms": float(result["batched_p99_ms"]),
    }


@register_suite(
    "serving-pool",
    "replicated predictor-pool scaling: requests/sec at pool sizes 1/2/4",
    metrics=(
        MetricSpec("pool1_rps", REQUESTS_PER_SEC),
        MetricSpec("pool2_rps", REQUESTS_PER_SEC),
        MetricSpec("pool4_rps", REQUESTS_PER_SEC),
        MetricSpec("pool4_scaling", RATIO,
                   description="pool-4 over pool-1 requests/sec, same policy "
                               "and execution mode"),
        MetricSpec("pool4_p99_ms", MILLISECONDS, higher_is_better=False,
                   description="p99 end-to-end latency at pool size 4"),
    ),
    default_backend="numpy-fast",
    tags=("serving", "pool"),
)
def serving_pool_suite(budget: SuiteBudget) -> Dict[str, float]:
    from repro.bench.workloads import serving_pool_throughput

    duration = float(budget.resolve_iters(full_default=3, tiny_default=1))
    result = serving_pool_throughput(
        duration_s=duration,
        concurrency=8 if budget.tiny else 32,
        backend=budget.backend or "numpy-fast",
        warmup_s=0.25 if budget.tiny else 0.5,
    )
    return {
        "pool1_rps": float(result["pool1_rps"]),
        "pool2_rps": float(result["pool2_rps"]),
        "pool4_rps": float(result["pool4_rps"]),
        "pool4_scaling": float(result["pool4_scaling"]),
        "pool4_p99_ms": float(result["pool4_p99_ms"]),
    }
