"""Shared flag handling and contract emission for ``benchmarks/bench_*.py``.

Before this module each hot benchmark script hand-rolled its own ``--tiny``
and JSON-output flags with subtly different spellings and defaults.  The four
migrated scripts (throughput, pipeline, dataparallel, serving) now call
:func:`add_standard_flags` for one canonical flag set and
:func:`emit_script_result` to publish results three ways at once:

* the script's legacy free-form JSON at ``--json-path`` (unchanged shape,
  downstream tooling keeps working);
* the versioned results contract at ``<json-path stem>.bench.json`` so
  script runs are comparable with ``repro bench compare``;
* an appended line per metric in the longitudinal JSONL store
  (``--history-path`` / ``--no-history``).

``--json`` additionally prints the legacy summary to stdout for ad-hoc
piping — previously each script either lacked the flag or overloaded it
differently.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.bench.contract import MetricSpec, build_result, metrics_from_specs, write_result
from repro.bench.history import append_result

# value, unit, higher_is_better — one entry per contract metric a script emits
ScriptMetrics = Dict[str, Tuple[float, str, bool]]


def default_output_dir() -> str:
    return os.path.join("benchmarks", "output")


def add_standard_flags(parser: argparse.ArgumentParser, suite: str,
                       *, output_dir: Optional[str] = None) -> None:
    """Install the canonical benchmark-script flags for ``suite``."""
    out = output_dir or default_output_dir()
    group = parser.add_argument_group("output")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke mode: minimal budget per measurement")
    group.add_argument("--json", action="store_true",
                       help="also print the summary JSON to stdout")
    group.add_argument("--json-path", default=os.path.join(out, f"{suite}.json"),
                       help="legacy free-form summary destination")
    group.add_argument("--contract-path", default=None,
                       help="versioned results-contract destination "
                            "(default: <json-path stem>.bench.json)")
    group.add_argument("--history-path", default=os.path.join(out, "history.jsonl"),
                       help="longitudinal JSONL store to append to")
    group.add_argument("--no-history", action="store_true",
                       help="skip appending to the longitudinal store")


def contract_path_for(args: argparse.Namespace) -> str:
    if args.contract_path:
        return args.contract_path
    stem, _ = os.path.splitext(args.json_path)
    return stem + ".bench.json"


def emit_script_result(
    args: argparse.Namespace,
    suite: str,
    summary: Dict[str, Any],
    metrics: ScriptMetrics,
    *,
    specs: Optional[Sequence[MetricSpec]] = None,
    stream=sys.stdout,
) -> Dict[str, Any]:
    """Write legacy JSON + contract JSON + history; return the contract doc.

    ``metrics`` carries single-sample measurements (scripts run each workload
    once); ``specs`` optionally pins units/directions to a registered suite's
    declaration instead of the inline tuples.
    """
    os.makedirs(os.path.dirname(os.path.abspath(args.json_path)), exist_ok=True)
    with open(args.json_path, "w") as handle:
        json.dump(summary, handle, indent=2, default=float)
    print(f"[bench_{suite}] wrote {args.json_path}", file=sys.stderr if args.json else stream)

    if specs is not None:
        doc_metrics = metrics_from_specs(
            specs, {name: [value] for name, (value, _, _) in metrics.items()})
    else:
        doc_metrics = {
            name: {"unit": unit, "higher_is_better": hib, "samples": [value]}
            for name, (value, unit, hib) in metrics.items()
        }
    result = build_result(suite, doc_metrics, budget={"tiny": bool(args.tiny),
                                                      "entry_point": "script"})
    path = write_result(contract_path_for(args), result)
    print(f"[bench_{suite}] wrote contract {path}",
          file=sys.stderr if args.json else stream)

    if not args.no_history:
        written = append_result(args.history_path, result)
        print(f"[bench_{suite}] appended {written} metrics to {args.history_path}",
              file=sys.stderr if args.json else stream)

    if args.json:
        json.dump(summary, stream, indent=2, default=float)
        stream.write("\n")
    return result
