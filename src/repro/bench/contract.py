"""The versioned benchmark results contract (DESIGN.md §12).

Every benchmark — whether driven through ``repro bench run`` or one of the
standalone ``benchmarks/bench_*.py`` scripts — emits the same JSON document so
results from different PRs, hosts and entry points can be compared and
accumulated.  The document is intentionally flat and self-describing:

``schema_version``
    Integer bumped on any incompatible change; ``compare`` refuses to diff
    documents whose versions differ.
``suite`` / ``created_unix`` / ``commit`` / ``host`` / ``backend`` / ``budget``
    Provenance: which workload, when, at which commit, on what machine, with
    which tensor backend and knob settings.
``metrics``
    ``name -> {unit, higher_is_better, samples, median, iqr, rel_iqr}``.
    ``samples`` holds one value per repeat; the summary statistics implement
    the noise model — the *median* is the reported value (robust to a single
    straggler repeat) and the *IQR relative to the median* is the measured
    run-to-run noise floor the compare widens its threshold by.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

SCHEMA_VERSION = 1

_REQUIRED_TOP_LEVEL = ("schema_version", "suite", "created_unix", "host", "metrics")
_REQUIRED_METRIC_FIELDS = ("unit", "higher_is_better", "samples", "median", "iqr", "rel_iqr")


class ContractError(ValueError):
    """A results document does not satisfy the contract."""


@dataclass(frozen=True)
class MetricSpec:
    """Declared shape of one suite metric."""

    name: str
    unit: str
    higher_is_better: bool = True
    description: str = ""


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile over an already-sorted sample list."""
    if not ordered:
        raise ContractError("cannot summarize an empty sample list")
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize_samples(samples: Iterable[float]) -> Dict[str, Any]:
    """Median + IQR noise summary for one metric's per-repeat samples."""
    values = sorted(float(v) for v in samples)
    if not values:
        raise ContractError("metric has no samples")
    median = _percentile(values, 0.5)
    iqr = _percentile(values, 0.75) - _percentile(values, 0.25)
    rel_iqr = iqr / abs(median) if median != 0.0 else 0.0
    return {
        "samples": values,
        "median": median,
        "iqr": iqr,
        "rel_iqr": rel_iqr,
        "min": values[0],
        "max": values[-1],
    }


def host_fingerprint() -> Dict[str, Any]:
    """Where a result was measured — compares warn (not fail) on mismatch."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "node": platform.node(),
    }


def git_commit(repo_root: Optional[str] = None) -> Optional[str]:
    """Current commit hash, or None outside a git checkout."""
    cmd = ["git"]
    if repo_root:
        cmd += ["-C", repo_root]
    cmd += ["rev-parse", "HEAD"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def build_result(
    suite: str,
    metrics: Dict[str, Dict[str, Any]],
    *,
    backend: Optional[str] = None,
    budget: Optional[Dict[str, Any]] = None,
    commit: Optional[str] = "auto",
    host: Optional[Dict[str, Any]] = None,
    created_unix: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble a schema-valid results document.

    ``metrics`` maps name to ``{"unit", "higher_is_better", "samples"}``;
    summary statistics are computed here so no caller can emit a document
    whose median disagrees with its samples.  ``commit="auto"`` resolves the
    current git HEAD (None when unavailable).
    """
    if not metrics:
        raise ContractError(f"suite {suite!r} produced no metrics")
    doc_metrics: Dict[str, Any] = {}
    for name, spec in metrics.items():
        try:
            samples = spec["samples"]
        except (TypeError, KeyError):
            raise ContractError(f"metric {name!r} must provide a 'samples' list")
        entry = {
            "unit": str(spec.get("unit", "")),
            "higher_is_better": bool(spec.get("higher_is_better", True)),
        }
        entry.update(summarize_samples(samples))
        doc_metrics[name] = entry
    result = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "created_unix": float(created_unix if created_unix is not None else time.time()),
        "commit": git_commit() if commit == "auto" else commit,
        "host": host if host is not None else host_fingerprint(),
        "backend": backend,
        "budget": dict(budget or {}),
        "metrics": doc_metrics,
    }
    return validate_result(result)


def metrics_from_specs(specs: Sequence[MetricSpec],
                       samples: Dict[str, List[float]]) -> Dict[str, Dict[str, Any]]:
    """Pair declared :class:`MetricSpec` entries with measured samples."""
    missing = [s.name for s in specs if s.name not in samples]
    if missing:
        raise ContractError(f"no samples recorded for declared metrics: {missing}")
    extra = [name for name in samples if name not in {s.name for s in specs}]
    if extra:
        raise ContractError(f"samples recorded for undeclared metrics: {extra}")
    return {
        spec.name: {
            "unit": spec.unit,
            "higher_is_better": spec.higher_is_better,
            "samples": list(samples[spec.name]),
        }
        for spec in specs
    }


def validate_result(result: Any) -> Dict[str, Any]:
    """Check a parsed document against the contract; return it unchanged."""
    if not isinstance(result, dict):
        raise ContractError(f"results document must be an object, got {type(result).__name__}")
    missing = [key for key in _REQUIRED_TOP_LEVEL if key not in result]
    if missing:
        raise ContractError(f"results document missing required keys: {missing}")
    version = result["schema_version"]
    if version != SCHEMA_VERSION:
        raise ContractError(
            f"unsupported schema_version {version!r} (this build understands {SCHEMA_VERSION})")
    if not isinstance(result["metrics"], dict) or not result["metrics"]:
        raise ContractError("results document has no metrics")
    for name, entry in result["metrics"].items():
        if not isinstance(entry, dict):
            raise ContractError(f"metric {name!r} must be an object")
        absent = [field for field in _REQUIRED_METRIC_FIELDS if field not in entry]
        if absent:
            raise ContractError(f"metric {name!r} missing fields: {absent}")
        if not entry["samples"]:
            raise ContractError(f"metric {name!r} has an empty sample list")
    return result


def write_result(path: str, result: Dict[str, Any]) -> str:
    """Validate and write one results document; returns the path."""
    validate_result(result)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=False, default=float)
        handle.write("\n")
    return path


def load_result(path: str) -> Dict[str, Any]:
    """Read and validate one results document."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ContractError(f"results file not found: {path}")
    except json.JSONDecodeError as error:
        raise ContractError(f"results file {path} is not valid JSON: {error}")
    return validate_result(payload)
