"""Suite runner: warmup/iters/repeat knobs over registered suites.

One :func:`run_suite` call executes a suite body ``warmup`` times discarded
plus ``repeat`` measured times, collects one sample per declared metric per
measured repeat, and packages the whole thing as a schema-valid results
document (median + IQR per metric — the noise model ``compare`` consumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.contract import (
    ContractError,
    build_result,
    metrics_from_specs,
)
from repro.bench.registry import SuiteBudget, get_suite


@dataclass(frozen=True)
class RunConfig:
    """Knobs for one ``repro bench run`` invocation."""

    tiny: bool = False
    warmup: int = 1
    repeat: int = 3
    iters: Optional[int] = None
    backend: Optional[str] = None
    extra_budget: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {self.repeat}")


def run_suite(name: str, config: Optional[RunConfig] = None,
              *, progress=None) -> Dict[str, Any]:
    """Run one registered suite; return the validated results document.

    ``progress`` (optional) is called as ``progress(stage, index, total)``
    with stage ``"warmup"`` or ``"repeat"`` before each suite-body execution —
    the CLI uses it to narrate long runs.
    """
    config = config or RunConfig()
    suite = get_suite(name)
    backend = config.backend or suite.default_backend
    budget = SuiteBudget(tiny=config.tiny, iters=config.iters, backend=backend)

    declared = {spec.name for spec in suite.metrics}

    def measure() -> Dict[str, float]:
        produced = suite.fn(budget)
        if set(produced) != declared:
            missing = sorted(declared - set(produced))
            extra = sorted(set(produced) - declared)
            raise ContractError(
                f"suite {name!r} violated its metric declaration "
                f"(missing={missing}, undeclared={extra})")
        return {key: float(value) for key, value in produced.items()}

    for index in range(config.warmup):
        if progress is not None:
            progress("warmup", index, config.warmup)
        measure()

    samples: Dict[str, List[float]] = {spec.name: [] for spec in suite.metrics}
    for index in range(config.repeat):
        if progress is not None:
            progress("repeat", index, config.repeat)
        for key, value in measure().items():
            samples[key].append(value)

    return build_result(
        name,
        metrics_from_specs(suite.metrics, samples),
        backend=backend,
        budget={
            "tiny": config.tiny,
            "warmup": config.warmup,
            "repeat": config.repeat,
            "iters": config.iters,
            **config.extra_budget,
        },
    )


def format_result_table(result: Dict[str, Any]) -> str:
    """Human-readable summary of one results document."""
    lines = [
        f"suite: {result['suite']}   backend: {result.get('backend') or '-'}   "
        f"commit: {(result.get('commit') or 'unknown')[:12]}",
        f"{'metric':<36} {'median':>12} {'iqr':>10} {'unit':>10}  dir",
    ]
    for name, entry in result["metrics"].items():
        direction = "↑" if entry["higher_is_better"] else "↓"
        lines.append(
            f"{name:<36} {entry['median']:>12.4f} {entry['iqr']:>10.4f} "
            f"{entry['unit']:>10}  {direction}")
    return "\n".join(lines)
