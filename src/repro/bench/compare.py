"""Noise-aware base-vs-candidate comparison of two results documents.

Every metric shared by the two documents gets one verdict:

* ``within-noise`` — the relative change is inside the effective threshold;
* ``improved``     — outside the threshold in the metric's good direction;
* ``regressed``    — outside the threshold in the metric's bad direction.

The effective threshold per metric is ``max(noise_threshold, rel_iqr_base,
rel_iqr_cand)``: the caller sets the floor (``--noise-threshold``), and a
metric that measured noisier than that floor widens its own band — a delta
smaller than the run-to-run spread is not evidence of anything.

Hard errors (``CompareError``) rather than verdicts: schema-version mismatch,
suite mismatch, and base metrics missing from the candidate — each means the
two documents are not comparable, and a gate that silently skipped them would
report green on garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

VERDICT_IMPROVED = "improved"
VERDICT_REGRESSED = "regressed"
VERDICT_WITHIN_NOISE = "within-noise"

_VERDICT_GLYPHS = {
    VERDICT_IMPROVED: "✅",
    VERDICT_REGRESSED: "❌",
    VERDICT_WITHIN_NOISE: "·",
}


class CompareError(ValueError):
    """The two results documents cannot be meaningfully compared."""


@dataclass(frozen=True)
class MetricVerdict:
    name: str
    unit: str
    higher_is_better: bool
    base_median: float
    cand_median: float
    delta_rel: float            # signed raw relative change vs base
    effective_threshold: float  # max(noise floor, both rel_iqrs)
    verdict: str

    @property
    def delta_pct(self) -> float:
        return 100.0 * self.delta_rel

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.name,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "base": self.base_median,
            "candidate": self.cand_median,
            "delta_rel": self.delta_rel,
            "effective_threshold": self.effective_threshold,
            "verdict": self.verdict,
        }


@dataclass
class CompareReport:
    suite: str
    noise_threshold: float
    verdicts: List[MetricVerdict]
    new_metrics: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.verdict == VERDICT_REGRESSED]

    @property
    def improvements(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.verdict == VERDICT_IMPROVED]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "noise_threshold": self.noise_threshold,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "new_metrics": list(self.new_metrics),
            "notes": list(self.notes),
            "regressed": [v.name for v in self.regressions],
            "improved": [v.name for v in self.improvements],
            "exit_code": self.exit_code,
        }


def classify_metric(
    name: str,
    base_entry: Dict[str, Any],
    cand_entry: Dict[str, Any],
    noise_threshold: float,
    *,
    noise_aware: bool = True,
) -> MetricVerdict:
    """Verdict for one metric; boundary deltas count as within-noise."""
    base_median = float(base_entry["median"])
    cand_median = float(cand_entry["median"])
    higher_is_better = bool(base_entry["higher_is_better"])

    if base_median == 0.0:
        # No meaningful relative delta exists; any nonzero candidate is an
        # infinite relative change in its sign's direction.
        delta_rel = 0.0 if cand_median == 0.0 else float("inf") * (1 if cand_median > 0 else -1)
    else:
        delta_rel = (cand_median - base_median) / abs(base_median)

    effective = float(noise_threshold)
    if noise_aware:
        effective = max(effective,
                        float(base_entry.get("rel_iqr", 0.0)),
                        float(cand_entry.get("rel_iqr", 0.0)))

    if abs(delta_rel) <= effective:
        verdict = VERDICT_WITHIN_NOISE
    else:
        good = delta_rel > 0 if higher_is_better else delta_rel < 0
        verdict = VERDICT_IMPROVED if good else VERDICT_REGRESSED

    return MetricVerdict(
        name=name,
        unit=str(base_entry.get("unit", "")),
        higher_is_better=higher_is_better,
        base_median=base_median,
        cand_median=cand_median,
        delta_rel=delta_rel,
        effective_threshold=effective,
        verdict=verdict,
    )


def compare_results(
    base: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    noise_threshold: float = 0.1,
    noise_aware: bool = True,
) -> CompareReport:
    """Compare two validated results documents metric by metric."""
    if noise_threshold < 0:
        raise ValueError(f"noise_threshold must be >= 0, got {noise_threshold}")
    if base["schema_version"] != candidate["schema_version"]:
        raise CompareError(
            f"schema_version mismatch: base={base['schema_version']} "
            f"candidate={candidate['schema_version']}")
    if base["suite"] != candidate["suite"]:
        raise CompareError(
            f"suite mismatch: base={base['suite']!r} candidate={candidate['suite']!r}")

    missing = sorted(set(base["metrics"]) - set(candidate["metrics"]))
    if missing:
        raise CompareError(
            f"candidate is missing metrics present in base: {missing}")

    report = CompareReport(suite=base["suite"], noise_threshold=noise_threshold,
                           verdicts=[])
    for name, base_entry in base["metrics"].items():
        report.verdicts.append(classify_metric(
            name, base_entry, candidate["metrics"][name],
            noise_threshold, noise_aware=noise_aware))
    report.new_metrics = sorted(set(candidate["metrics"]) - set(base["metrics"]))

    if base.get("host", {}) != candidate.get("host", {}):
        report.notes.append(
            "host fingerprints differ — absolute deltas include machine effects")
    if base.get("backend") != candidate.get("backend"):
        report.notes.append(
            f"backends differ (base={base.get('backend')!r}, "
            f"candidate={candidate.get('backend')!r})")
    base_budget, cand_budget = base.get("budget", {}), candidate.get("budget", {})
    if base_budget != cand_budget:
        report.notes.append(
            f"budgets differ (base={base_budget}, candidate={cand_budget})")
    return report


def format_markdown(report: CompareReport) -> str:
    """Render a compare report as a GitHub-flavoured markdown table."""
    lines = [
        f"### `{report.suite}` — base vs candidate "
        f"(noise threshold {100 * report.noise_threshold:.1f}%)",
        "",
        "| metric | base | candidate | Δ | noise band | verdict |",
        "|---|---:|---:|---:|---:|:---|",
    ]
    for v in report.verdicts:
        delta = "n/a" if v.base_median == 0.0 and v.cand_median != 0.0 \
            else f"{v.delta_pct:+.1f}%"
        unit = f" {v.unit}" if v.unit else ""
        lines.append(
            f"| {v.name} ({'↑' if v.higher_is_better else '↓'}) "
            f"| {v.base_median:.4g}{unit} | {v.cand_median:.4g}{unit} "
            f"| {delta} | ±{100 * v.effective_threshold:.1f}% "
            f"| {_VERDICT_GLYPHS[v.verdict]} {v.verdict} |")
    if report.new_metrics:
        lines += ["", f"New metrics in candidate (not compared): "
                      f"{', '.join(report.new_metrics)}"]
    for note in report.notes:
        lines += ["", f"> ⚠️ {note}"]
    summary = (f"**{len(report.regressions)} regressed**, "
               f"{len(report.improvements)} improved, "
               f"{sum(1 for v in report.verdicts if v.verdict == VERDICT_WITHIN_NOISE)} "
               f"within noise")
    lines += ["", summary]
    return "\n".join(lines)
