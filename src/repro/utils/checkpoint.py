"""Checkpointing for (possibly factorized) models.

Cuttlefish changes the model's *structure* mid-training: full-rank layers are
replaced by :class:`~repro.core.low_rank_layers.LowRankLinear` /
``LowRankConv2d`` pairs, so a plain ``state_dict`` saved after the switch can
only be loaded into a model that has already been factorized with the same
per-layer ranks.  A checkpoint therefore stores, next to the weights:

* the selected ranks per layer path (empty before the switch),
* whether the extra BatchNorm variant was used,
* arbitrary user metadata (epoch, accuracy, the Cuttlefish report fields).

``load_checkpoint`` re-applies the stored factorization to a freshly built
full-rank model before loading weights, so resuming works from either side of
the full-rank → low-rank switch.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional

import numpy as np

from repro import nn

#: Bump when the on-disk layout changes incompatibly.  Version history:
#: 1 — meta block with ranks/extra_bn/num_parameters/metadata + state/ arrays.
CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"
_STATE_PREFIX = "state/"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or from an incompatible version."""


def _factorized_ranks(model: nn.Module) -> Dict[str, int]:
    """Per-path rank of every low-rank layer currently in ``model``."""
    from repro.core.low_rank_layers import is_low_rank

    ranks: Dict[str, int] = {}
    for name, module in model.named_modules():
        if name and is_low_rank(module):
            ranks[name] = int(module.rank)
    return ranks


def _uses_extra_bn(model: nn.Module) -> bool:
    from repro.core.low_rank_layers import is_low_rank

    return any(
        getattr(module, "extra_bn", False)
        for _, module in model.named_modules()
        if is_low_rank(module)
    )


def save_checkpoint(path: str, model: nn.Module, metadata: Optional[Dict] = None) -> None:
    """Write model weights plus factorization structure to an ``.npz`` file.

    Parameters
    ----------
    path:
        Destination file.  Parent directories are created if needed.
    model:
        The model to snapshot (full-rank or already factorized).
    metadata:
        Optional JSON-serialisable dict stored alongside the weights
        (epoch, validation accuracy, Cuttlefish report fields, …).
    """
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "ranks": _factorized_ranks(model),
        "extra_bn": _uses_extra_bn(model),
        "num_parameters": int(model.num_parameters()),
        "metadata": metadata or {},
    }
    arrays = {_STATE_PREFIX + key: value for key, value in model.state_dict().items()}
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def read_checkpoint_meta(path: str) -> Dict:
    """Return the metadata block of a checkpoint without touching the weights.

    Raises :class:`CheckpointError` — naming the file and the fix — when the
    file is not a checkpoint, lacks its metadata block, or was written by an
    incompatible format version.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint {path!r} does not exist")
    try:
        with np.load(path) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointError(
                    f"{path!r} has no checkpoint metadata block ({_META_KEY!r}): it is "
                    f"not a repro checkpoint, or was written before format versioning. "
                    f"Re-save it with repro.utils.save_checkpoint on current code."
                )
            raw = archive[_META_KEY].tobytes().decode("utf-8")
        meta = json.loads(raw)
    except CheckpointError:
        raise
    except Exception as error:  # corrupt zip, truncated file, garbled meta JSON ...
        raise CheckpointError(f"cannot read checkpoint {path!r}: {error}") from error
    version = meta.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format_version={version!r}, but this build reads "
            f"version {CHECKPOINT_FORMAT_VERSION}. Re-train or re-save the checkpoint "
            f"with the matching code revision."
        )
    return meta


def load_checkpoint(
    path: str,
    model: nn.Module,
    strict: bool = True,
) -> Dict:
    """Load a checkpoint into ``model``, re-applying the stored factorization.

    ``model`` should be the *full-rank* architecture the checkpoint was created
    from (or an already-factorized model with matching structure).  If the
    checkpoint was taken after the Cuttlefish switch, the stored per-layer
    ranks are applied with :func:`repro.core.factorize_model` before the
    weights are copied in, so the parameter names line up.

    Returns the checkpoint's metadata dict (the ``metadata`` argument passed to
    :func:`save_checkpoint`, plus ``ranks`` / ``extra_bn`` / ``num_parameters``).
    """
    from repro.core.factorize import factorize_model

    meta = read_checkpoint_meta(path)
    stored_ranks: Dict[str, int] = {k: int(v) for k, v in meta.get("ranks", {}).items()}
    if stored_ranks:
        current = _factorized_ranks(model)
        missing = {p: r for p, r in stored_ranks.items() if p not in current}
        if missing:
            factorize_model(model, missing, extra_bn=bool(meta.get("extra_bn", False)),
                            skip_non_reducing=False)
        mismatched = {
            p: (stored_ranks[p], _factorized_ranks(model).get(p))
            for p in stored_ranks
            if _factorized_ranks(model).get(p) != stored_ranks[p]
        }
        if strict and mismatched:
            raise ValueError(f"checkpoint rank mismatch for layers: {mismatched}")

    with np.load(path) as archive:
        state = {
            key[len(_STATE_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_STATE_PREFIX)
        }
    if not state:
        raise CheckpointError(
            f"checkpoint {path!r} contains no {_STATE_PREFIX!r} weight arrays — the file "
            f"is truncated or was not written by repro.utils.save_checkpoint"
        )
    model.load_state_dict(state, strict=strict)
    return meta


def restore_model(path: str, builder: Callable[[], nn.Module], strict: bool = True) -> nn.Module:
    """Build a fresh model with ``builder`` and load ``path`` into it.

    Convenience wrapper for inference/evaluation scripts: the builder creates
    the full-rank architecture, and the checkpoint's stored ranks reproduce
    the factorized structure exactly.
    """
    model = builder()
    load_checkpoint(path, model, strict=strict)
    return model
