"""Small shared utilities: seeding, logging, checkpointing, numeric helpers."""

from repro.utils.seed import seed_everything, get_rng, root_seed
from repro.utils.logging import get_logger
from repro.utils.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_meta,
    restore_model,
    save_checkpoint,
)

__all__ = [
    "seed_everything",
    "get_rng",
    "root_seed",
    "get_logger",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "restore_model",
]
