"""Small shared utilities: seeding, logging, checkpointing, numeric helpers."""

from repro.utils.seed import (
    counter_bits,
    counter_integers,
    counter_uniforms,
    get_epoch_rng,
    get_rng,
    root_seed,
    sample_integers,
    sample_uniforms,
    seed_everything,
)
from repro.utils.logging import get_logger
from repro.utils.concurrency import (
    CLOSED,
    BackgroundProducer,
    ClosableQueue,
    ProducerFailure,
    run_worker_threads,
    start_worker_threads,
)
from repro.utils.shm import (
    SEGMENT_PREFIX,
    SharedSegment,
    ShmArena,
    active_owned_segments,
    arena_bytes_for,
    attach_view,
)
from repro.utils.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_meta,
    restore_model,
    save_checkpoint,
)

__all__ = [
    "seed_everything",
    "get_rng",
    "get_epoch_rng",
    "root_seed",
    "counter_bits",
    "counter_integers",
    "counter_uniforms",
    "sample_integers",
    "sample_uniforms",
    "CLOSED",
    "BackgroundProducer",
    "ClosableQueue",
    "ProducerFailure",
    "run_worker_threads",
    "start_worker_threads",
    "get_logger",
    "SEGMENT_PREFIX",
    "SharedSegment",
    "ShmArena",
    "active_owned_segments",
    "arena_bytes_for",
    "attach_view",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "restore_model",
]
