"""Deterministic seeding helpers.

Every stochastic component in the library (weight init, data synthesis,
dropout, augmentation) draws from numpy's global RNG or from an explicit
``numpy.random.Generator``.  ``seed_everything`` pins the global stream and
``get_rng`` hands out independent, reproducible generators derived from a
root seed, so experiments that run several trials can give each trial its own
stream without the streams colliding.
"""

from __future__ import annotations

import random

import numpy as np

_ROOT_SEED = 0


def seed_everything(seed: int) -> None:
    """Seed Python's and numpy's global random number generators."""
    global _ROOT_SEED
    _ROOT_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def get_rng(offset: int = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` derived from the root seed.

    Parameters
    ----------
    offset:
        Sub-stream index.  Two calls with the same offset (and the same root
        seed) return generators producing identical streams.
    """
    return np.random.default_rng(np.random.SeedSequence([_ROOT_SEED, int(offset)]))
