"""Deterministic seeding helpers.

Every stochastic component in the library (weight init, data synthesis,
dropout, augmentation) draws from numpy's global RNG or from an explicit
``numpy.random.Generator``.  ``seed_everything`` pins the global stream and
``get_rng`` hands out independent, reproducible generators derived from a
root seed, so experiments that run several trials can give each trial its own
stream without the streams colliding.
"""

from __future__ import annotations

import random

import numpy as np

_ROOT_SEED = 0
_SEED_EPOCH = 0


def seed_everything(seed: int) -> None:
    """Seed Python's and numpy's global random number generators."""
    global _ROOT_SEED, _SEED_EPOCH
    _ROOT_SEED = int(seed)
    _SEED_EPOCH += 1
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def root_seed() -> int:
    """The root seed last installed by :func:`seed_everything`."""
    return _ROOT_SEED


def seed_state() -> tuple:
    """(root seed, reseed epoch) — changes on *every* ``seed_everything``.

    Lets derived-generator caches (e.g. the dropout fallback RNG) reset even
    when the same seed value is installed twice.
    """
    return (_ROOT_SEED, _SEED_EPOCH)


def get_rng(offset: int = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` derived from the root seed.

    Parameters
    ----------
    offset:
        Sub-stream index.  Two calls with the same offset (and the same root
        seed) return generators producing identical streams.
    """
    return np.random.default_rng(np.random.SeedSequence([_ROOT_SEED, int(offset)]))
