"""Deterministic seeding helpers.

Every stochastic component in the library (weight init, data synthesis,
dropout, augmentation) draws from numpy's global RNG or from an explicit
``numpy.random.Generator``.  ``seed_everything`` pins the global stream and
``get_rng`` hands out independent, reproducible generators derived from a
root seed, so experiments that run several trials can give each trial its own
stream without the streams colliding.

Two flavours of derived randomness exist:

* *sequential* generators (:func:`get_rng`, :func:`get_epoch_rng`) whose
  output depends on how many values have been drawn so far — right for
  weight init and shuffling permutations;
* *counter-based* streams (:func:`counter_uniforms` and friends) that map
  ``(key, counter, draw)`` straight to a value with no mutable state, in the
  spirit of Philox/Threefry.  The data pipeline keys augmentation on
  ``(root_seed, epoch, transform_stream, sample_id)``, which makes every
  augmentation bit a pure function of the sample's identity — independent of
  batch size, iteration order, prefetch depth and worker count.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

_ROOT_SEED = 0
_SEED_EPOCH = 0


def seed_everything(seed: int) -> None:
    """Seed Python's and numpy's global random number generators."""
    global _ROOT_SEED, _SEED_EPOCH
    _ROOT_SEED = int(seed)
    _SEED_EPOCH += 1
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def root_seed() -> int:
    """The root seed last installed by :func:`seed_everything`."""
    return _ROOT_SEED


def seed_state() -> tuple:
    """(root seed, reseed epoch) — changes on *every* ``seed_everything``.

    Lets derived-generator caches (e.g. the dropout fallback RNG) reset even
    when the same seed value is installed twice.
    """
    return (_ROOT_SEED, _SEED_EPOCH)


def get_rng(offset: int = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` derived from the root seed.

    Parameters
    ----------
    offset:
        Sub-stream index.  Two calls with the same offset (and the same root
        seed) return generators producing identical streams.
    """
    return np.random.default_rng(np.random.SeedSequence([_ROOT_SEED, int(offset)]))


def get_epoch_rng(offset: int, epoch: int) -> np.random.Generator:
    """A generator keyed on ``(root_seed, offset, epoch)``.

    Unlike :func:`get_rng`, whose stream advances with every draw, asking for
    the same ``(offset, epoch)`` twice returns identical streams — this is
    what makes pipeline shuffling replayable for mid-epoch resume.
    """
    return np.random.default_rng(
        np.random.SeedSequence([_ROOT_SEED, int(offset), int(epoch)]))


# --------------------------------------------------------------------------- #
# Counter-based (Philox-style) streams
# --------------------------------------------------------------------------- #
_U64_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15          # 2^64 / phi — the Weyl increment
_MIX_A = 0xBF58476D1CE4E5B9           # splitmix64 finalizer constants
_MIX_B = 0x94D049BB133111EB


def _mix_int(x: int) -> int:
    """splitmix64 finalizer over Python ints (exact 64-bit wraparound)."""
    x &= _U64_MASK
    x = ((x ^ (x >> 30)) * _MIX_A) & _U64_MASK
    x = ((x ^ (x >> 27)) * _MIX_B) & _U64_MASK
    return (x ^ (x >> 31)) & _U64_MASK


def _mix_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 arithmetic wraps silently)."""
    x = x.copy()
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_A)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_B)
    x ^= x >> np.uint64(31)
    return x


def _fold_key(key: Sequence[int]) -> int:
    """Absorb a tuple of integers into one well-mixed 64-bit state."""
    state = _GOLDEN
    for part in key:
        state = _mix_int(state ^ _mix_int((int(part) + 1) * _GOLDEN))
    return state


def counter_bits(key: Sequence[int], counters, draws: int = 1) -> np.ndarray:
    """Counter-based random bits: shape ``(len(counters), draws)`` uint64.

    A pure function of ``(key, counter, draw_index)`` — no state advances, so
    any subset of counters can be evaluated in any order (or in parallel) and
    produce the same bits.  The mixing is a Weyl-sequence + splitmix64
    construction, the same recipe Philox-style generators use: absorb the key,
    add a per-counter increment, finalize per draw.
    """
    if draws < 1:
        raise ValueError(f"draws must be >= 1, got {draws}")
    counters = np.atleast_1d(np.asarray(counters))
    if counters.ndim != 1:
        raise ValueError(f"counters must be one-dimensional, got shape {counters.shape}")
    base = np.uint64(_fold_key(key))
    state = _mix_array(base ^ (counters.astype(np.uint64) + np.uint64(1)) * np.uint64(_GOLDEN))
    out = np.empty((len(counters), draws), dtype=np.uint64)
    for draw in range(draws):
        out[:, draw] = _mix_array(state + np.uint64((draw * _MIX_B) & _U64_MASK))
    return out


def counter_uniforms(key: Sequence[int], counters, draws: int = 1) -> np.ndarray:
    """Counter-based uniforms in ``[0, 1)``: shape ``(len(counters), draws)``.

    Uses the top 53 bits of :func:`counter_bits`, the standard
    uint64→float64 conversion.
    """
    bits = counter_bits(key, counters, draws)
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def counter_integers(key: Sequence[int], counters, high: int, draws: int = 1) -> np.ndarray:
    """Counter-based integers in ``[0, high)``: shape ``(len(counters), draws)``."""
    if high < 1:
        raise ValueError(f"high must be >= 1, got {high}")
    uniforms = counter_uniforms(key, counters, draws)
    return np.minimum((uniforms * high).astype(np.int64), high - 1)


def sample_uniforms(sample_ids, epoch: int = 0, stream: int = 0, draws: int = 1) -> np.ndarray:
    """Per-sample uniforms keyed on ``(root_seed, epoch, stream, sample_id)``.

    This is the augmentation entry point: ``stream`` separates transforms
    (each transform instance uses its ``seed_offset``), ``epoch`` refreshes
    the bits every epoch, and ``sample_ids`` index samples in the *base*
    dataset so subsets and shards agree on every sample's bits.
    """
    return counter_uniforms((_ROOT_SEED, int(epoch), int(stream)), sample_ids, draws)


def sample_integers(sample_ids, high: int, epoch: int = 0, stream: int = 0,
                    draws: int = 1) -> np.ndarray:
    """Per-sample integers in ``[0, high)`` keyed like :func:`sample_uniforms`."""
    return counter_integers((_ROOT_SEED, int(epoch), int(stream)), sample_ids, high, draws)
