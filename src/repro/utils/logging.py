"""Library-wide logging configuration.

All modules obtain their logger through :func:`get_logger` so that user code
can silence or redirect the whole library with one call to
``logging.getLogger("repro").setLevel(...)``.
"""

from __future__ import annotations

import logging
import sys

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(levelname)s %(name)s] %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.INFO)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
