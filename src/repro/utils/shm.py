"""Shared-memory segment lifecycle + bump-allocated numpy views.

Thin, fork-oriented layer over :mod:`multiprocessing.shared_memory` used by
the process drive mode of :class:`repro.distributed.DataParallelTrainer`
and (optionally) the arena allocators in :mod:`repro.tensor.backend` and
:mod:`repro.data.pipeline`.

Design rules (they exist because of real footguns):

* **Only the creating process owns a segment.**  On Python <= 3.12 even an
  attach-only ``SharedMemory(name, create=False)`` registers the segment
  with the ``multiprocessing`` resource tracker, so a child that attaches
  and then dies triggers a spurious tracker unlink of a segment the parent
  still uses.  Worker processes therefore never construct ``SharedMemory``
  objects at all: they are forked *after* the parent carves its views, and
  inherit the mapping plus the numpy views for free.
* **Unlink is guaranteed and idempotent.**  Every owned segment is recorded
  in a module registry and unlinked via ``atexit`` if the owner forgets
  (or crashes past its ``finally``).  The registry is keyed by the owner's
  PID, so a forked child that inherits the registry and later exits
  normally will *not* unlink segments out from under the parent.
* **Views, not copies.**  :meth:`SharedSegment.view` and
  :meth:`ShmArena.alloc` return numpy arrays backed directly by the
  mapping; writes are visible to every process sharing the segment without
  any serialization.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover — numpy 1.x
    byte_bounds = np.byte_bounds

from repro.utils.logging import get_logger

logger = get_logger("utils.shm")

#: Prefix for every segment this layer creates — leak checks (tests, ops)
#: can scan ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-shm"

#: Default view alignment.  64 bytes covers every SIMD extension numpy's
#: kernels care about (AVX-512 included) and cacheline-aligns hot blocks.
DEFAULT_ALIGN = 64

_registry_lock = threading.Lock()
#: name -> (segment, owner_pid).  Module-global so ``atexit`` can sweep it.
_owned: Dict[str, Tuple["SharedSegment", int]] = {}
_atexit_installed = False


def _cleanup_owned() -> None:
    """atexit sweep: unlink every segment created *by this process*.

    Runs in forked children too (they inherit the handler), hence the PID
    guard — a child exiting must never unlink the parent's segments.
    """
    pid = os.getpid()
    with _registry_lock:
        entries = list(_owned.items())
    for name, (segment, owner_pid) in entries:
        if owner_pid != pid:
            continue
        logger.warning("shm segment %s leaked past its owner; unlinking at exit", name)
        try:
            segment.unlink()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass


def _register(segment: "SharedSegment") -> None:
    global _atexit_installed
    with _registry_lock:
        _owned[segment.name] = (segment, os.getpid())
        if not _atexit_installed:
            atexit.register(_cleanup_owned)
            _atexit_installed = True


def _unregister(name: str) -> None:
    with _registry_lock:
        _owned.pop(name, None)


def active_owned_segments() -> List[str]:
    """Names of live segments created by *this process* (leak introspection)."""
    pid = os.getpid()
    with _registry_lock:
        return sorted(name for name, (_, owner) in _owned.items() if owner == pid)


def _unique_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


class SharedSegment:
    """One owned ``/dev/shm`` segment with typed numpy views.

    Create in the parent, carve views, fork, and let workers write through
    the inherited views.  ``close_and_unlink()`` (or the context manager,
    or the atexit sweep) removes the backing file exactly once.
    """

    def __init__(self, size: int, *, name: Optional[str] = None):
        if size < 1:
            raise ValueError(f"segment size must be >= 1 byte, got {size}")
        self._shm = shared_memory.SharedMemory(
            name=name or _unique_name(), create=True, size=int(size))
        self._owner_pid = os.getpid()
        self._unlinked = False
        _register(self)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def view(self, shape, dtype, *, offset: int = 0) -> np.ndarray:
        """A C-contiguous ndarray over ``[offset, offset + nbytes)``."""
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in np.atleast_1d(shape)) if not np.isscalar(shape) \
            else (int(shape),)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if offset < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"view [{offset}, {offset + nbytes}) exceeds segment size {self.size}")
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def close_and_unlink(self) -> None:
        """Remove the backing file (idempotent).  Views die with the mapping
        only when the last process unmaps; the *name* disappears now."""
        self.unlink()

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        _unregister(self.name)
        try:
            self._shm.close()
        except Exception:  # noqa: BLE001 — buffer may be exported; unlink anyway
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        state = "unlinked" if self._unlinked else "live"
        return f"SharedSegment(name={self.name!r}, size={self.size}, {state})"


class _AttachedArray(np.ndarray):
    """ndarray subclass so :func:`attach_view` can pin the mapping's lifetime
    to the view (plain ndarrays reject attribute assignment)."""


def attach_view(name: str, shape, dtype, *, offset: int = 0) -> np.ndarray:
    """Named-view handoff: map an existing segment and return one view.

    For *unrelated* processes that cannot fork-inherit the mapping (e.g. a
    diagnostic shell attaching to a live trainer).  The caller does **not**
    become an owner — the segment is closed, never unlinked, when the view
    is garbage collected.  Note the <= 3.12 caveat in the module docstring:
    the attach itself registers with the resource tracker, so prefer fork
    inheritance inside the training process tree.
    """
    shm = shared_memory.SharedMemory(name=name, create=False)
    dtype = np.dtype(dtype)
    shape = tuple(int(s) for s in np.atleast_1d(shape)) if not np.isscalar(shape) \
        else (int(shape),)
    array = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                       offset=offset).view(_AttachedArray)
    # Keep the mapping alive as long as the view is; SharedMemory.__del__
    # closes (not unlinks) it afterwards.
    array._repro_shm_keepalive = shm
    return array


def align_up(offset: int, align: int = DEFAULT_ALIGN) -> int:
    return (offset + align - 1) & ~(align - 1)


class ShmArena:
    """Bump allocator carving aligned numpy views out of one segment.

    Built for layouts computed once up front (the process drive mode sizes
    its parameter/gradient/stats blocks before forking) but also usable as
    a best-effort backing source for the pooled allocators: :meth:`alloc`
    returns ``None`` — instead of raising — when the segment is full, so
    callers can fall back to private heap memory.
    """

    def __init__(self, segment_or_size, *, align: int = DEFAULT_ALIGN):
        if isinstance(segment_or_size, SharedSegment):
            self.segment = segment_or_size
            self._owns_segment = False
        else:
            self.segment = SharedSegment(int(segment_or_size))
            self._owns_segment = True
        if align < 1 or align & (align - 1):
            raise ValueError(f"align must be a positive power of two, got {align}")
        self.align = align
        self._offset = 0
        self._addr_lo, self._addr_hi = byte_bounds(
            self.segment.view((self.segment.size,), np.uint8))

    @property
    def remaining(self) -> int:
        return self.segment.size - self._offset

    def alloc(self, shape, dtype) -> Optional[np.ndarray]:
        """An aligned view, or ``None`` if the segment cannot hold it."""
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in np.atleast_1d(shape)) if not np.isscalar(shape) \
            else (int(shape),)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = align_up(self._offset, self.align)
        if offset + nbytes > self.segment.size:
            return None
        self._offset = offset + nbytes
        return self.segment.view(shape, dtype, offset=offset)

    def put(self, array: np.ndarray) -> Optional[np.ndarray]:
        """Allocate a view shaped like ``array`` and copy it in.

        The one-call idiom for publishing read-only data (e.g. a predictor
        pool's model weights) into shared memory; returns ``None`` — like
        :meth:`alloc` — when the segment cannot hold it.
        """
        array = np.asarray(array)
        view = self.alloc(array.shape, array.dtype)
        if view is None:
            return None
        np.copyto(view, array)
        return view

    def owns(self, array: np.ndarray) -> bool:
        """Does ``array``'s memory live inside this arena's segment?

        Lets pooled allocators (backend arena, collate rings) recycle
        shared-segment views they would otherwise reject as unsafe aliases.
        """
        try:
            lo, hi = byte_bounds(array)
        except Exception:  # noqa: BLE001 — exotic array types
            return False
        return self._addr_lo <= lo and hi <= self._addr_hi

    def reset(self) -> None:
        """Forget every allocation (views stay valid; reuse responsibly)."""
        self._offset = 0

    def close(self) -> None:
        """Unlink the segment if this arena created it."""
        if self._owns_segment:
            self.segment.unlink()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def arena_bytes_for(specs, *, align: int = DEFAULT_ALIGN) -> int:
    """Segment size that fits ``specs`` (iterable of (shape, dtype)) with
    per-allocation alignment padding."""
    total = 0
    for shape, dtype in specs:
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in np.atleast_1d(shape)) if not np.isscalar(shape) \
            else (int(shape),)
        total = align_up(total, align) + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return max(total, 1)


__all__ = [
    "DEFAULT_ALIGN",
    "SEGMENT_PREFIX",
    "SharedSegment",
    "ShmArena",
    "active_owned_segments",
    "align_up",
    "arena_bytes_for",
    "attach_view",
]
