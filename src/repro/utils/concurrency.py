"""Bounded-queue and producer-thread primitives shared across the system.

Three layers use exactly the same pattern — a bounded queue between producer
and consumer threads, a shutdown sentinel, loud propagation of producer
exceptions and a sweep that fails anything left behind:

* the data pipeline's :class:`~repro.data.pipeline.PrefetchingLoader`
  (producer threads materialise batches ahead of the training loop);
* the serving engine's :class:`~repro.serve.batcher.DynamicBatcher`
  (HTTP handler threads feed one inference worker);
* the load generator's closed-loop client fleet.

This module is that pattern, written once.  ``ClosableQueue`` is a bounded
``queue.Queue`` plus a shared ``CLOSED`` sentinel and drain helpers;
``BackgroundProducer`` runs an iterable into a queue on a daemon thread,
forwarding exceptions as :class:`ProducerFailure` items instead of dying
silently; ``run_worker_threads`` is the start-then-join fan-out used by
benchmarks and the load generator.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Iterable, List, Optional


class _Closed:
    """Singleton shutdown sentinel (its repr aids queue debugging)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CLOSED>"


#: Shutdown sentinel shared by every queue user.  Consumers receiving it must
#: stop; it is never a valid payload.
CLOSED = _Closed()


class ProducerFailure:
    """An exception captured on a producer thread, queued for the consumer.

    Producers must never die silently: wrapping the exception and enqueueing
    it lets the consumer re-raise on *its* thread, with the producer-side
    traceback attached as ``__cause__``.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error

    def reraise(self) -> None:
        raise self.error


class ClosableQueue:
    """A bounded queue with a shutdown sentinel and a pending-item sweep.

    Thin wrapper over ``queue.Queue`` — it deliberately re-exports the
    blocking semantics (``queue.Full`` / ``queue.Empty``) so callers keep
    precise control over timeouts and backpressure, and adds the three
    operations every producer/consumer pair here needs: ``close`` (enqueue
    the sentinel), ``put_cooperative`` (a put that gives up when a stop event
    fires, so producers never deadlock against a full queue at shutdown) and
    ``drain`` (sweep remaining real items, e.g. to fail their futures).
    """

    def __init__(self, maxsize: int = 0):
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)

    # -- producer side -------------------------------------------------- #
    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        """Blocking put; raises ``queue.Full`` on timeout."""
        self._queue.put(item, timeout=timeout)

    def put_nowait(self, item: Any) -> None:
        self._queue.put_nowait(item)

    def put_cooperative(self, item: Any, stop: threading.Event,
                        poll_s: float = 0.05) -> bool:
        """Put, polling ``stop`` while the queue is full.

        Returns ``False`` (item dropped) when ``stop`` fires first — the
        consumer has gone away and nothing will ever drain the queue.
        """
        while not stop.is_set():
            try:
                self._queue.put(item, timeout=poll_s)
                return True
            except queue.Full:
                continue
        return False

    def close(self) -> None:
        """Enqueue the shutdown sentinel (blocking until there is room)."""
        self._queue.put(CLOSED)

    # -- consumer side -------------------------------------------------- #
    def get(self, timeout: Optional[float] = None) -> Any:
        """Blocking get; raises ``queue.Empty`` on timeout."""
        return self._queue.get(timeout=timeout)

    def get_nowait(self) -> Any:
        return self._queue.get_nowait()

    def drain(self, on_item: Optional[Callable[[Any], None]] = None) -> int:
        """Pop everything queued right now; sentinel items are discarded.

        ``on_item`` sees each real item (used to fail pending futures).
        Returns the number of real items swept.
        """
        swept = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return swept
            if item is CLOSED:
                continue
            swept += 1
            if on_item is not None:
                on_item(item)

    def qsize(self) -> int:
        return self._queue.qsize()


class BackgroundProducer:
    """Run ``source()`` (an iterable factory) into a queue on a daemon thread.

    Items flow through ``queue``; an exception raised by the source is
    wrapped in :class:`ProducerFailure` and queued in its place, and the
    ``CLOSED`` sentinel always follows the final item so consumers know the
    stream ended.  ``stop()`` asks the producer to cease, drains the queue so
    a blocked put can finish, and joins the thread — the shutdown path is
    deterministic, never "daemon thread dies with the process".
    """

    def __init__(
        self,
        source: Callable[[], Iterable[Any]],
        out: ClosableQueue,
        name: str = "producer",
        stop: Optional[threading.Event] = None,
    ):
        self.queue = out
        self.stop_event = stop or threading.Event()
        self._source = source
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)

    def start(self) -> "BackgroundProducer":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            for item in self._source():
                if not self.queue.put_cooperative(item, self.stop_event):
                    return  # consumer is gone; skip the sentinel too
        except BaseException as error:  # noqa: BLE001 — forwarded to the consumer
            self.queue.put_cooperative(ProducerFailure(error), self.stop_event)
        self.queue.put_cooperative(CLOSED, self.stop_event)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Signal, unblock and join the producer.  Safe to call repeatedly."""
        self.stop_event.set()
        # A producer blocked on put() polls the stop event between attempts;
        # draining just accelerates its exit under heavy queueing.
        self.queue.drain()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


def start_worker_threads(target: Callable[[int], None], count: int,
                         name: str = "worker") -> List[threading.Thread]:
    """Start ``count`` daemon threads running ``target(worker_id)``; no join.

    The non-blocking half of :func:`run_worker_threads`, for callers that
    orchestrate the workers while they run (the data-parallel training engine
    participates in per-step barriers with its replica workers).
    """
    threads = [
        threading.Thread(target=target, args=(i,), name=f"{name}-{i}", daemon=True)
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def run_worker_threads(target: Callable[[int], None], count: int,
                       name: str = "worker") -> List[threading.Thread]:
    """Start ``count`` daemon threads running ``target(worker_id)``; join all.

    The fan-out/join used by the closed-loop load generator and the pipeline
    benchmark.  Returns the (joined) threads for inspection.
    """
    threads = start_worker_threads(target, count, name=name)
    for thread in threads:
        thread.join()
    return threads


__all__ = [
    "CLOSED",
    "BackgroundProducer",
    "ClosableQueue",
    "ProducerFailure",
    "run_worker_threads",
    "start_worker_threads",
]
