"""Process-based replica workers with shared-memory gradient exchange.

:class:`ProcessReplicaGroup` is the transport layer behind
``DataParallelTrainer(mode="process")``: it owns one shared-memory segment
per worker generation, forks ``world_size`` replica processes, and runs the
same lockstep arrive/resume protocol the thread mode runs on barriers —
except nothing crosses a pickle boundary per step.

Segment layout (carved once per generation by :class:`~repro.utils.shm.ShmArena`)::

    [ param block   | one view per master parameter — the master's p.data is
                    | rebound onto these views *before* forking, so the
                    | parent's in-place optimizer step IS the broadcast      ]
    [ grad blocks   | world_size × (one view per parameter) — each worker
                    | copies its backward results here each step             ]
    [ presence      | world_size × n_params uint8 — which params produced a
                    | gradient this step (preserves None-grad semantics)     ]
    [ stats         | world_size × 8 float64 — per-step loss/acc/n plus
                    | cumulative stall/compute/samples/batches               ]
    [ buffer blocks | world_size × (one view per model buffer) — BatchNorm
                    | running stats cross the epoch boundary here            ]

Why fork + inheritance instead of named attach
----------------------------------------------
Workers never construct ``SharedMemory`` objects: they are forked *after*
the parent carves its numpy views and simply inherit the mapping.  On
Python <= 3.12 an attach-only ``SharedMemory(name)`` registers the segment
with the resource tracker, so a worker dying mid-step would trigger a
spurious tracker unlink of a segment the parent still owns.  With pure
inheritance the parent is the sole owner and
:mod:`repro.utils.shm`'s registry + ``atexit`` sweep can guarantee unlink
on normal *and* abnormal exit.

Synchronisation
---------------
Not ``multiprocessing.Barrier`` — a timed-out barrier wait breaks the
barrier permanently, turning a slow step into an unrecoverable epoch.
Instead: one shared *arrive* semaphore (workers release, the parent
acquires ``world_size`` tokens in a short-interval poll loop that also
checks worker liveness and drains error reports from per-worker pipes) and
one *resume* semaphore **per worker** (a single shared resume semaphore
would let a fast worker steal a second token and run two steps ahead).
Commands (epoch start, stop) travel over the per-worker pipes; they are
small tuples, sent once per epoch — never per step.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.profiling.pipeline import PipelineStats
from repro.telemetry import tracing as _tracing
from repro.utils import get_logger
from repro.utils.shm import ShmArena, arena_bytes_for

logger = get_logger("distributed.process")

#: Liveness-poll interval for semaphore waits on both sides.
_POLL_S = 0.2

#: Generous per-step timeout, mirroring the thread mode's barrier timeout.
DEFAULT_STEP_TIMEOUT_S = 600.0

#: Per-rank stats row layout (float64 slots).
_STAT_LOSS, _STAT_ACC, _STAT_HAS_ACC, _STAT_N = 0, 1, 2, 3
_STAT_STALL, _STAT_COMPUTE, _STAT_SAMPLES, _STAT_BATCHES = 4, 5, 6, 7
_STAT_SLOTS = 8


class ReplicaError(RuntimeError):
    """A replica worker process died or raised during a lockstep epoch."""


class _ParentGone(Exception):
    """Worker-side: the parent process disappeared; exit quietly."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessReplicaGroup:
    """One generation of forked replica workers over one shared segment.

    The group snapshots the trainer's model structure at construction; when
    an epoch callback restructures the master (Cuttlefish's low-rank switch,
    head widening, ...), :meth:`matches` returns ``False`` and the engine
    shuts this generation down and forks a fresh one against the new layout.
    """

    def __init__(self, trainer):
        if not fork_available():  # pragma: no cover — all target platforms fork
            raise RuntimeError(
                "DataParallelTrainer(mode='process') needs the 'fork' start "
                "method (unavailable on this platform); use mode='thread'")
        self.trainer = trainer
        self.world = trainer.world_size
        self._shutdown_done = False
        self._parent_pid = os.getpid()
        #: rank → non-error pipe messages consumed by a health poll before
        #: their consumer asked for them (telemetry payloads).
        self._stashed: dict = {}

        model = trainer.model
        self._params = list(model.parameters())
        self._buffers = [buf for _, buf in model.named_buffers()]
        self._buffer_specs = [(tuple(buf.data.shape), buf.data.dtype.str)
                              for buf in self._buffers]
        n_params = len(self._params)

        specs = [(p.data.shape, p.data.dtype) for p in self._params]
        specs += [(p.data.shape, p.data.dtype)
                  for _ in range(self.world) for p in self._params]
        specs.append(((self.world, max(n_params, 1)), np.uint8))
        specs.append(((self.world, _STAT_SLOTS), np.float64))
        specs += [(buf.data.shape, buf.data.dtype)
                  for _ in range(self.world) for buf in self._buffers]
        self.arena = ShmArena(arena_bytes_for(specs))

        # Rebind master parameters onto segment views.  The optimizers update
        # p.data strictly in place, so every post-step value is immediately
        # visible to the forked workers — the broadcast costs zero copies.
        self._param_views: List[np.ndarray] = []
        for p in self._params:
            view = self.arena.alloc(p.data.shape, p.data.dtype)
            np.copyto(view, p.data)
            p.data = view
            self._param_views.append(view)

        self._grad_views: List[List[np.ndarray]] = []
        for _ in range(self.world):
            self._grad_views.append([self.arena.alloc(p.data.shape, p.data.dtype)
                                     for p in self._params])
        self._presence = self.arena.alloc((self.world, max(n_params, 1)), np.uint8)
        self._presence[:] = 0
        self._stats = self.arena.alloc((self.world, _STAT_SLOTS), np.float64)
        self._stats[:] = 0.0
        self._buffer_views: List[List[np.ndarray]] = []
        for _ in range(self.world):
            self._buffer_views.append([self.arena.alloc(buf.data.shape, buf.data.dtype)
                                       for buf in self._buffers])

        ctx = multiprocessing.get_context("fork")
        self._arrive = ctx.Semaphore(0)
        self._resume = [ctx.Semaphore(0) for _ in range(self.world)]
        self._conns = []
        self._procs = []
        child_ends = []
        for rank in range(self.world):
            parent_end, child_end = ctx.Pipe()
            self._conns.append(parent_end)
            child_ends.append(child_end)
        for rank in range(self.world):
            proc = ctx.Process(target=self._worker_main,
                               args=(rank, child_ends[rank]),
                               daemon=True, name=f"dp-proc-{rank}")
            proc.start()
            self._procs.append(proc)
        for child_end in child_ends:
            child_end.close()
        logger.info("forked %d replica workers over shm segment %s (%d bytes)",
                    self.world, self.arena.segment.name, self.arena.segment.size)

    # ------------------------------------------------------------------ #
    # Structure tracking
    # ------------------------------------------------------------------ #
    def matches(self, model) -> bool:
        """Does ``model`` still have the structure this generation forked?

        Parameter *identity* is the check — a callback that swaps a layer
        rebinds ``p.data`` off the segment views even when shapes coincide,
        and workers would silently train the old weights.
        """
        params = list(model.parameters())
        if len(params) != len(self._param_views):
            return False
        if any(p.data is not view for p, view in zip(params, self._param_views)):
            return False
        buffer_specs = [(tuple(buf.data.shape), buf.data.dtype.str)
                        for _, buf in model.named_buffers()]
        return buffer_specs == self._buffer_specs

    # ------------------------------------------------------------------ #
    # Worker side (runs in the forked child)
    # ------------------------------------------------------------------ #
    def _worker_main(self, rank: int, conn) -> None:
        status = 1
        try:
            trainer = self.trainer
            model = trainer.model
            loader = trainer.replica_loaders[rank]
            params = self._params
            grad_views = self._grad_views[rank]
            presence = self._presence[rank]
            stats_row = self._stats[rank]
            buffer_views = self._buffer_views[rank]
            trace_ready = False
            while True:
                command = self._recv_command(conn)
                if command[0] == "stop":
                    status = 0
                    return
                _, epoch, steps, readback_buffers, trace = command
                if trace and not trace_ready:
                    # The fork inherited the parent's enabled tracer and a
                    # copy of its event buffer — re-home it as this rank's
                    # lane (or start fresh if tracing was enabled post-fork).
                    if _tracing.enabled():
                        _tracing.reset_after_fork(f"rank {rank}")
                    else:
                        _tracing.enable(f"rank {rank}")
                    trace_ready = True
                model.train()
                set_epoch = getattr(loader, "set_epoch", None)
                if set_epoch is not None:
                    set_epoch(epoch)
                stall = compute = 0.0
                samples = batches = 0
                iterator = iter(loader)
                try:
                    for _ in range(steps):
                        requested = time.perf_counter()
                        batch = next(iterator)
                        delivered = time.perf_counter()
                        stall += delivered - requested
                        batches += 1
                        loss, accuracy, n = trainer._replica_step(model, batch)
                        for i, p in enumerate(params):
                            grad = p.grad
                            if grad is None:
                                presence[i] = 0
                            else:
                                presence[i] = 1
                                np.copyto(grad_views[i], grad)
                        compute_end = time.perf_counter()
                        compute += compute_end - delivered
                        samples += n
                        stats_row[_STAT_LOSS] = loss
                        stats_row[_STAT_ACC] = accuracy if accuracy is not None else 0.0
                        stats_row[_STAT_HAS_ACC] = 1.0 if accuracy is not None else 0.0
                        stats_row[_STAT_N] = float(n)
                        stats_row[_STAT_STALL] = stall
                        stats_row[_STAT_COMPUTE] = compute
                        stats_row[_STAT_SAMPLES] = float(samples)
                        stats_row[_STAT_BATCHES] = float(batches)
                        if trace:
                            _tracing.record_span("step", requested, compute_end,
                                                 cat="dp", rank=rank)
                            _tracing.record_span("data_wait", requested,
                                                 delivered, cat="dp",
                                                 parent="step")
                        self._arrive.release()
                        self._await_resume(rank)
                        if trace:
                            _tracing.record_span("sync_wait", compute_end,
                                                 time.perf_counter(), cat="dp")
                finally:
                    close = getattr(iterator, "close", None)
                    if close is not None:
                        close()
                # Epoch-end buffer phase: expose this replica's buffers (BN
                # running stats), wait for the parent to reduce, and — when
                # syncing — adopt the reduced values for the next epoch.
                buffers = [buf for _, buf in model.named_buffers()]
                for view, buf in zip(buffer_views, buffers):
                    np.copyto(view, buf.data)
                self._arrive.release()
                if trace:
                    # Ship this epoch's spans AFTER the arrive release: the
                    # parent is then actively draining pipes (a send larger
                    # than the pipe buffer would otherwise deadlock against
                    # a parent still blocked on the arrive semaphore).
                    session = _tracing.current_session()
                    conn.send(("telemetry", rank,
                               session.drain_payload() if session else None))
                self._await_resume(rank)
                if readback_buffers:
                    for view, buf in zip(buffer_views, buffers):
                        np.copyto(buf.data, view)
        except _ParentGone:
            status = 2
        except BaseException:  # noqa: BLE001 — shipped to the parent verbatim
            try:
                conn.send(("error", rank, traceback.format_exc()))
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
            # _exit: never run parent-registered atexit hooks (the shm
            # registry's PID guard is belt; this is braces) and never flush
            # inherited stdio buffers twice.
            os._exit(status)

    def _recv_command(self, conn) -> Tuple:
        while not conn.poll(_POLL_S):
            if os.getppid() != self._parent_pid:
                raise _ParentGone()
        try:
            return conn.recv()
        except (EOFError, OSError) as error:
            raise _ParentGone() from error

    def _await_resume(self, rank: int) -> None:
        sem = self._resume[rank]
        while not sem.acquire(timeout=_POLL_S):
            if os.getppid() != self._parent_pid:
                raise _ParentGone()

    # ------------------------------------------------------------------ #
    # Parent side: the lockstep protocol
    # ------------------------------------------------------------------ #
    def begin_epoch(self, epoch: int, steps: int, readback_buffers: bool,
                    trace: bool = False) -> None:
        for conn in self._conns:
            conn.send(("epoch", epoch, steps, readback_buffers, trace))

    def await_replicas(self, timeout: float = DEFAULT_STEP_TIMEOUT_S) -> None:
        """Block until every worker has arrived; raise on death or error."""
        deadline = time.monotonic() + timeout
        for _ in range(self.world):
            while not self._arrive.acquire(timeout=_POLL_S):
                self._check_health()
                if time.monotonic() > deadline:
                    raise ReplicaError(
                        f"replica workers did not arrive within {timeout:.0f}s "
                        "(worker hung?)")

    def release_replicas(self) -> None:
        for sem in self._resume:
            sem.release()

    def _check_health(self) -> None:
        for rank, (proc, conn) in enumerate(zip(self._procs, self._conns)):
            message = None
            try:
                if conn.poll(0):
                    message = conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None:
                if message[0] == "error":
                    raise ReplicaError(
                        f"replica worker {message[1]} failed:\n{message[2]}")
                # Non-error traffic (a telemetry payload from a fast rank)
                # must survive the health poll for collect_telemetry.
                self._stashed.setdefault(rank, []).append(message)
            if not proc.is_alive():
                raise ReplicaError(
                    f"replica worker {rank} died (exitcode={proc.exitcode}) "
                    "without reporting an error")

    def collect_telemetry(self, timeout: float = 30.0) -> List[Optional[dict]]:
        """One ``drain_payload`` dict per rank (sent after the buffer-phase
        arrive); call between ``await_replicas`` and ``release_replicas``."""
        payloads: List[Optional[dict]] = [None] * self.world
        deadline = time.monotonic() + timeout
        for rank, conn in enumerate(self._conns):
            message = None
            stash = self._stashed.get(rank)
            while stash:
                candidate = stash.pop(0)
                if candidate[0] == "telemetry":
                    message = candidate
                    break
            while message is None:
                if conn.poll(_POLL_S):
                    candidate = conn.recv()
                    if candidate[0] == "error":
                        raise ReplicaError(
                            f"replica worker {candidate[1]} failed:\n{candidate[2]}")
                    if candidate[0] == "telemetry":
                        message = candidate
                elif time.monotonic() > deadline:
                    raise ReplicaError(
                        f"replica worker {rank} sent no telemetry within "
                        f"{timeout:.0f}s")
            payloads[rank] = message[2]
        return payloads

    # ------------------------------------------------------------------ #
    # Parent side: shared-state accessors
    # ------------------------------------------------------------------ #
    def replica_grads(self) -> List[List[Optional[np.ndarray]]]:
        """Rank-major per-parameter gradient views (``None`` where absent)."""
        return [[self._grad_views[rank][i] if self._presence[rank, i] else None
                 for i in range(len(self._params))]
                for rank in range(self.world)]

    def read_step(self, rank: int) -> Tuple[float, Optional[float], int]:
        row = self._stats[rank]
        accuracy = float(row[_STAT_ACC]) if row[_STAT_HAS_ACC] else None
        return float(row[_STAT_LOSS]), accuracy, int(row[_STAT_N])

    def epoch_replica_stats(self) -> List[PipelineStats]:
        out = []
        for rank in range(self.world):
            row = self._stats[rank]
            stats = PipelineStats(
                stall_seconds=float(row[_STAT_STALL]),
                compute_seconds=float(row[_STAT_COMPUTE]),
                batches=int(row[_STAT_BATCHES]),
                samples=int(row[_STAT_SAMPLES]))
            out.append(stats)
        return out

    def rank_buffer_views(self) -> List[List[np.ndarray]]:
        return self._buffer_views

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def shutdown(self, *, force: bool = False) -> None:
        """Stop workers, detach master params to private memory, unlink.

        ``force=True`` skips the graceful stop (used when the epoch aborted
        mid-step and workers are blocked awaiting a resume that will never
        come).  Idempotent; safe from ``finally`` and ``__del__``.
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        if not force:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except Exception:  # noqa: BLE001
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
        self._detach_params()
        self.arena.close()

    def _detach_params(self) -> None:
        """Copy master params (and any aliased grads) back to private heap
        arrays so the model outlives the segment (export, checkpoint, eval)."""
        rank0_grads = self._grad_views[0] if self._grad_views else []
        for i, (p, view) in enumerate(zip(self._params, self._param_views)):
            if p.data is view:
                p.data = view.copy()
            if i < len(rank0_grads) and p.grad is not None \
                    and p.grad is rank0_grads[i]:
                p.grad = p.grad.copy()

    def __del__(self):  # pragma: no cover — GC safety net
        try:
            self.shutdown(force=True)
        except Exception:  # noqa: BLE001
            pass


__all__ = [
    "DEFAULT_STEP_TIMEOUT_S",
    "ProcessReplicaGroup",
    "ReplicaError",
    "fork_available",
]
