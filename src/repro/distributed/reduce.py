"""Deterministic bucketed all-reduce primitives for thread-based data parallelism.

Floating-point addition is not associative, so a gradient all-reduce that sums
"whichever replica finished first" produces run-to-run bit differences even
with perfectly deterministic per-replica math.  The reduction here removes the
scheduler from the numerics entirely:

* replicas are combined in a **fixed pairwise reduction tree** over rank order
  (``(0+1) + (2+3) …``), so the float-op sequence is a pure function of
  ``world_size`` — never of worker arrival order;
* parameters are packed into contiguous flat **buckets** in model parameter
  order before reduction (one tree per bucket instead of one per tensor),
  which keeps the reduce loop in long vectorised adds;
* the mean is taken by a single post-sum division by ``world_size``, matching
  the "average of per-replica mean losses == mean over the union batch"
  identity that :class:`~repro.data.sampler.ShardedSampler`'s equal-length
  padded shards guarantee.

Everything in this module operates on plain numpy arrays so it can be tested
without models and reused for buffer (BatchNorm statistics) synchronisation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Default bucket capacity in *elements* (not bytes): 2^18 float32s = 1 MiB.
DEFAULT_BUCKET_ELEMS = 1 << 18


def tree_reduce(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Sum ``arrays`` with a fixed pairwise reduction tree over index order.

    The combination order depends only on ``len(arrays)``: neighbours are
    added pairwise, then pair-sums pairwise, and so on — the same tree a
    recursive-halving all-reduce walks.  A single input is returned as-is
    (callers that mutate the result must copy first in that case).
    """
    if not arrays:
        raise ValueError("tree_reduce needs at least one array")
    level: List[np.ndarray] = list(arrays)
    while len(level) > 1:
        paired: List[np.ndarray] = []
        for i in range(0, len(level) - 1, 2):
            paired.append(level[i] + level[i + 1])
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def plan_buckets(sizes: Sequence[int], bucket_elems: int = DEFAULT_BUCKET_ELEMS) -> List[List[int]]:
    """Partition tensor indices (in order) into contiguous buckets.

    Greedy in parameter order: a bucket closes once it holds ``bucket_elems``
    elements.  A single tensor larger than the cap gets a bucket of its own —
    tensors are never split, so pack/unpack stay simple views.
    """
    if bucket_elems < 1:
        raise ValueError(f"bucket_elems must be >= 1, got {bucket_elems}")
    buckets: List[List[int]] = []
    current: List[int] = []
    filled = 0
    for index, size in enumerate(sizes):
        if current and filled + int(size) > bucket_elems:
            buckets.append(current)
            current, filled = [], 0
        current.append(index)
        filled += int(size)
    if current:
        buckets.append(current)
    return buckets


def _pack(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Flatten ``arrays`` into one contiguous 1-D buffer (C order)."""
    if len(arrays) == 1:
        return np.ascontiguousarray(arrays[0]).ravel()
    return np.concatenate([np.ascontiguousarray(a).ravel() for a in arrays])


def allreduce_gradients(
    replica_grads: Sequence[Sequence[Optional[np.ndarray]]],
    out_grads: Sequence[Optional[np.ndarray]],
    bucket_elems: int = DEFAULT_BUCKET_ELEMS,
) -> int:
    """Mean-reduce per-replica gradients into ``out_grads``, deterministically.

    ``replica_grads[r][i]`` is replica ``r``'s gradient for parameter ``i``
    (replica 0 may alias ``out_grads`` — the master's accumulators).  Every
    replica must agree on which parameters have gradients; a parameter whose
    gradient is ``None`` everywhere is skipped (the optimizer skips it too),
    while a rank-dependent ``None`` means the replicas ran different graphs
    and raises ``RuntimeError`` rather than silently dropping a contribution.

    Returns the number of parameters reduced.
    """
    world_size = len(replica_grads)
    if world_size < 1:
        raise ValueError("allreduce_gradients needs at least one replica")
    out_grads = list(out_grads)
    n = len(out_grads)
    for rank, grads in enumerate(replica_grads):
        if len(grads) != n:
            raise ValueError(
                f"replica {rank} tracks {len(grads)} gradients, expected {n} "
                "(model structure diverged across replicas)")
    present = [replica_grads[0][i] is not None for i in range(n)]
    for rank in range(1, world_size):
        for i in range(n):
            if (replica_grads[rank][i] is not None) != present[i]:
                raise RuntimeError(
                    f"gradient presence mismatch for parameter {i}: rank 0 "
                    f"{'has' if present[i] else 'lacks'} a gradient but rank "
                    f"{rank} does not agree — replicas ran different graphs")
    active = [i for i in range(n) if present[i]]
    if not active:
        return 0
    if world_size == 1:
        return len(active)  # grads already live in the master accumulators

    for bucket in plan_buckets([replica_grads[0][i].size for i in active], bucket_elems):
        indices = [active[b] for b in bucket]
        flats = [_pack([replica_grads[rank][i] for i in indices])
                 for rank in range(world_size)]
        total = tree_reduce(flats)
        total /= np.asarray(world_size, dtype=total.dtype)
        offset = 0
        for i in indices:
            out = out_grads[i]
            span = total[offset:offset + out.size]
            np.copyto(out, span.reshape(out.shape))
            offset += out.size
    return len(active)


def broadcast_arrays(sources: Sequence[np.ndarray],
                     destinations: Sequence[Sequence[np.ndarray]]) -> None:
    """Copy each source array into the matching slot of every destination set."""
    for dest_set in destinations:
        if len(dest_set) != len(sources):
            raise ValueError(
                f"broadcast destination tracks {len(dest_set)} arrays, "
                f"expected {len(sources)}")
        for src, dst in zip(sources, dest_set):
            np.copyto(dst, src)


def mean_reduce_buffers(buffer_sets: Sequence[Sequence[np.ndarray]]) -> List[np.ndarray]:
    """Deterministically average aligned buffer sets (BatchNorm statistics).

    Float buffers are tree-summed over rank order and divided by the replica
    count; non-float buffers (counters, masks) take rank 0's value — there is
    no meaningful mean for them.  Returns fresh arrays (inputs untouched).
    """
    world_size = len(buffer_sets)
    if world_size < 1:
        raise ValueError("mean_reduce_buffers needs at least one replica")
    n = len(buffer_sets[0])
    for rank, buffers in enumerate(buffer_sets):
        if len(buffers) != n:
            raise ValueError(f"replica {rank} has {len(buffers)} buffers, expected {n}")
    reduced: List[np.ndarray] = []
    for i in range(n):
        arrays = [buffer_sets[rank][i] for rank in range(world_size)]
        if not np.issubdtype(arrays[0].dtype, np.floating):
            reduced.append(arrays[0].copy())
            continue
        total = tree_reduce(arrays)
        if total is arrays[0]:
            total = total.copy()
        total /= np.asarray(world_size, dtype=total.dtype)
        reduced.append(total)
    return reduced


__all__ = [
    "DEFAULT_BUCKET_ELEMS",
    "allreduce_gradients",
    "broadcast_arrays",
    "mean_reduce_buffers",
    "plan_buckets",
    "tree_reduce",
]
