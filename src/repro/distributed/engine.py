"""Data-parallel training: replica workers + deterministic all-reduce.

``DataParallelTrainer`` drives ``world_size`` replica workers in lockstep,
on threads (``mode="thread"``, the default) or on forked worker processes
with shared-memory gradient exchange (``mode="process"`` — the GIL-free
path; see :mod:`repro.distributed.process`).  Thread mode:

1. every worker pulls the next batch of *its* rank's shard (a
   :class:`~repro.data.sampler.ShardedSampler`-backed pipeline loader) and
   runs forward/backward on its own model copy — concurrently, on threads
   (the hot kernels are BLAS-bound numpy calls that release the GIL, so
   replicas genuinely overlap);
2. at a barrier, the driver thread mean-reduces all replica gradients with
   the fixed-tree bucketed all-reduce (:mod:`repro.distributed.reduce`) into
   the master model's accumulators, applies the trainer's ``grad_hook``, and
   takes a **single** optimizer step on the master parameters;
3. the stepped parameters are broadcast back to every replica and the
   workers resume with the next batch.

Process mode runs the same lockstep protocol with one worker *process* per
rank: master parameters live in a shared-memory segment (the in-place
optimizer step doubles as the broadcast), workers write gradients into
per-rank shared blocks, and the parent reduces them with the *same*
fixed-tree bucketed all-reduce.  Nothing is pickled per step.

Determinism contract
--------------------
Per-replica computation is sequential numpy; the reduction tree's float-op
order depends only on ``world_size``; meters and buffer synchronisation walk
replicas in rank order.  Nothing observes worker arrival order, so results
are bit-stable across reruns and thread/process schedules, and a
``world_size=1`` run executes the exact float-op sequence of the
single-process pipeline-loader :class:`~repro.train.trainer.Trainer` (in
thread mode rank 0 *is* the master model and the reduce/broadcast steps are
no-ops; in process mode the master's gradients alias rank 0's shared block —
zero float ops either way).  Thread and process modes are bit-identical to
*each other* at every ``world_size``: same per-replica float-op sequence,
same reduce tree, same buffer averaging.

Scope
-----
Epoch-level callbacks work unchanged (they run on the driver between epochs
and may mutate the master model — replicas are re-cloned when the master's
parameter structure changes).  Step-level callbacks fire on the driver
around the optimizer step with rank 0's batch; callbacks that mutate model
weights *per batch* (e.g. XNOR re-binarisation) are not supported under
``world_size > 1``.  Custom ``loss_fn``/``loss_hook`` callables run on
worker threads against the replica model they are handed — they must be
stateless (the defaults are).
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.pipeline import BatchStream
from repro.distributed.reduce import (
    DEFAULT_BUCKET_ELEMS,
    allreduce_gradients,
    broadcast_arrays,
    mean_reduce_buffers,
)
from repro.profiling.pipeline import PipelineStats
from repro.telemetry import tracing as _tracing
from repro.tensor import functional as F
from repro.train.metrics import AverageMeter, top_k_accuracy
from repro.train.trainer import Callback, Trainer
from repro.utils import get_logger, start_worker_threads

logger = get_logger("distributed")

#: Generous per-step timeout: a replica that exceeds it is presumed hung
#: (deadlock guard — barriers otherwise wait forever on a dead worker).
_BARRIER_TIMEOUT_S = 600.0


class DataParallelTrainer(Trainer):
    """Trainer drive mode running ``world_size`` threaded replica workers.

    Parameters (beyond :class:`~repro.train.trainer.Trainer`'s)
    ----------------------------------------------------------
    world_size:
        Number of replicas.  ``1`` reproduces the single-process pipeline
        path bit-for-bit through the same lockstep machinery.
    mode:
        ``"thread"`` (default) runs replicas on worker threads — they only
        overlap inside GIL-releasing BLAS kernels, but need no setup.
        ``"process"`` forks one worker process per rank with parameters and
        gradients exchanged through shared memory — true multi-core
        scaling, bit-identical to thread mode.  Process mode holds OS
        resources (workers + a ``/dev/shm`` segment); call
        :meth:`shutdown` when done (``run_experiment`` does).
    replica_loaders:
        One :class:`BatchStream` per rank, each yielding that rank's shard
        (build with :func:`repro.data.pipeline.build_replica_loaders`).
        Defaults to sharding ``train_loader`` via
        :func:`repro.data.pipeline.shard_loader`.
    bucket_elems:
        All-reduce bucket capacity in elements (default 2^18 ≈ 1 MiB of
        float32 gradients per reduction tree).
    sync_buffers_each_epoch:
        Deterministically average float buffers (BatchNorm running stats)
        across replicas after every training epoch so the master model —
        the one ``evaluate`` sees — reflects all shards, not just rank 0's.
    """

    def __init__(
        self,
        model,
        optimizer,
        train_loader: BatchStream,
        val_loader: Optional[BatchStream] = None,
        *,
        world_size: int = 1,
        mode: str = "thread",
        replica_loaders: Optional[Sequence[BatchStream]] = None,
        bucket_elems: int = DEFAULT_BUCKET_ELEMS,
        sync_buffers_each_epoch: bool = True,
        **trainer_kwargs,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if mode == "process":
            from repro.distributed.process import fork_available

            if not fork_available():  # pragma: no cover — all targets fork
                raise RuntimeError(
                    "mode='process' needs the 'fork' start method "
                    "(unavailable on this platform); use mode='thread'")
        if replica_loaders is None:
            if world_size == 1:
                replica_loaders = [train_loader]
            else:
                from repro.data.pipeline import shard_loader

                replica_loaders = [shard_loader(train_loader, rank, world_size)
                                   for rank in range(world_size)]
        replica_loaders = list(replica_loaders)
        if len(replica_loaders) != world_size:
            raise ValueError(
                f"expected {world_size} replica loaders, got {len(replica_loaders)}")
        # The default loss path is replicated per worker (the base closure
        # records logits on the trainer — racy across threads); remember
        # whether the caller supplied their own before super() installs one.
        self._uses_default_loss = trainer_kwargs.get("loss_fn") is None
        super().__init__(model, optimizer, train_loader, val_loader, **trainer_kwargs)
        self.world_size = world_size
        self.mode = mode
        self.replica_loaders = replica_loaders
        self.bucket_elems = bucket_elems
        self.sync_buffers_each_epoch = sync_buffers_each_epoch
        #: rank → model; rank 0 shares the master model (zero-copy).
        self.replica_models: List = [self.model]
        self._replica_shapes: List[Tuple[int, ...]] = []
        self._process_group = None
        if mode == "thread":
            self._rebuild_replicas()
        else:
            # Process replicas are forked lazily at the first train_epoch
            # (callbacks may still restructure the master before then).
            self._replica_shapes = self._master_shapes()

    # ------------------------------------------------------------------ #
    # Replica lifecycle
    # ------------------------------------------------------------------ #
    def _master_shapes(self) -> List[Tuple[int, ...]]:
        return [tuple(p.data.shape) for p in self.model.parameters()]

    def _rebuild_replicas(self) -> None:
        """(Re)clone the master into ranks 1..N-1 and record its structure."""
        self.replica_models = [self.model]
        for rank in range(1, self.world_size):
            clone = copy.deepcopy(self.model)
            clone.zero_grad()
            self.replica_models.append(clone)
        self._replica_shapes = self._master_shapes()

    def _sync_replica_structure(self) -> None:
        """Re-clone replicas when an epoch callback restructured the master.

        Methods like Cuttlefish swap full-rank layers for factorized ones
        between epochs (and rebuild the optimizer); stale replica copies
        would then compute gradients for parameters that no longer exist.
        """
        if self.world_size == 1:
            return
        if self._master_shapes() != self._replica_shapes:
            logger.info("master model structure changed; re-cloning %d replicas",
                        self.world_size - 1)
            self._rebuild_replicas()

    # ------------------------------------------------------------------ #
    # Per-replica step (runs on worker threads)
    # ------------------------------------------------------------------ #
    def _replica_step(self, model, batch) -> Tuple[float, Optional[float], int]:
        """Forward + backward on one replica; returns (loss, accuracy, n).

        Mirrors the base trainer's float-op sequence exactly: default loss →
        ``loss_hook`` extra term → zero grads → backward.  Accuracy follows
        ``Trainer._batch_accuracy``'s rules (default loss path, plain (N, C)
        integer-label classification batches only).
        """
        traced = _tracing.enabled()
        if traced:
            start = time.perf_counter()
        logits = None
        if self._uses_default_loss:
            logits = model(batch[0])
            loss = F.softmax_cross_entropy(logits, batch[-1],
                                           label_smoothing=self.label_smoothing)
        else:
            loss = self.loss_fn(model, batch)
        if self.loss_hook is not None:
            extra = self.loss_hook(model)
            if extra is not None:
                loss = loss + extra
        if traced:
            forward_end = time.perf_counter()
        model.zero_grad()
        loss.backward()
        if traced:
            backward_end = time.perf_counter()
        accuracy = None
        if logits is not None and logits.data.ndim == 2:
            labels = np.asarray(batch[-1])
            if labels.ndim == 1 and len(labels) == len(logits.data) \
                    and np.issubdtype(labels.dtype, np.integer):
                accuracy = top_k_accuracy(logits.data, labels, k=1)
        if traced:
            _tracing.record_span("forward", start, forward_end, cat="dp",
                                 parent="step")
            _tracing.record_span("backward", forward_end, backward_end,
                                 cat="dp", parent="step")
            _tracing.record_span("accounting", backward_end,
                                 time.perf_counter(), cat="dp", parent="step")
        return loss.item(), accuracy, len(batch[-1])

    # ------------------------------------------------------------------ #
    # Driver-side synchronisation
    # ------------------------------------------------------------------ #
    def _reduce_gradients(self) -> None:
        if self.world_size == 1:
            return  # rank 0 is the master; its accumulators already hold the grads
        replica_grads = [[p.grad for p in m.parameters()] for m in self.replica_models]
        allreduce_gradients(replica_grads,
                            [p.grad for p in self.model.parameters()],
                            bucket_elems=self.bucket_elems)

    def _broadcast_parameters(self) -> None:
        if self.world_size == 1:
            return
        broadcast_arrays([p.data for p in self.model.parameters()],
                         [[p.data for p in m.parameters()]
                          for m in self.replica_models[1:]])

    def _sync_buffers(self) -> None:
        """Tree-average float buffers (BN running stats) across replicas."""
        if self.world_size == 1 or not self.sync_buffers_each_epoch:
            return
        buffer_sets = [[buf.data for _, buf in m.named_buffers()]
                       for m in self.replica_models]
        for reduced, buffers in zip(mean_reduce_buffers(buffer_sets),
                                    zip(*[[buf for _, buf in m.named_buffers()]
                                          for m in self.replica_models])):
            for buf in buffers:
                np.copyto(buf.data, reduced)

    # ------------------------------------------------------------------ #
    # The lockstep epoch
    # ------------------------------------------------------------------ #
    def train_epoch(self) -> Dict[str, float]:
        if self.mode == "process":
            return self._train_epoch_process()
        return self._train_epoch_thread()

    def _train_epoch_thread(self) -> Dict[str, float]:
        self._sync_replica_structure()
        for model in self.replica_models:
            model.train()
        epoch = self.epochs_completed
        for loader in self.replica_loaders:
            set_epoch = getattr(loader, "set_epoch", None)
            if set_epoch is not None:
                set_epoch(epoch)
        steps = min(len(loader) for loader in self.replica_loaders)
        if self.max_batches_per_epoch is not None:
            steps = min(steps, self.max_batches_per_epoch)
        world = self.world_size

        loss_meter, acc_meter = AverageMeter(), AverageMeter()
        replica_stats = [PipelineStats() for _ in range(world)]
        # Per-step result slots, written by workers before the arrive barrier
        # and read by the driver after it (the barrier is the memory fence).
        step_loss = [0.0] * world
        step_acc: List[Optional[float]] = [None] * world
        step_n = [0] * world
        rank0_batch: List = [None]
        errors: List[BaseException] = []
        arrive = threading.Barrier(world + 1)
        resume = threading.Barrier(world + 1)

        def worker(rank: int) -> None:
            model = self.replica_models[rank]
            loader = self.replica_loaders[rank]
            stats = replica_stats[rank]
            iterator = iter(loader)
            try:
                for _ in range(steps):
                    requested = time.perf_counter()
                    batch = next(iterator)
                    delivered = time.perf_counter()
                    stats.observe_stall(delivered - requested)
                    traced = _tracing.enabled()
                    loss, accuracy, n = self._replica_step(model, batch)
                    step_loss[rank], step_acc[rank], step_n[rank] = loss, accuracy, n
                    if rank == 0:
                        rank0_batch[0] = batch
                    compute_end = time.perf_counter()
                    stats.observe_compute(compute_end - delivered, n)
                    if traced:
                        _tracing.record_span("step", requested, compute_end,
                                             cat="dp", rank=rank)
                        _tracing.record_span("data_wait", requested, delivered,
                                             cat="dp", parent="step")
                    arrive.wait(timeout=_BARRIER_TIMEOUT_S)
                    resume.wait(timeout=_BARRIER_TIMEOUT_S)
                    if traced:
                        # Time parked at the arrive/resume barriers — the
                        # part of worker wall time the step span can't see.
                        _tracing.record_span("sync_wait", compute_end,
                                             time.perf_counter(), cat="dp")
            except threading.BrokenBarrierError:
                pass  # another party failed; its error is already recorded
            except BaseException as error:  # noqa: BLE001 — re-raised on the driver
                errors.append(error)
                arrive.abort()
                resume.abort()
            finally:
                close = getattr(iterator, "close", None)
                if close is not None:
                    close()

        completed_steps = 0
        wall_start = time.perf_counter()
        threads = start_worker_threads(worker, world, name="dp-replica")
        try:
            for step in range(steps):
                arrive.wait(timeout=_BARRIER_TIMEOUT_S)
                for callback in self.callbacks:
                    callback.on_batch_begin(self, step, rank0_batch[0])
                with _tracing.span("allreduce", cat="dp"):
                    self._reduce_gradients()
                    if self.grad_hook is not None:
                        self.grad_hook(self.model)
                with _tracing.span("optimizer", cat="dp"):
                    self.optimizer.step()
                with _tracing.span("broadcast", cat="dp"):
                    self._broadcast_parameters()
                # Meters walk replicas in rank order — fixed accumulation
                # order regardless of which worker finished first.
                for rank in range(world):
                    loss_meter.update(step_loss[rank], step_n[rank])
                    if step_acc[rank] is not None:
                        acc_meter.update(step_acc[rank], step_n[rank])
                batch_logs = {"loss": step_loss[0]}
                if step_acc[0] is not None:
                    batch_logs["accuracy"] = step_acc[0]
                for callback in self.callbacks:
                    callback.on_batch_end(self, step, batch_logs)
                completed_steps += 1
                resume.wait(timeout=_BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            pass  # fall through to the error re-raise below
        except BaseException as error:  # driver-side failure: release workers
            errors.append(error)
            raise
        finally:
            arrive.abort()
            resume.abort()
            for thread in threads:
                thread.join(timeout=30.0)
        if errors:
            raise errors[0]
        if completed_steps < steps:
            # A barrier broke without any recorded error (e.g. a worker hung
            # past the timeout): never report a truncated epoch as success.
            raise RuntimeError(
                f"data-parallel epoch stopped after {completed_steps} of "
                f"{steps} steps (replica worker hung or barrier timed out)")
        wall_seconds = time.perf_counter() - wall_start

        self._sync_buffers()
        stats = PipelineStats()
        for rank, replica in enumerate(replica_stats):
            stats.merge(replica)
            stats.extra[f"replica{rank}_stall_seconds"] = replica.stall_seconds
            stats.extra[f"replica{rank}_compute_seconds"] = replica.compute_seconds
        stats.extra["world_size"] = float(world)
        stats.extra["wall_seconds"] = wall_seconds
        self.epochs_completed += 1
        self.last_epoch_pipeline_stats = stats
        self.pipeline_stats.merge(stats)
        # merge() sums the per-replica stall/compute (which overlap in wall
        # time); keep a cumulative wall clock so consumers can report true
        # data-parallel throughput (samples / wall, not samples / thread-time).
        self.pipeline_stats.extra["wall_seconds"] = (
            self.pipeline_stats.extra.get("wall_seconds", 0.0) + wall_seconds)
        self.pipeline_stats.extra["world_size"] = float(world)
        return {
            "loss": loss_meter.average,
            "accuracy": acc_meter.average,
            "data_stall_seconds": stats.stall_seconds,
            "data_compute_seconds": stats.compute_seconds,
            # Replica threads overlap, so throughput is samples over *wall*
            # time — the per-replica stall/compute sums live in the stats.
            "samples_per_sec": stats.samples / wall_seconds if wall_seconds > 0 else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Process mode
    # ------------------------------------------------------------------ #
    def _ensure_process_group(self):
        """Fork (or re-fork after a structural change) the worker generation."""
        from repro.distributed.process import ProcessReplicaGroup

        group = self._process_group
        if group is not None and not group.matches(self.model):
            logger.info("master model structure changed; re-forking %d replica "
                        "workers", self.world_size)
            group.shutdown()
            group = self._process_group = None
        if group is None:
            group = self._process_group = ProcessReplicaGroup(self)
        return group

    def _rank0_random_access_loader(self):
        """Rank 0's underlying random-access loader, for parent-side batch
        reload when a step callback actually consumes the batch."""
        loader = self.replica_loaders[0]
        inner = getattr(loader, "loader", loader)  # unwrap PrefetchingLoader
        return inner if hasattr(inner, "load_batch") else None

    def _reduce_gradients_process(self, group, params) -> None:
        replica_grads = group.replica_grads()
        if self.world_size == 1:
            # Rank 0's shared block holds the only contribution — alias it
            # into the master accumulators: zero copies, zero float ops, so
            # ws=1 stays bit-identical to the single-process Trainer.
            for p, grad in zip(params, replica_grads[0]):
                p.grad = grad
            return
        for p, grad0 in zip(params, replica_grads[0]):
            if grad0 is None:
                p.grad = None
            elif p.grad is None or p.grad.shape != grad0.shape \
                    or p.grad.dtype != grad0.dtype:
                p.grad = np.empty_like(grad0)
        allreduce_gradients(replica_grads, [p.grad for p in params],
                            bucket_elems=self.bucket_elems)

    def _sync_buffers_process(self, group) -> None:
        """Epoch-end buffer exchange (workers are parked at the buffer phase).

        With syncing on and ``world_size > 1``: deterministically average
        float buffers across ranks, adopt the result in the master *and*
        write it back for every worker (mirrors thread mode's all-replica
        broadcast).  Otherwise: adopt rank 0's buffers — in thread mode the
        master IS rank 0, so this is what single-master semantics mean here.
        """
        buffer_sets = group.rank_buffer_views()
        master_buffers = [buf for _, buf in self.model.named_buffers()]
        if self.world_size == 1 or not self.sync_buffers_each_epoch:
            for view, buf in zip(buffer_sets[0], master_buffers):
                np.copyto(buf.data, view)
            return
        reduced = mean_reduce_buffers(buffer_sets)
        for j, buf in enumerate(master_buffers):
            np.copyto(buf.data, reduced[j])
            for rank in range(self.world_size):
                np.copyto(buffer_sets[rank][j], reduced[j])

    def _train_epoch_process(self) -> Dict[str, float]:
        group = self._ensure_process_group()
        epoch = self.epochs_completed
        steps = min(len(loader) for loader in self.replica_loaders)
        if self.max_batches_per_epoch is not None:
            steps = min(steps, self.max_batches_per_epoch)
        world = self.world_size
        params = list(self.model.parameters())
        loss_meter, acc_meter = AverageMeter(), AverageMeter()
        # Reloading rank 0's batch costs a full materialisation — only pay
        # it when a step callback actually overrides on_batch_begin.
        needs_batch = any(type(cb).on_batch_begin is not Callback.on_batch_begin
                          for cb in self.callbacks)
        rank0_loader = self._rank0_random_access_loader() if needs_batch else None
        readback = self.sync_buffers_each_epoch and world > 1

        traced = _tracing.enabled()
        wall_start = time.perf_counter()
        try:
            group.begin_epoch(epoch, steps, readback, trace=traced)
            for step in range(steps):
                group.await_replicas()
                batch = (rank0_loader.load_batch(step, epoch)
                         if rank0_loader is not None else None)
                for callback in self.callbacks:
                    callback.on_batch_begin(self, step, batch)
                with _tracing.span("allreduce", cat="dp"):
                    self._reduce_gradients_process(group, params)
                    if self.grad_hook is not None:
                        self.grad_hook(self.model)
                with _tracing.span("optimizer", cat="dp"):
                    self.optimizer.step()
                # Parameters live in shared memory and were stepped in
                # place — the workers already see them; no broadcast.
                for rank in range(world):
                    loss, accuracy, n = group.read_step(rank)
                    loss_meter.update(loss, n)
                    if accuracy is not None:
                        acc_meter.update(accuracy, n)
                loss0, acc0, _ = group.read_step(0)
                batch_logs = {"loss": loss0}
                if acc0 is not None:
                    batch_logs["accuracy"] = acc0
                for callback in self.callbacks:
                    callback.on_batch_end(self, step, batch_logs)
                group.release_replicas()
            group.await_replicas()
            self._sync_buffers_process(group)
            if traced:
                # Each worker shipped its per-rank span buffer over its pipe
                # right after the buffer-phase arrive; merge them onto this
                # process's timeline before waking the workers.
                session = _tracing.current_session()
                for payload in group.collect_telemetry():
                    session.absorb(payload)
            group.release_replicas()
        except BaseException:
            # Workers may be desynced mid-step: tear the generation down
            # hard (terminate + unlink) rather than leave zombies + segment.
            group.shutdown(force=True)
            self._process_group = None
            raise
        wall_seconds = time.perf_counter() - wall_start

        stats = PipelineStats()
        for rank, replica in enumerate(group.epoch_replica_stats()):
            stats.merge(replica)
            stats.extra[f"replica{rank}_stall_seconds"] = replica.stall_seconds
            stats.extra[f"replica{rank}_compute_seconds"] = replica.compute_seconds
        stats.extra["world_size"] = float(world)
        stats.extra["wall_seconds"] = wall_seconds
        self.epochs_completed += 1
        self.last_epoch_pipeline_stats = stats
        self.pipeline_stats.merge(stats)
        self.pipeline_stats.extra["wall_seconds"] = (
            self.pipeline_stats.extra.get("wall_seconds", 0.0) + wall_seconds)
        self.pipeline_stats.extra["world_size"] = float(world)
        return {
            "loss": loss_meter.average,
            "accuracy": acc_meter.average,
            "data_stall_seconds": stats.stall_seconds,
            "data_compute_seconds": stats.compute_seconds,
            "samples_per_sec": stats.samples / wall_seconds if wall_seconds > 0 else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Release process-mode resources: stop workers, detach the master's
        parameters back to private memory, unlink the shared segment.

        No-op in thread mode; idempotent; training can resume afterwards
        (the next epoch forks a fresh generation).  ``run_experiment`` calls
        this in a ``finally``; direct users should too.
        """
        group = self._process_group
        if group is not None:
            self._process_group = None
            group.shutdown()

    def __del__(self):  # pragma: no cover — GC safety net
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001
            pass


__all__ = ["DataParallelTrainer"]
