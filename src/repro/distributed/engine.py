"""Thread-based data-parallel training: replica workers + deterministic all-reduce.

``DataParallelTrainer`` drives ``world_size`` replica workers in lockstep:

1. every worker pulls the next batch of *its* rank's shard (a
   :class:`~repro.data.sampler.ShardedSampler`-backed pipeline loader) and
   runs forward/backward on its own model copy — concurrently, on threads
   (the hot kernels are BLAS-bound numpy calls that release the GIL, so
   replicas genuinely overlap);
2. at a barrier, the driver thread mean-reduces all replica gradients with
   the fixed-tree bucketed all-reduce (:mod:`repro.distributed.reduce`) into
   the master model's accumulators, applies the trainer's ``grad_hook``, and
   takes a **single** optimizer step on the master parameters;
3. the stepped parameters are broadcast back to every replica and the
   workers resume with the next batch.

Determinism contract
--------------------
Per-replica computation is sequential numpy; the reduction tree's float-op
order depends only on ``world_size``; meters and buffer synchronisation walk
replicas in rank order.  Nothing observes worker arrival order, so results
are bit-stable across reruns and thread schedules, and a ``world_size=1``
run executes the exact float-op sequence of the single-process
pipeline-loader :class:`~repro.train.trainer.Trainer` (rank 0 *is* the
master model; the reduce/broadcast steps are no-ops).

Scope
-----
Epoch-level callbacks work unchanged (they run on the driver between epochs
and may mutate the master model — replicas are re-cloned when the master's
parameter structure changes).  Step-level callbacks fire on the driver
around the optimizer step with rank 0's batch; callbacks that mutate model
weights *per batch* (e.g. XNOR re-binarisation) are not supported under
``world_size > 1``.  Custom ``loss_fn``/``loss_hook`` callables run on
worker threads against the replica model they are handed — they must be
stateless (the defaults are).
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.pipeline import BatchStream
from repro.distributed.reduce import (
    DEFAULT_BUCKET_ELEMS,
    allreduce_gradients,
    broadcast_arrays,
    mean_reduce_buffers,
)
from repro.profiling.pipeline import PipelineStats
from repro.tensor import functional as F
from repro.train.metrics import AverageMeter, top_k_accuracy
from repro.train.trainer import Trainer
from repro.utils import get_logger, start_worker_threads

logger = get_logger("distributed")

#: Generous per-step timeout: a replica that exceeds it is presumed hung
#: (deadlock guard — barriers otherwise wait forever on a dead worker).
_BARRIER_TIMEOUT_S = 600.0


class DataParallelTrainer(Trainer):
    """Trainer drive mode running ``world_size`` threaded replica workers.

    Parameters (beyond :class:`~repro.train.trainer.Trainer`'s)
    ----------------------------------------------------------
    world_size:
        Number of replicas.  ``1`` reproduces the single-process pipeline
        path bit-for-bit through the same lockstep machinery.
    replica_loaders:
        One :class:`BatchStream` per rank, each yielding that rank's shard
        (build with :func:`repro.data.pipeline.build_replica_loaders`).
        Defaults to sharding ``train_loader`` via
        :func:`repro.data.pipeline.shard_loader`.
    bucket_elems:
        All-reduce bucket capacity in elements (default 2^18 ≈ 1 MiB of
        float32 gradients per reduction tree).
    sync_buffers_each_epoch:
        Deterministically average float buffers (BatchNorm running stats)
        across replicas after every training epoch so the master model —
        the one ``evaluate`` sees — reflects all shards, not just rank 0's.
    """

    def __init__(
        self,
        model,
        optimizer,
        train_loader: BatchStream,
        val_loader: Optional[BatchStream] = None,
        *,
        world_size: int = 1,
        replica_loaders: Optional[Sequence[BatchStream]] = None,
        bucket_elems: int = DEFAULT_BUCKET_ELEMS,
        sync_buffers_each_epoch: bool = True,
        **trainer_kwargs,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if replica_loaders is None:
            if world_size == 1:
                replica_loaders = [train_loader]
            else:
                from repro.data.pipeline import shard_loader

                replica_loaders = [shard_loader(train_loader, rank, world_size)
                                   for rank in range(world_size)]
        replica_loaders = list(replica_loaders)
        if len(replica_loaders) != world_size:
            raise ValueError(
                f"expected {world_size} replica loaders, got {len(replica_loaders)}")
        # The default loss path is replicated per worker (the base closure
        # records logits on the trainer — racy across threads); remember
        # whether the caller supplied their own before super() installs one.
        self._uses_default_loss = trainer_kwargs.get("loss_fn") is None
        super().__init__(model, optimizer, train_loader, val_loader, **trainer_kwargs)
        self.world_size = world_size
        self.replica_loaders = replica_loaders
        self.bucket_elems = bucket_elems
        self.sync_buffers_each_epoch = sync_buffers_each_epoch
        #: rank → model; rank 0 shares the master model (zero-copy).
        self.replica_models: List = [self.model]
        self._replica_shapes: List[Tuple[int, ...]] = []
        self._rebuild_replicas()

    # ------------------------------------------------------------------ #
    # Replica lifecycle
    # ------------------------------------------------------------------ #
    def _master_shapes(self) -> List[Tuple[int, ...]]:
        return [tuple(p.data.shape) for p in self.model.parameters()]

    def _rebuild_replicas(self) -> None:
        """(Re)clone the master into ranks 1..N-1 and record its structure."""
        self.replica_models = [self.model]
        for rank in range(1, self.world_size):
            clone = copy.deepcopy(self.model)
            clone.zero_grad()
            self.replica_models.append(clone)
        self._replica_shapes = self._master_shapes()

    def _sync_replica_structure(self) -> None:
        """Re-clone replicas when an epoch callback restructured the master.

        Methods like Cuttlefish swap full-rank layers for factorized ones
        between epochs (and rebuild the optimizer); stale replica copies
        would then compute gradients for parameters that no longer exist.
        """
        if self.world_size == 1:
            return
        if self._master_shapes() != self._replica_shapes:
            logger.info("master model structure changed; re-cloning %d replicas",
                        self.world_size - 1)
            self._rebuild_replicas()

    # ------------------------------------------------------------------ #
    # Per-replica step (runs on worker threads)
    # ------------------------------------------------------------------ #
    def _replica_step(self, model, batch) -> Tuple[float, Optional[float], int]:
        """Forward + backward on one replica; returns (loss, accuracy, n).

        Mirrors the base trainer's float-op sequence exactly: default loss →
        ``loss_hook`` extra term → zero grads → backward.  Accuracy follows
        ``Trainer._batch_accuracy``'s rules (default loss path, plain (N, C)
        integer-label classification batches only).
        """
        logits = None
        if self._uses_default_loss:
            logits = model(batch[0])
            loss = F.softmax_cross_entropy(logits, batch[-1],
                                           label_smoothing=self.label_smoothing)
        else:
            loss = self.loss_fn(model, batch)
        if self.loss_hook is not None:
            extra = self.loss_hook(model)
            if extra is not None:
                loss = loss + extra
        model.zero_grad()
        loss.backward()
        accuracy = None
        if logits is not None and logits.data.ndim == 2:
            labels = np.asarray(batch[-1])
            if labels.ndim == 1 and len(labels) == len(logits.data) \
                    and np.issubdtype(labels.dtype, np.integer):
                accuracy = top_k_accuracy(logits.data, labels, k=1)
        return loss.item(), accuracy, len(batch[-1])

    # ------------------------------------------------------------------ #
    # Driver-side synchronisation
    # ------------------------------------------------------------------ #
    def _reduce_gradients(self) -> None:
        if self.world_size == 1:
            return  # rank 0 is the master; its accumulators already hold the grads
        replica_grads = [[p.grad for p in m.parameters()] for m in self.replica_models]
        allreduce_gradients(replica_grads,
                            [p.grad for p in self.model.parameters()],
                            bucket_elems=self.bucket_elems)

    def _broadcast_parameters(self) -> None:
        if self.world_size == 1:
            return
        broadcast_arrays([p.data for p in self.model.parameters()],
                         [[p.data for p in m.parameters()]
                          for m in self.replica_models[1:]])

    def _sync_buffers(self) -> None:
        """Tree-average float buffers (BN running stats) across replicas."""
        if self.world_size == 1 or not self.sync_buffers_each_epoch:
            return
        buffer_sets = [[buf.data for _, buf in m.named_buffers()]
                       for m in self.replica_models]
        for reduced, buffers in zip(mean_reduce_buffers(buffer_sets),
                                    zip(*[[buf for _, buf in m.named_buffers()]
                                          for m in self.replica_models])):
            for buf in buffers:
                np.copyto(buf.data, reduced)

    # ------------------------------------------------------------------ #
    # The lockstep epoch
    # ------------------------------------------------------------------ #
    def train_epoch(self) -> Dict[str, float]:
        self._sync_replica_structure()
        for model in self.replica_models:
            model.train()
        epoch = self.epochs_completed
        for loader in self.replica_loaders:
            set_epoch = getattr(loader, "set_epoch", None)
            if set_epoch is not None:
                set_epoch(epoch)
        steps = min(len(loader) for loader in self.replica_loaders)
        if self.max_batches_per_epoch is not None:
            steps = min(steps, self.max_batches_per_epoch)
        world = self.world_size

        loss_meter, acc_meter = AverageMeter(), AverageMeter()
        replica_stats = [PipelineStats() for _ in range(world)]
        # Per-step result slots, written by workers before the arrive barrier
        # and read by the driver after it (the barrier is the memory fence).
        step_loss = [0.0] * world
        step_acc: List[Optional[float]] = [None] * world
        step_n = [0] * world
        rank0_batch: List = [None]
        errors: List[BaseException] = []
        arrive = threading.Barrier(world + 1)
        resume = threading.Barrier(world + 1)

        def worker(rank: int) -> None:
            model = self.replica_models[rank]
            loader = self.replica_loaders[rank]
            stats = replica_stats[rank]
            iterator = iter(loader)
            try:
                for _ in range(steps):
                    requested = time.perf_counter()
                    batch = next(iterator)
                    delivered = time.perf_counter()
                    stats.observe_stall(delivered - requested)
                    loss, accuracy, n = self._replica_step(model, batch)
                    step_loss[rank], step_acc[rank], step_n[rank] = loss, accuracy, n
                    if rank == 0:
                        rank0_batch[0] = batch
                    stats.observe_compute(time.perf_counter() - delivered, n)
                    arrive.wait(timeout=_BARRIER_TIMEOUT_S)
                    resume.wait(timeout=_BARRIER_TIMEOUT_S)
            except threading.BrokenBarrierError:
                pass  # another party failed; its error is already recorded
            except BaseException as error:  # noqa: BLE001 — re-raised on the driver
                errors.append(error)
                arrive.abort()
                resume.abort()
            finally:
                close = getattr(iterator, "close", None)
                if close is not None:
                    close()

        completed_steps = 0
        wall_start = time.perf_counter()
        threads = start_worker_threads(worker, world, name="dp-replica")
        try:
            for step in range(steps):
                arrive.wait(timeout=_BARRIER_TIMEOUT_S)
                for callback in self.callbacks:
                    callback.on_batch_begin(self, step, rank0_batch[0])
                self._reduce_gradients()
                if self.grad_hook is not None:
                    self.grad_hook(self.model)
                self.optimizer.step()
                self._broadcast_parameters()
                # Meters walk replicas in rank order — fixed accumulation
                # order regardless of which worker finished first.
                for rank in range(world):
                    loss_meter.update(step_loss[rank], step_n[rank])
                    if step_acc[rank] is not None:
                        acc_meter.update(step_acc[rank], step_n[rank])
                batch_logs = {"loss": step_loss[0]}
                if step_acc[0] is not None:
                    batch_logs["accuracy"] = step_acc[0]
                for callback in self.callbacks:
                    callback.on_batch_end(self, step, batch_logs)
                completed_steps += 1
                resume.wait(timeout=_BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            pass  # fall through to the error re-raise below
        except BaseException as error:  # driver-side failure: release workers
            errors.append(error)
            raise
        finally:
            arrive.abort()
            resume.abort()
            for thread in threads:
                thread.join(timeout=30.0)
        if errors:
            raise errors[0]
        if completed_steps < steps:
            # A barrier broke without any recorded error (e.g. a worker hung
            # past the timeout): never report a truncated epoch as success.
            raise RuntimeError(
                f"data-parallel epoch stopped after {completed_steps} of "
                f"{steps} steps (replica worker hung or barrier timed out)")
        wall_seconds = time.perf_counter() - wall_start

        self._sync_buffers()
        stats = PipelineStats()
        for rank, replica in enumerate(replica_stats):
            stats.merge(replica)
            stats.extra[f"replica{rank}_stall_seconds"] = replica.stall_seconds
            stats.extra[f"replica{rank}_compute_seconds"] = replica.compute_seconds
        stats.extra["world_size"] = float(world)
        stats.extra["wall_seconds"] = wall_seconds
        self.epochs_completed += 1
        self.last_epoch_pipeline_stats = stats
        self.pipeline_stats.merge(stats)
        # merge() sums the per-replica stall/compute (which overlap in wall
        # time); keep a cumulative wall clock so consumers can report true
        # data-parallel throughput (samples / wall, not samples / thread-time).
        self.pipeline_stats.extra["wall_seconds"] = (
            self.pipeline_stats.extra.get("wall_seconds", 0.0) + wall_seconds)
        self.pipeline_stats.extra["world_size"] = float(world)
        return {
            "loss": loss_meter.average,
            "accuracy": acc_meter.average,
            "data_stall_seconds": stats.stall_seconds,
            "data_compute_seconds": stats.compute_seconds,
            # Replica threads overlap, so throughput is samples over *wall*
            # time — the per-replica stall/compute sums live in the stats.
            "samples_per_sec": stats.samples / wall_seconds if wall_seconds > 0 else 0.0,
        }


__all__ = ["DataParallelTrainer"]
