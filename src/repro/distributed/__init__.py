"""Thread-based data-parallel training with deterministic gradient all-reduce.

The scale-out counterpart of the streaming data pipeline: ``ShardedSampler``
shards feed N replica workers, whose gradients meet in a fixed-order bucketed
reduction tree (bit-stable regardless of worker arrival order) before a
single optimizer step on the master model.  See DESIGN.md §11.
"""

from repro.distributed.engine import DataParallelTrainer
from repro.distributed.reduce import (
    DEFAULT_BUCKET_ELEMS,
    allreduce_gradients,
    broadcast_arrays,
    mean_reduce_buffers,
    plan_buckets,
    tree_reduce,
)

__all__ = [
    "DEFAULT_BUCKET_ELEMS",
    "DataParallelTrainer",
    "allreduce_gradients",
    "broadcast_arrays",
    "mean_reduce_buffers",
    "plan_buckets",
    "tree_reduce",
]
