"""Data-parallel training with deterministic gradient all-reduce.

The scale-out counterpart of the streaming data pipeline: ``ShardedSampler``
shards feed N replica workers — threads (``mode="thread"``) or forked
processes exchanging gradients through shared memory (``mode="process"``,
the GIL-free path) — whose gradients meet in a fixed-order bucketed
reduction tree (bit-stable regardless of worker arrival order) before a
single optimizer step on the master model.  See DESIGN.md §11 and §13.
"""

from repro.distributed.engine import DataParallelTrainer
from repro.distributed.process import (
    ProcessReplicaGroup,
    ReplicaError,
    fork_available,
)
from repro.distributed.reduce import (
    DEFAULT_BUCKET_ELEMS,
    allreduce_gradients,
    broadcast_arrays,
    mean_reduce_buffers,
    plan_buckets,
    tree_reduce,
)

__all__ = [
    "DEFAULT_BUCKET_ELEMS",
    "DataParallelTrainer",
    "ProcessReplicaGroup",
    "ReplicaError",
    "allreduce_gradients",
    "broadcast_arrays",
    "fork_available",
    "mean_reduce_buffers",
    "plan_buckets",
    "tree_reduce",
]
