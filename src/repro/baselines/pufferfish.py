"""Pufferfish baseline (Wang et al., 2021a).

Pufferfish is the manually-tuned predecessor of Cuttlefish: the user picks

* ``full_rank_epochs`` (E) — how long to warm up at full rank,
* ``num_unfactorized`` (K) — how many leading candidate layers stay full rank,
* ``rank_ratio`` (ρ) — one global ratio applied to every factorized layer.

At epoch E the selected layers are SVD-factorized at rank ρ·full_rank and
training continues on the hybrid network, exactly like Cuttlefish's switch but
with every hyper-parameter fixed in advance.  The paper uses ρ = 1/4 and
E = 80 as the Pufferfish defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import nn
from repro.core.factorize import factorize_model
from repro.core.stable_rank import full_rank_of
from repro.train.methods import ExperimentContext, Method, MethodResult, low_rank_ratios, register_method
from repro.train.trainer import Callback, Trainer
from repro.utils import get_logger

logger = get_logger("baselines.pufferfish")


@dataclass
class PufferfishConfig:
    """Manually tuned factorization hyper-parameters s = (E, K, R)."""

    full_rank_epochs: int = 80
    num_unfactorized: int = 1     # K counts the always-full-rank leading candidate layers
    rank_ratio: float = 0.25
    extra_bn: bool = False


@dataclass
class PufferfishReport:
    switch_epoch: Optional[int] = None
    selected_ranks: Dict[str, int] = field(default_factory=dict)
    factorized_paths: List[str] = field(default_factory=list)
    params_before: int = 0
    params_after: int = 0

    @property
    def compression_ratio(self) -> float:
        return self.params_before / max(self.params_after, 1)


class PufferfishCallback(Callback):
    """Trainer callback that performs the fixed-schedule factorization."""

    def __init__(self, config: PufferfishConfig, candidate_paths: Optional[Sequence[str]] = None):
        self.config = config
        self.candidate_paths = list(candidate_paths) if candidate_paths is not None else None
        self.report = PufferfishReport()

    def on_train_begin(self, trainer: Trainer) -> None:
        if self.candidate_paths is None:
            model = trainer.model
            if not hasattr(model, "factorization_candidates"):
                raise ValueError("model does not define factorization_candidates(); pass candidate_paths")
            self.candidate_paths = model.factorization_candidates()
        self.report.params_before = trainer.model.num_parameters()

    def on_epoch_end(self, trainer: Trainer, epoch: int, logs: Dict[str, float]) -> None:
        if self.report.switch_epoch is not None:
            return
        if epoch + 1 < self.config.full_rank_epochs:
            return
        self._factorize(trainer, epoch)

    def _factorize(self, trainer: Trainer, epoch: int) -> None:
        model = trainer.model
        # Skip the first K candidate layers (hybrid architecture).
        skip = max(self.config.num_unfactorized - 1, 0)
        selected = self.candidate_paths[skip:]
        ranks = {}
        for path in selected:
            module = model.get_submodule(path)
            ranks[path] = max(1, int(round(full_rank_of(module) * self.config.rank_ratio)))
        factorized = factorize_model(model, ranks, extra_bn=self.config.extra_bn)
        trainer.rebuild_optimizer_params()
        self.report.switch_epoch = epoch + 1
        self.report.selected_ranks = ranks
        self.report.factorized_paths = factorized
        self.report.params_after = model.num_parameters()
        logger.info("Pufferfish switch at epoch %d: %d layers factorized at ratio %.3g",
                    epoch + 1, len(factorized), self.config.rank_ratio)


@register_method("pufferfish")
class PufferfishMethod(Method):
    """Registered-method adapter: factorize on a fixed, manually tuned schedule."""

    description = "Pufferfish: manually tuned warm-up, layer set and global rank ratio"
    uses_label_smoothing = True

    def __init__(self, pufferfish_config: Optional[PufferfishConfig] = None,
                 candidate_paths: Optional[Sequence[str]] = None):
        self.config = pufferfish_config
        self.candidate_paths = candidate_paths
        self._callback: Optional[PufferfishCallback] = None

    def prepare(self, model, context: ExperimentContext):
        config = self.config or PufferfishConfig(
            full_rank_epochs=max(context.config.epochs // 2, 1), rank_ratio=0.25)
        self._callback = PufferfishCallback(config, candidate_paths=self.candidate_paths)
        return model

    def callbacks(self):
        return [self._callback]

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        report = self._callback.report
        epochs_full = float(report.switch_epoch or context.config.epochs)
        result.epochs_full = epochs_full
        result.epochs_low = context.config.epochs - epochs_full
        result.rank_ratios = low_rank_ratios(context.model)
        result.extra = {"switch_epoch": float(report.switch_epoch or -1),
                        "compression": report.compression_ratio}
        return result


def train_pufferfish(model, optimizer, train_loader, val_loader=None, epochs: int = 10,
                     config: Optional[PufferfishConfig] = None, scheduler=None,
                     candidate_paths: Optional[Sequence[str]] = None, loss_fn=None,
                     forward_fn=None, label_smoothing: float = 0.0,
                     max_batches_per_epoch: Optional[int] = None):
    """Train with the Pufferfish fixed schedule; returns (trainer, report)."""
    config = config or PufferfishConfig()
    callback = PufferfishCallback(config, candidate_paths=candidate_paths)
    trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=forward_fn, scheduler=scheduler, callbacks=[callback],
                      label_smoothing=label_smoothing, max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    return trainer, callback.report
