"""Iterative Magnitude Pruning with weight rewinding (Frankle et al., 2019).

Each pruning round trains for the full schedule, prunes the smallest-magnitude
20% of the *remaining* prunable weights (unstructured, global threshold per
layer), and rewinds the surviving weights to their values at a small rewind
epoch (epoch 6 in the paper) before retraining.  The mask is enforced both on
the weights and on their gradients.

Because IMP retrains the network once per pruning level it is far more
expensive than full-rank training — the end-to-end runtime columns of Table 1
(6.55 h vs 0.82 h for ResNet-18) follow directly from the number of rounds.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.train.methods import ExperimentContext, Method, MethodResult, register_method
from repro.train.trainer import Trainer
from repro.utils import get_logger

logger = get_logger("baselines.imp")


@dataclass
class IMPConfig:
    prune_fraction: float = 0.2        # fraction of remaining weights pruned per round
    rounds: int = 3
    rewind_epoch: int = 1              # epoch whose weights are restored after each pruning
    epochs_per_round: int = 10


@dataclass
class IMPReport:
    sparsity_per_round: List[float] = field(default_factory=list)
    val_accuracy_per_round: List[float] = field(default_factory=list)
    remaining_parameters: int = 0
    total_parameters: int = 0
    total_seconds: float = 0.0

    @property
    def final_sparsity(self) -> float:
        return self.sparsity_per_round[-1] if self.sparsity_per_round else 0.0

    @property
    def effective_parameters(self) -> int:
        """Unpruned weight count — the paper reports this as the IMP model size."""
        return self.remaining_parameters


def prunable_parameters(model: nn.Module) -> Dict[str, nn.Parameter]:
    """Conv/Linear weights (not biases, not norm scales) are prunable."""
    params: Dict[str, nn.Parameter] = {}
    for name, module in model.named_modules():
        if isinstance(module, (nn.Conv2d, nn.Linear)) and name:
            params[f"{name}.weight"] = module.weight
    return params


class MaskManager:
    """Holds the binary masks and enforces them on weights and gradients."""

    def __init__(self, model: nn.Module):
        self.masks: Dict[str, np.ndarray] = {
            name: np.ones_like(param.data) for name, param in prunable_parameters(model).items()
        }

    def sparsity(self) -> float:
        total = sum(mask.size for mask in self.masks.values())
        kept = sum(mask.sum() for mask in self.masks.values())
        return 1.0 - kept / max(total, 1)

    def remaining(self) -> int:
        return int(sum(mask.sum() for mask in self.masks.values()))

    def prune_by_magnitude(self, model: nn.Module, fraction: float) -> None:
        """Prune ``fraction`` of the currently surviving weights, per layer."""
        for name, param in prunable_parameters(model).items():
            mask = self.masks[name]
            alive = param.data[mask > 0]
            if alive.size == 0:
                continue
            threshold = np.quantile(np.abs(alive), fraction)
            mask[np.abs(param.data) <= threshold] = 0.0
            self.masks[name] = mask

    def apply_to_weights(self, model: nn.Module) -> None:
        for name, param in prunable_parameters(model).items():
            param.data *= self.masks[name]

    def grad_hook(self, model: nn.Module) -> None:
        for name, param in prunable_parameters(model).items():
            if param.grad is not None:
                param.grad *= self.masks[name]


@register_method("imp")
class IMPMethod(Method):
    """Registered-method adapter: iterative magnitude pruning with rewinding.

    IMP restarts optimisation once per pruning round, so it overrides
    ``execute`` with :func:`train_imp`'s multi-round loop instead of the
    single ``Trainer.fit`` the default lifecycle provides.
    """

    description = "IMP: iterative magnitude pruning with weight rewinding (retrains per round)"

    def __init__(self, imp_config: Optional[IMPConfig] = None):
        self.config = imp_config
        self.report: Optional[IMPReport] = None

    def execute(self, context: ExperimentContext) -> None:
        config = self.config or IMPConfig(
            rounds=2, epochs_per_round=max(context.config.epochs // 2, 1))
        self.config = config
        context.model, self.report = train_imp(
            context.model, context.optimizer_factory, context.train_loader,
            context.val_loader, config=config,
            max_batches_per_epoch=context.config.max_batches_per_epoch)

    def finalize(self, context: ExperimentContext) -> MethodResult:
        report = self.report
        return MethodResult(
            params=report.effective_parameters,
            accuracy=report.val_accuracy_per_round[-1],
            wallclock_seconds=report.total_seconds,
            epochs_full=float(context.config.epochs),
            overhead_multiplier=float(self.config.rounds),
            extra={"sparsity": report.final_sparsity, "rounds": float(self.config.rounds)},
        )


def train_imp(model, optimizer_factory, train_loader, val_loader=None,
              config: Optional[IMPConfig] = None, scheduler_factory=None, loss_fn=None,
              forward_fn=None, max_batches_per_epoch: Optional[int] = None):
    """Run IMP with rewinding; returns (model, report).

    ``optimizer_factory(model)`` must build a fresh optimizer for each round
    (IMP restarts optimisation after every pruning).
    """
    config = config or IMPConfig()
    masks = MaskManager(model)
    report = IMPReport(total_parameters=model.num_parameters())
    rewind_state: Optional[Dict[str, np.ndarray]] = None

    for round_index in range(config.rounds):
        optimizer = optimizer_factory(model)
        scheduler = scheduler_factory(optimizer) if scheduler_factory else None
        trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                          forward_fn=forward_fn, scheduler=scheduler, grad_hook=masks.grad_hook,
                          max_batches_per_epoch=max_batches_per_epoch)
        masks.apply_to_weights(model)
        for epoch in range(config.epochs_per_round):
            trainer.fit(1)
            if rewind_state is None and epoch + 1 == config.rewind_epoch:
                rewind_state = copy.deepcopy(model.state_dict())
        report.total_seconds += trainer.total_train_seconds
        val = trainer.evaluate() if val_loader is not None else {}
        report.val_accuracy_per_round.append(val.get("accuracy", float("nan")))

        if round_index < config.rounds - 1:
            masks.prune_by_magnitude(model, config.prune_fraction)
            if rewind_state is not None:
                model.load_state_dict(rewind_state)
            masks.apply_to_weights(model)
        report.sparsity_per_round.append(masks.sparsity())
        logger.info("IMP round %d: sparsity %.3f, val acc %.4f",
                    round_index, masks.sparsity(), report.val_accuracy_per_round[-1])

    report.remaining_parameters = (
        report.total_parameters
        - sum(m.size for m in masks.masks.values())
        + masks.remaining()
    )
    return model, report
