"""GraSP — Gradient Signal Preservation pruning at initialisation (Wang et al., 2020a).

GraSP prunes the network *before* training, keeping the weights whose removal
least damages the gradient flow.  The saliency of weight w is

    s(w) = -w · (H g)_w

where g is the loss gradient and H the Hessian at initialisation.  We use the
standard finite-difference approximation of the Hessian-gradient product:

    H g ≈ [ ∇L(θ + ε·g) − ∇L(θ) ] / ε

computed from two gradient evaluations on the same probe batch.  Weights with
the *largest* saliency are pruned (they hurt gradient flow the most), up to
the requested global sparsity; the resulting mask is enforced on weights and
gradients for the rest of training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.baselines.imp import prunable_parameters
from repro.tensor import functional as F
from repro.train.methods import ExperimentContext, Method, MethodResult, register_method
from repro.train.trainer import Trainer
from repro.utils import get_logger

logger = get_logger("baselines.grasp")


@dataclass
class GraSPConfig:
    sparsity: float = 0.5        # fraction of prunable weights removed
    epsilon: float = 1e-2        # finite-difference step for the Hessian-gradient product


@dataclass
class GraSPReport:
    sparsity: float = 0.0
    remaining_parameters: int = 0
    total_parameters: int = 0
    masks: Dict[str, np.ndarray] = field(default_factory=dict)


def _collect_gradients(model: nn.Module, batch, loss_fn=None) -> Dict[str, np.ndarray]:
    model.zero_grad()
    if loss_fn is not None:
        loss = loss_fn(model, batch)
    else:
        logits = model(batch[0])
        loss = F.cross_entropy(logits, batch[-1])
    loss.backward()
    grads = {}
    for name, param in prunable_parameters(model).items():
        grads[name] = np.zeros_like(param.data) if param.grad is None else param.grad.copy()
    return grads


def apply_masks(model: nn.Module, masks: Dict[str, np.ndarray]) -> None:
    """Zero the pruned entries of every masked prunable weight, in place."""
    for name, param in prunable_parameters(model).items():
        if name in masks:
            param.data *= masks[name]


def make_mask_grad_hook(masks: Dict[str, np.ndarray]):
    """Gradient hook enforcing the pruning masks on every backward pass."""

    def grad_hook(model: nn.Module) -> None:
        for name, param in prunable_parameters(model).items():
            if param.grad is not None and name in masks:
                param.grad *= masks[name]

    return grad_hook


def compute_grasp_masks(model: nn.Module, probe_batch, config: Optional[GraSPConfig] = None,
                        loss_fn=None) -> GraSPReport:
    """Compute GraSP pruning masks at initialisation (does not modify weights)."""
    config = config or GraSPConfig()
    params = prunable_parameters(model)
    report = GraSPReport(total_parameters=model.num_parameters())

    grads = _collect_gradients(model, probe_batch, loss_fn)
    # Perturb θ ← θ + ε·g, re-evaluate gradients, restore.
    for name, param in params.items():
        param.data += config.epsilon * grads[name]
    perturbed = _collect_gradients(model, probe_batch, loss_fn)
    for name, param in params.items():
        param.data -= config.epsilon * grads[name]

    saliencies: Dict[str, np.ndarray] = {}
    for name, param in params.items():
        hessian_grad = (perturbed[name] - grads[name]) / config.epsilon
        saliencies[name] = -param.data * hessian_grad

    all_scores = np.concatenate([s.reshape(-1) for s in saliencies.values()])
    if all_scores.size == 0:
        return report
    # Prune exactly the ⌈sparsity·N⌉ weights with the LARGEST saliency (most
    # harmful to gradient flow); an exact count avoids tie-induced drift.
    num_pruned = int(round(config.sparsity * all_scores.size))
    order = np.argsort(all_scores)            # ascending: keep the low-saliency prefix
    keep_flat = np.zeros(all_scores.size, dtype=np.float32)
    keep_flat[order[: all_scores.size - num_pruned]] = 1.0
    offset = 0
    for name, score in saliencies.items():
        count = score.size
        report.masks[name] = keep_flat[offset:offset + count].reshape(score.shape)
        offset += count
    kept = sum(m.sum() for m in report.masks.values())
    total_prunable = sum(m.size for m in report.masks.values())
    report.sparsity = 1.0 - kept / max(total_prunable, 1)
    report.remaining_parameters = int(report.total_parameters - total_prunable + kept)
    model.zero_grad()
    return report


@register_method("grasp")
class GraSPMethod(Method):
    """Registered-method adapter: prune at init, enforce the mask throughout."""

    description = "GraSP: gradient-signal-preserving pruning at initialisation"

    def __init__(self, grasp_config: Optional[GraSPConfig] = None):
        self.config = grasp_config or GraSPConfig(sparsity=0.5)
        self.report: Optional[GraSPReport] = None

    def prepare(self, model, context: ExperimentContext):
        probe_batch = next(iter(context.train_loader))
        self.report = compute_grasp_masks(model, probe_batch, self.config)
        apply_masks(model, self.report.masks)
        return model

    def grad_hook(self):
        return make_mask_grad_hook(self.report.masks)

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        result.params = self.report.remaining_parameters
        result.extra = {"sparsity": self.report.sparsity}
        return result


def train_grasp(model, optimizer, train_loader, val_loader=None, epochs: int = 10,
                config: Optional[GraSPConfig] = None, scheduler=None, loss_fn=None,
                forward_fn=None, max_batches_per_epoch: Optional[int] = None):
    """Prune at init with GraSP, then train with the mask enforced; returns (trainer, report)."""
    config = config or GraSPConfig()
    probe_batch = next(iter(train_loader))
    report = compute_grasp_masks(model, probe_batch, config, loss_fn=loss_fn)

    apply_masks(model, report.masks)
    trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=forward_fn, scheduler=scheduler,
                      grad_hook=make_mask_grad_hook(report.masks),
                      max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    logger.info("GraSP: %.1f%% sparsity, val acc %.4f", 100 * report.sparsity,
                trainer.final_val_accuracy())
    return trainer, report
