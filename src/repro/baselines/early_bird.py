"""Early-Bird ticket training (EB Train, You et al., 2020).

EB Train discovers a *structured* (channel-level) pruning mask early in
training: channels are ranked by the magnitude of their BatchNorm scale γ, a
candidate mask keeping the top (1 − prune_ratio) fraction is drawn every
epoch, and the "early-bird ticket" is declared as soon as the Hamming distance
between consecutive candidate masks falls below a threshold.  From then on the
pruned channels are zeroed (their BN scale, bias and the corresponding
convolution filters) and training continues on the slimmed network.

The implementation keeps the network shape fixed and enforces the channel
mask on weights and gradients — numerically equivalent to physically removing
the channels, which is what the reported "# params" column counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.train.methods import ExperimentContext, Method, MethodResult, register_method
from repro.train.trainer import Callback, Trainer
from repro.utils import get_logger

logger = get_logger("baselines.early_bird")


@dataclass
class EarlyBirdConfig:
    prune_ratio: float = 0.3            # fraction of channels removed network-wide
    mask_distance_threshold: float = 0.1  # Hamming distance that declares the ticket stable
    min_epochs: int = 1
    bn_l1_coefficient: float = 1e-4     # sparsity-inducing L1 on BN scales while searching


@dataclass
class EarlyBirdReport:
    ticket_epoch: Optional[int] = None
    channel_masks: Dict[str, np.ndarray] = field(default_factory=dict)
    pruned_channels: int = 0
    total_channels: int = 0
    effective_parameters: int = 0
    total_parameters: int = 0

    @property
    def channel_sparsity(self) -> float:
        return self.pruned_channels / max(self.total_channels, 1)


def _bn_modules(model: nn.Module) -> Dict[str, nn.BatchNorm2d]:
    return {name: m for name, m in model.named_modules() if isinstance(m, nn.BatchNorm2d) and name}


def _draw_candidate_mask(model: nn.Module, prune_ratio: float) -> Dict[str, np.ndarray]:
    """Global threshold on |γ| across all BN layers → per-layer channel masks."""
    bns = _bn_modules(model)
    scales = np.concatenate([np.abs(bn.weight.data) for bn in bns.values()])
    if scales.size == 0:
        return {}
    threshold = np.quantile(scales, prune_ratio)
    return {name: (np.abs(bn.weight.data) > threshold).astype(np.float32) for name, bn in bns.items()}


def _mask_distance(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> float:
    total, differing = 0, 0
    for name in a:
        total += a[name].size
        differing += int(np.sum(a[name] != b[name]))
    return differing / max(total, 1)


class EarlyBirdCallback(Callback):
    """Searches for the early-bird ticket and enforces it once found."""

    def __init__(self, config: Optional[EarlyBirdConfig] = None):
        self.config = config or EarlyBirdConfig()
        self.report = EarlyBirdReport()
        self._previous_mask: Optional[Dict[str, np.ndarray]] = None

    def on_train_begin(self, trainer: Trainer) -> None:
        self.report.total_parameters = trainer.model.num_parameters()
        trainer.add_grad_hook(self._grad_hook)
        self._model = trainer.model

    # L1 on BN scales during the search phase; mask enforcement afterwards.
    def _grad_hook(self, model: nn.Module) -> None:
        if self.report.ticket_epoch is None:
            for bn in _bn_modules(model).values():
                if bn.weight.grad is not None:
                    bn.weight.grad += self.config.bn_l1_coefficient * np.sign(bn.weight.data)
            return
        for name, mask in self.report.channel_masks.items():
            bn = model.get_submodule(name)
            if bn.weight.grad is not None:
                bn.weight.grad *= mask
            if bn.bias.grad is not None:
                bn.bias.grad *= mask

    def on_epoch_end(self, trainer: Trainer, epoch: int, logs: Dict[str, float]) -> None:
        if self.report.ticket_epoch is not None:
            return
        candidate = _draw_candidate_mask(trainer.model, self.config.prune_ratio)
        if not candidate:
            return
        if self._previous_mask is not None and epoch + 1 >= self.config.min_epochs:
            distance = _mask_distance(candidate, self._previous_mask)
            logs["eb_mask_distance"] = distance
            if distance <= self.config.mask_distance_threshold:
                self._declare_ticket(trainer.model, candidate, epoch)
        self._previous_mask = candidate

    def _declare_ticket(self, model: nn.Module, masks: Dict[str, np.ndarray], epoch: int) -> None:
        self.report.ticket_epoch = epoch + 1
        self.report.channel_masks = masks
        self.report.total_channels = int(sum(m.size for m in masks.values()))
        self.report.pruned_channels = int(sum((m == 0).sum() for m in masks.values()))
        for name, mask in masks.items():
            bn = model.get_submodule(name)
            bn.weight.data *= mask
            bn.bias.data *= mask
        # Effective parameter count: every pruned channel removes its BN pair and,
        # approximately, one convolution filter upstream.
        removed = 0
        for name, mask in masks.items():
            pruned = int((mask == 0).sum())
            removed += 2 * pruned
            conv = self._upstream_conv(model, name)
            if conv is not None:
                removed += pruned * conv.in_channels * conv.kernel_size[0] * conv.kernel_size[1]
        self.report.effective_parameters = self.report.total_parameters - removed
        logger.info("Early-bird ticket at epoch %d: %.1f%% channels pruned",
                    epoch + 1, 100 * self.report.channel_sparsity)

    @staticmethod
    def _upstream_conv(model: nn.Module, bn_path: str) -> Optional[nn.Conv2d]:
        """Best-effort lookup of the convolution feeding a BatchNorm layer."""
        parts = bn_path.split(".")
        parent = model.get_submodule(".".join(parts[:-1])) if len(parts) > 1 else model
        convs = [m for m in parent.children() if isinstance(m, nn.Conv2d)]
        return convs[0] if convs else None


@register_method("early_bird")
class EarlyBirdMethod(Method):
    """Registered-method adapter: find the early-bird ticket, then train slimmed."""

    description = "EB Train: draw channel masks from BN scales until the early-bird ticket stabilises"

    def __init__(self, early_bird_config: Optional[EarlyBirdConfig] = None):
        self._callback = EarlyBirdCallback(early_bird_config)

    def callbacks(self):
        return [self._callback]

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        report = self._callback.report
        result.params = report.effective_parameters or context.model.num_parameters()
        result.extra = {"channel_sparsity": report.channel_sparsity,
                        "ticket_epoch": float(report.ticket_epoch or -1)}
        # Structured channel pruning speeds up the post-ticket epochs roughly
        # quadratically in the kept-channel fraction.
        if report.ticket_epoch is not None:
            kept = 1.0 - report.channel_sparsity
            post = context.config.epochs - report.ticket_epoch
            result.epochs_full = float(report.ticket_epoch) + post * kept * kept
            result.epochs_low = 0.0
        return result


def train_early_bird(model, optimizer, train_loader, val_loader=None, epochs: int = 10,
                     config: Optional[EarlyBirdConfig] = None, scheduler=None, loss_fn=None,
                     forward_fn=None, max_batches_per_epoch: Optional[int] = None):
    """EB Train: search for the early-bird ticket, prune, keep training."""
    callback = EarlyBirdCallback(config)
    trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=forward_fn, scheduler=scheduler, callbacks=[callback],
                      max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    return trainer, callback.report
