"""SI&FD baseline: spectral initialisation + Frobenius decay (Khodak et al., 2020).

The factorized network is built *before training* (E = 0) with a fixed global
rank ratio ρ and K = 1 (only the first candidate layer and the classifier stay
full rank).  Each factorized pair is spectrally initialised — the truncated
SVD of a conventionally initialised full-rank weight — and trained from
scratch with Frobenius decay replacing weight decay on the factorized layers.

In the paper's comparisons the ρ of SI&FD is tuned so the factorized model
size matches the model Cuttlefish discovers (Table 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import nn
from repro.core.factorize import factorize_model
from repro.core.frobenius_decay import FrobeniusDecay
from repro.core.stable_rank import full_rank_of
from repro.train.methods import ExperimentContext, Method, MethodResult, low_rank_ratios, register_method
from repro.train.trainer import Trainer
from repro.utils import get_logger

logger = get_logger("baselines.si_fd")


@dataclass
class SIFDConfig:
    rank_ratio: float = 0.25
    frobenius_decay: float = 1e-4
    num_unfactorized: int = 1
    extra_bn: bool = False


@dataclass
class SIFDReport:
    selected_ranks: Dict[str, int] = field(default_factory=dict)
    factorized_paths: List[str] = field(default_factory=list)
    params_before: int = 0
    params_after: int = 0

    @property
    def compression_ratio(self) -> float:
        return self.params_before / max(self.params_after, 1)


def build_si_fd_model(model: nn.Module, config: SIFDConfig,
                      candidate_paths: Optional[Sequence[str]] = None) -> SIFDReport:
    """Factorize ``model`` in place at initialisation (spectral init, E = 0)."""
    if candidate_paths is None:
        if not hasattr(model, "factorization_candidates"):
            raise ValueError("model does not define factorization_candidates(); pass candidate_paths")
        candidate_paths = model.factorization_candidates()
    report = SIFDReport(params_before=model.num_parameters())
    skip = max(config.num_unfactorized - 1, 0)
    selected = list(candidate_paths)[skip:]
    ranks = {}
    for path in selected:
        module = model.get_submodule(path)
        ranks[path] = max(1, int(round(full_rank_of(module) * config.rank_ratio)))
    # Factorizing the randomly initialised weight *is* spectral initialisation:
    # the truncated SVD of the freshly initialised full-rank weight.
    report.factorized_paths = factorize_model(model, ranks, extra_bn=config.extra_bn)
    report.selected_ranks = ranks
    report.params_after = model.num_parameters()
    logger.info("SI&FD: factorized %d layers at ratio %.3g (%.2fx smaller)",
                len(report.factorized_paths), config.rank_ratio, report.compression_ratio)
    return report


@register_method("si_fd")
class SIFDMethod(Method):
    """Registered-method adapter: factorize at init, train with Frobenius decay."""

    description = "SI&FD: spectral initialisation at a fixed rank ratio + Frobenius decay"

    def __init__(self, si_fd_config: Optional[SIFDConfig] = None,
                 candidate_paths: Optional[Sequence[str]] = None):
        self.config = si_fd_config or SIFDConfig(rank_ratio=0.2)
        self.candidate_paths = candidate_paths
        self.report: Optional[SIFDReport] = None
        self._frobenius: Optional[FrobeniusDecay] = None

    def prepare(self, model, context: ExperimentContext):
        self.report = build_si_fd_model(model, self.config, candidate_paths=self.candidate_paths)
        return model

    def configure(self, context: ExperimentContext) -> None:
        self._frobenius = FrobeniusDecay(self.config.frobenius_decay)
        self._frobenius.configure_optimizer(context.optimizer, context.model)

    def grad_hook(self):
        return self._frobenius

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        # Factorized from scratch: every epoch is a low-rank epoch.
        result.epochs_full = 0.0
        result.epochs_low = float(context.config.epochs)
        result.rank_ratios = low_rank_ratios(context.model)
        result.extra = {"compression": self.report.compression_ratio}
        return result


def train_si_fd(model, optimizer, train_loader, val_loader=None, epochs: int = 10,
                config: Optional[SIFDConfig] = None, scheduler=None,
                candidate_paths: Optional[Sequence[str]] = None, loss_fn=None, forward_fn=None,
                max_batches_per_epoch: Optional[int] = None):
    """Factorize at init and train with Frobenius decay; returns (trainer, report)."""
    config = config or SIFDConfig()
    report = build_si_fd_model(model, config, candidate_paths=candidate_paths)
    optimizer.set_parameters(model.parameters())
    frobenius = FrobeniusDecay(config.frobenius_decay)
    frobenius.configure_optimizer(optimizer, model)
    trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=forward_fn, scheduler=scheduler, grad_hook=frobenius,
                      max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    return trainer, report
