"""LC model compression baseline (Idelbayev & Carreira-Perpiñán, 2020).

LC ("learning-compression") learns each layer's rank jointly with the weights
via alternating optimisation:

* **L step** — ordinary SGD on the task loss, with a quadratic penalty pulling
  each weight towards its current low-rank projection;
* **C step** — for each layer, pick the rank minimising the rank-penalised
  projection error  ‖W − W_r‖_F² + λ·r·(m + n)  and set the compression target
  to that projection.

After the final C step the model is factorized at the learned ranks.  This is
a faithful (if simplified) instantiation of the alternating scheme the paper
compares against; like the original, it is markedly more expensive than
Cuttlefish because every C step computes a full SVD of every layer, and the
L step carries the extra penalty term throughout training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.core.factorize import factorize_model, svd_factorize
from repro.core.stable_rank import full_rank_of, singular_values, weight_to_matrix
from repro.train.methods import ExperimentContext, Method, MethodResult, low_rank_ratios, register_method
from repro.train.trainer import Callback, Trainer
from repro.utils import get_logger

logger = get_logger("baselines.lc")


@dataclass
class LCConfig:
    rank_penalty: float = 1e-4      # λ in the rank-penalised projection objective
    mu: float = 1e-3                # strength of the L-step quadratic pull towards the projection
    c_step_every: int = 1           # run a C step every this many epochs
    min_rank: int = 1
    factorize_at_end: bool = True


@dataclass
class LCReport:
    learned_ranks: Dict[str, int] = field(default_factory=dict)
    factorized_paths: List[str] = field(default_factory=list)
    params_before: int = 0
    params_after: int = 0
    c_steps: int = 0

    @property
    def compression_ratio(self) -> float:
        return self.params_before / max(self.params_after, 1)


def optimal_rank(matrix: np.ndarray, rank_penalty: float, min_rank: int = 1) -> int:
    """Rank minimising ‖W − W_r‖_F² + λ·r·(m + n) (closed form from singular values)."""
    sigma = singular_values(matrix)
    m, n = matrix.shape
    per_rank_cost = rank_penalty * (m + n)
    # Residual energy after keeping r singular values.
    tail = np.concatenate([np.cumsum((sigma ** 2)[::-1])[::-1], [0.0]])
    objectives = [tail[r] + per_rank_cost * r for r in range(len(sigma) + 1)]
    best = int(np.argmin(objectives))
    return max(min_rank, min(best if best > 0 else min_rank, len(sigma)))


class LCCallback(Callback):
    """Alternating optimisation driver for LC compression."""

    def __init__(self, config: LCConfig, candidate_paths: Optional[Sequence[str]] = None):
        self.config = config
        self.candidate_paths = list(candidate_paths) if candidate_paths is not None else None
        self.report = LCReport()
        self._targets: Dict[str, np.ndarray] = {}

    def on_train_begin(self, trainer: Trainer) -> None:
        model = trainer.model
        if self.candidate_paths is None:
            if not hasattr(model, "factorization_candidates"):
                raise ValueError("model does not define factorization_candidates(); pass candidate_paths")
            self.candidate_paths = model.factorization_candidates()
        self.report.params_before = model.num_parameters()
        trainer.add_grad_hook(self._l_step_pull)

    # ------------------------------------------------------------------ #
    # L step: quadratic pull of each weight towards its low-rank target
    # ------------------------------------------------------------------ #
    def _l_step_pull(self, model: nn.Module) -> None:
        if not self._targets:
            return
        for path, target in self._targets.items():
            module = model.get_submodule(path)
            weight = module.weight
            current = weight_to_matrix(module)
            pull = self.config.mu * (current - target)
            grad = self._matrix_to_weight_grad(module, pull)
            if weight.grad is None:
                weight.grad = grad
            else:
                weight.grad = weight.grad + grad

    @staticmethod
    def _matrix_to_weight_grad(module: nn.Module, matrix_grad: np.ndarray) -> np.ndarray:
        if isinstance(module, nn.Conv2d):
            out_c, in_c, kh, kw = module.weight.shape
            return matrix_grad.reshape(in_c, kh, kw, out_c).transpose(3, 0, 1, 2).astype(np.float32)
        return matrix_grad.astype(np.float32)

    # ------------------------------------------------------------------ #
    # C step: rank-penalised projection of every candidate layer
    # ------------------------------------------------------------------ #
    def on_epoch_end(self, trainer: Trainer, epoch: int, logs: Dict[str, float]) -> None:
        if (epoch + 1) % self.config.c_step_every:
            return
        model = trainer.model
        for path in self.candidate_paths:
            module = model.get_submodule(path)
            matrix = weight_to_matrix(module)
            if not np.all(np.isfinite(matrix)):
                logger.warning("skipping C step for %s: non-finite weights", path)
                continue
            rank = optimal_rank(matrix, self.config.rank_penalty, self.config.min_rank)
            u, vt = svd_factorize(matrix, rank)
            self._targets[path] = (u @ vt).astype(np.float32)
            self.report.learned_ranks[path] = rank
        self.report.c_steps += 1

    def on_train_end(self, trainer: Trainer) -> None:
        if not self.config.factorize_at_end or not self.report.learned_ranks:
            self.report.params_after = trainer.model.num_parameters()
            return
        self.report.factorized_paths = factorize_model(trainer.model, self.report.learned_ranks)
        trainer.rebuild_optimizer_params()
        self.report.params_after = trainer.model.num_parameters()
        logger.info("LC compression learned ranks for %d layers (%.2fx smaller)",
                    len(self.report.learned_ranks), self.report.compression_ratio)


@register_method("lc")
class LCMethod(Method):
    """Registered-method adapter: alternating learning-compression optimisation."""

    description = "LC: learn per-layer ranks by alternating L (SGD) and C (projection) steps"

    # LC's alternating optimisation adds an SVD of every layer each epoch and
    # the quadratic-penalty term each iteration: far slower end to end.
    OVERHEAD_MULTIPLIER = 8.0

    def __init__(self, lc_config: Optional[LCConfig] = None,
                 candidate_paths: Optional[Sequence[str]] = None):
        self.config = lc_config or LCConfig()
        self._callback = LCCallback(self.config, candidate_paths=candidate_paths)

    def callbacks(self):
        return [self._callback]

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        report = self._callback.report
        result.overhead_multiplier = self.OVERHEAD_MULTIPLIER
        result.rank_ratios = low_rank_ratios(context.model)
        result.extra = {"compression": report.compression_ratio, "c_steps": float(report.c_steps)}
        return result


def train_lc_compression(model, optimizer, train_loader, val_loader=None, epochs: int = 10,
                         config: Optional[LCConfig] = None, scheduler=None,
                         candidate_paths: Optional[Sequence[str]] = None, loss_fn=None,
                         forward_fn=None, max_batches_per_epoch: Optional[int] = None):
    """Train with LC alternating compression; returns (trainer, report)."""
    config = config or LCConfig()
    callback = LCCallback(config, candidate_paths=candidate_paths)
    trainer = Trainer(model, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=forward_fn, scheduler=scheduler, callbacks=[callback],
                      max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    return trainer, callback.report
