"""Knowledge-distillation baselines for the GLUE comparison (Table 4).

DistilBERT (Sanh et al., 2019) and TinyBERT (Jiao et al., 2020) compress BERT
by training a *shallower/narrower student* to match the teacher's output
distribution.  Here both are modelled by the same mechanism — a student BERT
(half the depth for the DistilBERT-style student, half depth and 3/4 width for
the TinyBERT-style student) fine-tuned with a soft-target KL term added to the
task loss — which is what the accuracy/size comparison in Table 4 exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import nn
from repro.models.bert import BertForSequenceClassification, BertModel
from repro.tensor import Tensor, functional as F
from repro.train.trainer import Trainer
from repro.utils import get_rng


@dataclass
class DistillationConfig:
    temperature: float = 2.0
    alpha: float = 0.5          # weight of the distillation term vs the hard-label loss
    depth_fraction: float = 0.5
    width_fraction: float = 1.0


def build_student(teacher: BertForSequenceClassification, config: DistillationConfig,
                  rng: Optional[np.random.Generator] = None) -> BertForSequenceClassification:
    """Create a smaller student with the same vocabulary and task head shape."""
    backbone = teacher.backbone
    rng = rng or get_rng(offset=4_242)
    student_dim = max(int(backbone.embed_dim * config.width_fraction), 8)
    num_heads = backbone.blocks[0].attn.num_heads
    # Keep the head count valid for the narrower width.
    while student_dim % num_heads:
        num_heads -= 1
    student_backbone = BertModel(
        vocab_size=backbone.vocab_size,
        max_seq_len=backbone.max_seq_len,
        embed_dim=student_dim,
        depth=max(int(len(backbone.blocks) * config.depth_fraction), 1),
        num_heads=max(num_heads, 1),
        rng=rng,
    )
    return BertForSequenceClassification(student_backbone, num_classes=teacher.num_classes, rng=rng)


def soft_cross_entropy(student_logits: Tensor, teacher_logits: np.ndarray, temperature: float) -> Tensor:
    """KL-style soft-target loss between student and (detached) teacher logits."""
    teacher_scaled = teacher_logits / temperature
    teacher_probs = np.exp(teacher_scaled - teacher_scaled.max(axis=1, keepdims=True))
    teacher_probs /= teacher_probs.sum(axis=1, keepdims=True)
    student_log_probs = F.log_softmax(student_logits * (1.0 / temperature), axis=-1)
    return -(student_log_probs * Tensor(teacher_probs.astype(np.float32))).sum() * (
        temperature * temperature / student_logits.shape[0]
    )


def make_distillation_loss(teacher: nn.Module, config: DistillationConfig, forward_fn=None):
    """Build a Trainer loss function combining hard-label CE and soft distillation."""

    def loss_fn(student: nn.Module, batch):
        inputs, labels = batch[0], batch[-1]
        mask = batch[1] if len(batch) > 2 else None
        teacher.eval()
        from repro.tensor import no_grad
        with no_grad():
            teacher_logits = (
                forward_fn(teacher, batch) if forward_fn is not None
                else teacher(inputs, attn_mask=mask)
            ).data
        student_logits = (
            forward_fn(student, batch) if forward_fn is not None
            else student(inputs, attn_mask=mask)
        )
        hard = F.cross_entropy(student_logits, labels)
        soft = soft_cross_entropy(student_logits, teacher_logits, config.temperature)
        return hard * (1.0 - config.alpha) + soft * config.alpha

    return loss_fn


def train_distilled_student(teacher: BertForSequenceClassification, optimizer_factory,
                            train_loader, val_loader=None, epochs: int = 3,
                            config: Optional[DistillationConfig] = None, forward_fn=None,
                            max_batches_per_epoch: Optional[int] = None):
    """Distil ``teacher`` into a smaller student; returns (trainer, student)."""
    config = config or DistillationConfig()
    student = build_student(teacher, config)
    optimizer = optimizer_factory(student)
    loss_fn = make_distillation_loss(teacher, config, forward_fn=forward_fn)
    eval_forward = forward_fn or (lambda model, batch: model(batch[0], attn_mask=batch[1] if len(batch) > 2 else None))
    trainer = Trainer(student, optimizer, train_loader, val_loader, loss_fn=loss_fn,
                      forward_fn=eval_forward, max_batches_per_epoch=max_batches_per_epoch)
    trainer.fit(epochs)
    return trainer, student
