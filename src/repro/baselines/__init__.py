"""Baseline methods the paper compares Cuttlefish against.

Importing this package registers every baseline with the unified method
registry (``repro.train.methods``): each module defines a thin
:class:`~repro.train.methods.Method` adapter next to its algorithm code.
"""

from repro.baselines.pufferfish import (
    PufferfishCallback,
    PufferfishConfig,
    PufferfishMethod,
    PufferfishReport,
    train_pufferfish,
)
from repro.baselines.si_fd import SIFDConfig, SIFDMethod, SIFDReport, build_si_fd_model, train_si_fd
from repro.baselines.lc_compression import (
    LCCallback,
    LCConfig,
    LCMethod,
    LCReport,
    optimal_rank,
    train_lc_compression,
)
from repro.baselines.imp import IMPConfig, IMPMethod, IMPReport, MaskManager, prunable_parameters, train_imp
from repro.baselines.xnor import (
    BinarizationAccountingCallback,
    BinarizedConv2d,
    BinarizedLinear,
    XNORMethod,
    binarize_activations,
    binarize_with_ste,
    convert_to_xnor,
    effective_parameter_fraction,
)
from repro.baselines.grasp import (
    GraSPConfig,
    GraSPMethod,
    GraSPReport,
    apply_masks,
    compute_grasp_masks,
    make_mask_grad_hook,
    train_grasp,
)
from repro.baselines.early_bird import (
    EarlyBirdCallback,
    EarlyBirdConfig,
    EarlyBirdMethod,
    EarlyBirdReport,
    train_early_bird,
)
from repro.baselines.distillation import (
    DistillationConfig,
    build_student,
    make_distillation_loss,
    soft_cross_entropy,
    train_distilled_student,
)

__all__ = [
    "PufferfishCallback",
    "PufferfishConfig",
    "PufferfishMethod",
    "PufferfishReport",
    "train_pufferfish",
    "SIFDConfig",
    "SIFDMethod",
    "SIFDReport",
    "build_si_fd_model",
    "train_si_fd",
    "LCCallback",
    "LCConfig",
    "LCMethod",
    "LCReport",
    "optimal_rank",
    "train_lc_compression",
    "IMPConfig",
    "IMPMethod",
    "IMPReport",
    "MaskManager",
    "prunable_parameters",
    "train_imp",
    "BinarizationAccountingCallback",
    "BinarizedConv2d",
    "BinarizedLinear",
    "XNORMethod",
    "binarize_activations",
    "binarize_with_ste",
    "convert_to_xnor",
    "effective_parameter_fraction",
    "GraSPConfig",
    "GraSPMethod",
    "GraSPReport",
    "apply_masks",
    "compute_grasp_masks",
    "make_mask_grad_hook",
    "train_grasp",
    "EarlyBirdCallback",
    "EarlyBirdConfig",
    "EarlyBirdMethod",
    "EarlyBirdReport",
    "train_early_bird",
    "DistillationConfig",
    "build_student",
    "make_distillation_loss",
    "soft_cross_entropy",
    "train_distilled_student",
]
