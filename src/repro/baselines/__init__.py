"""Baseline methods the paper compares Cuttlefish against."""

from repro.baselines.pufferfish import (
    PufferfishCallback,
    PufferfishConfig,
    PufferfishReport,
    train_pufferfish,
)
from repro.baselines.si_fd import SIFDConfig, SIFDReport, build_si_fd_model, train_si_fd
from repro.baselines.lc_compression import LCCallback, LCConfig, LCReport, optimal_rank, train_lc_compression
from repro.baselines.imp import IMPConfig, IMPReport, MaskManager, prunable_parameters, train_imp
from repro.baselines.xnor import (
    BinarizedConv2d,
    BinarizedLinear,
    binarize_activations,
    binarize_with_ste,
    convert_to_xnor,
    effective_parameter_fraction,
)
from repro.baselines.grasp import GraSPConfig, GraSPReport, compute_grasp_masks, train_grasp
from repro.baselines.early_bird import EarlyBirdCallback, EarlyBirdConfig, EarlyBirdReport, train_early_bird
from repro.baselines.distillation import (
    DistillationConfig,
    build_student,
    make_distillation_loss,
    soft_cross_entropy,
    train_distilled_student,
)

__all__ = [
    "PufferfishCallback",
    "PufferfishConfig",
    "PufferfishReport",
    "train_pufferfish",
    "SIFDConfig",
    "SIFDReport",
    "build_si_fd_model",
    "train_si_fd",
    "LCCallback",
    "LCConfig",
    "LCReport",
    "optimal_rank",
    "train_lc_compression",
    "IMPConfig",
    "IMPReport",
    "MaskManager",
    "prunable_parameters",
    "train_imp",
    "BinarizedConv2d",
    "BinarizedLinear",
    "binarize_activations",
    "binarize_with_ste",
    "convert_to_xnor",
    "effective_parameter_fraction",
    "GraSPConfig",
    "GraSPReport",
    "compute_grasp_masks",
    "train_grasp",
    "EarlyBirdCallback",
    "EarlyBirdConfig",
    "EarlyBirdReport",
    "train_early_bird",
    "DistillationConfig",
    "build_student",
    "make_distillation_loss",
    "soft_cross_entropy",
    "train_distilled_student",
]
