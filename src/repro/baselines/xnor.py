"""XNOR-Net style binarized training (Rastegari et al., 2016).

Weights (and optionally activations) are binarized to sign(x) scaled by the
mean absolute value, with the straight-through estimator passing gradients to
the underlying real-valued weights.  As in the paper's experiments this is a
*simulation* — the arithmetic still runs in FP32, so there is no speedup; the
method is included for the accuracy/compression comparison of Table 1 (the
paper reports a 3.125% effective size because every 32-bit weight becomes
1 bit).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, functional as F
from repro.train.methods import ExperimentContext, Method, MethodResult, register_method
from repro.train.trainer import Callback, Trainer


EFFECTIVE_COMPRESSION = 1.0 / 32.0   # 1-bit weights vs FP32


def binarize_with_ste(weight: Tensor) -> Tensor:
    """Binarized view of ``weight`` whose gradient flows straight through.

    Forward value: sign(w) · mean(|w|).  Backward: identity into ``weight``
    (the straight-through estimator).
    """
    alpha = float(np.mean(np.abs(weight.data)))
    binary = np.sign(weight.data).astype(np.float32)
    binary[binary == 0] = 1.0
    # value = w + (binary*alpha - w).detach()  → forward is the binarized weight,
    # gradient w.r.t. the expression is exactly the gradient w.r.t. w.
    correction = Tensor(binary * alpha - weight.data)
    return weight + correction


class BinarizedConv2d(nn.Conv2d):
    """Conv2d whose weights are binarized on the fly (XNOR-Net weight path)."""

    def forward(self, x: Tensor) -> Tensor:
        weight = binarize_with_ste(self.weight)
        return F.conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)


class BinarizedLinear(nn.Linear):
    """Linear layer with binarized weights."""

    def forward(self, x: Tensor) -> Tensor:
        weight = binarize_with_ste(self.weight)
        return F.linear(x, weight, self.bias)


def binarize_activations(x: Tensor) -> Tensor:
    """Sign binarization of activations with straight-through gradient."""
    binary = np.sign(x.data).astype(np.float32)
    binary[binary == 0] = 1.0
    return x + Tensor(binary - x.data)


def convert_to_xnor(model: nn.Module, skip_paths: Optional[List[str]] = None) -> List[str]:
    """Replace Conv2d/Linear layers by their binarized counterparts, in place.

    The first and last layers are conventionally left full precision in
    XNOR-Net; callers pass them via ``skip_paths``.  Returns the converted
    module paths.
    """
    skip = set(skip_paths or [])
    converted: List[str] = []
    for name, module in list(model.named_modules()):
        if not name or name in skip:
            continue
        if type(module) is nn.Conv2d:
            replacement = BinarizedConv2d(module.in_channels, module.out_channels, module.kernel_size,
                                          stride=module.stride, padding=module.padding,
                                          bias=module.bias is not None)
            replacement.weight.data = module.weight.data.copy()
            if module.bias is not None:
                replacement.bias.data = module.bias.data.copy()
            model.set_submodule(name, replacement)
            converted.append(name)
        elif type(module) is nn.Linear:
            replacement = BinarizedLinear(module.in_features, module.out_features,
                                          bias=module.bias is not None)
            replacement.weight.data = module.weight.data.copy()
            if module.bias is not None:
                replacement.bias.data = module.bias.data.copy()
            model.set_submodule(name, replacement)
            converted.append(name)
    return converted


def effective_parameter_fraction() -> float:
    """XNOR's effective compression: 1-bit weights out of 32 (Table 1 footnote)."""
    return EFFECTIVE_COMPRESSION


class BinarizationAccountingCallback(Callback):
    """Counts the per-iteration re-binarisation events via the step-level hooks.

    Every optimizer step updates the real-valued weights, so every forward
    pass re-binarises them — the source of XNOR's ~3-4× training overhead.
    """

    def __init__(self):
        self.binarized_batches = 0

    def on_batch_end(self, trainer: Trainer, batch_index: int, logs: Dict[str, float]) -> None:
        self.binarized_batches += 1


@register_method("xnor")
class XNORMethod(Method):
    """Registered-method adapter: FP32-simulated binarized training."""

    description = "XNOR-Net: 1-bit weights via sign(w)*mean|w| with a straight-through estimator"
    uses_scheduler = False

    # The FP32 simulation of binarisation re-binarises weights and
    # activations every iteration, ~3-4x slower than dense training.
    OVERHEAD_MULTIPLIER = 3.5

    def __init__(self, skip_paths: Optional[List[str]] = None):
        self.skip_paths = skip_paths
        self._accounting = BinarizationAccountingCallback()

    def prepare(self, model, context: ExperimentContext):
        skip = self.skip_paths
        if skip is None:
            first_conv = "conv1" if hasattr(model, "conv1") else None
            skip = [p for p in [first_conv, "fc", "classifier", "head"] if p]
        convert_to_xnor(model, skip_paths=skip)
        return model

    def callbacks(self):
        return [self._accounting]

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        result.overhead_multiplier = self.OVERHEAD_MULTIPLIER
        result.params_fraction = effective_parameter_fraction()
        result.extra = {"effective_bits_fraction": effective_parameter_fraction(),
                        "binarized_batches": float(self._accounting.binarized_batches)}
        return result
