"""Execution engines: where a coalesced batch actually runs.

The predictor pool (:mod:`repro.serve.pool`) separates *batching* from
*execution*.  A pool worker thread owns exactly one engine and funnels every
batch it assembles through :meth:`InferenceEngine.predict`:

* :class:`InlineEngine` — the forward pass runs on the worker thread itself.
  Pool size 1 with an inline engine is byte-for-byte the pre-pool
  ``DynamicBatcher`` behaviour; larger thread pools give each worker its own
  :meth:`Predictor.clone() <repro.serve.artifact.Predictor.clone>` so the
  lazily-built inference plan (whose replay value table is single-threaded
  state) is never shared across threads.
* :class:`ProcessEngine` — the forward pass runs in a forked child process,
  which sidesteps the GIL for the numpy-released BLAS *and* the Python glue
  around it.  The parent and child exchange batches through a per-engine
  shared-memory segment (input slab, output slab, a tiny int64 control
  block) guarded by a work/done semaphore pair; model weights live in a
  pool-wide read-only segment (:class:`SharedModelWeights`) carved *before*
  the fork, so N workers map one copy of the artifact instead of holding N.

Failure semantics are deliberately loud.  A child that disappears
mid-request (SIGKILL, OOM, crash) surfaces as :class:`WorkerDiedError` from
``predict`` — the pool retires that worker, fails its in-flight futures, and
``/healthz`` degrades until :meth:`respawn` forks a replacement.  A child
that merely *raises* (bad input, numerical error) ships the traceback back
over a pipe and keeps serving: model bugs are recoverable, dead processes
are not.

Determinism: the child copies the inbound shm view to a fresh C-contiguous
heap array before the forward, so the predictor sees exactly the kind of
array the inline engine passes (same layout, same alignment class) and the
bit-invariance argument of DESIGN.md §9 carries over unchanged.
"""

from __future__ import annotations

import os
import traceback
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.logging import get_logger
from repro.utils.shm import ShmArena, arena_bytes_for

logger = get_logger("serve.engine")

#: Liveness poll period while waiting on a child (same cadence as the
#: process data-parallel drive mode).
_POLL_S = 0.2

_CTRL_WORDS = 4          # [n_rows, error_flag, reserved, reserved]
_STOP = -1               # n_rows value that asks the child to exit


class WorkerDiedError(RuntimeError):
    """An inference worker is gone (killed, crashed, or never respawned).

    Raised from :meth:`ProcessEngine.predict` when the child dies
    mid-request, and set on every future the dead worker had in flight —
    callers fail loudly instead of hanging on a batch nobody will compute.
    """


class InlineEngine:
    """Run the predictor on the calling (pool-worker) thread."""

    mode = "thread"

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray]):
        self._predict = predict_fn

    @property
    def alive(self) -> bool:
        return True

    @property
    def pid(self) -> Optional[int]:
        return None

    def predict(self, batch: np.ndarray) -> np.ndarray:
        return self._predict(batch)

    def respawn(self) -> bool:
        """Inline engines have no separate process; nothing to respawn."""
        return False

    def close(self) -> None:
        pass


def _engine_child_main(predict_fn, inp, out, ctrl, work_sem, done_sem,
                       err_conn, parent_pid: int) -> None:
    """Child loop: wait for work, run one forward, signal done.

    Runs in a forked process — ``inp``/``out``/``ctrl`` are inherited
    shared-memory views, ``predict_fn`` (and the model behind it) arrived
    via fork with its weights rebound onto the pool's read-only segment.
    Exceptions are recoverable: the traceback travels back over the pipe and
    the loop keeps serving.  Exit paths: a stop command, or the parent
    disappearing (poll ``getppid`` so an orphan never lingers).
    """
    while True:
        while not work_sem.acquire(timeout=_POLL_S):
            if os.getppid() != parent_pid:
                os._exit(0)
        n = int(ctrl[0])
        if n == _STOP:
            os._exit(0)
        try:
            # Fresh heap copy: the predictor must see the same array layout
            # the inline engine feeds it (see module docstring).
            result = predict_fn(inp[:n].copy())
            out[:n] = np.asarray(result, dtype=np.float32)
        except Exception as error:  # noqa: BLE001 — shipped to the parent
            ctrl[1] = 1
            try:
                err_conn.send(f"{type(error).__name__}: {error}\n"
                              f"{traceback.format_exc()}")
            except OSError:
                pass
        else:
            ctrl[1] = 0
        done_sem.release()


class ProcessEngine:
    """Run the predictor in a forked worker process over shared memory.

    One engine ↔ one child.  The parent-side :meth:`predict` is only ever
    called from the single pool-worker thread that owns this engine, so the
    slabs need no locking.  ``max_rows`` bounds the largest batch the slabs
    can carry — the pool sizes it to the batching policy's ceiling
    (including any SLO-controller headroom).
    """

    mode = "process"

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        input_shape: Sequence[int],
        output_shape: Sequence[int],
        max_rows: int,
        name: str = "engine",
    ):
        import multiprocessing

        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.name = name
        self.max_rows = int(max_rows)
        self.input_shape = tuple(int(s) for s in input_shape)
        self.output_shape = tuple(int(s) for s in output_shape)
        self._predict = predict_fn
        self._ctx = multiprocessing.get_context("fork")
        in_spec = ((self.max_rows, *self.input_shape), np.float32)
        out_spec = ((self.max_rows, *self.output_shape), np.float32)
        ctl_spec = ((_CTRL_WORDS,), np.int64)
        self._arena = ShmArena(arena_bytes_for([in_spec, out_spec, ctl_spec]))
        self._inp = self._arena.alloc(*in_spec)
        self._out = self._arena.alloc(*out_spec)
        self._ctrl = self._arena.alloc(*ctl_spec)
        self._proc = None
        self._err_r = None
        self._closed = False
        self.respawn()

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        proc = self._proc
        return proc.pid if proc is not None and proc.is_alive() else None

    def respawn(self) -> bool:
        """Fork a fresh child (fresh semaphores, fresh error pipe).

        Returns ``True`` when a new child was started, ``False`` when the
        current one is still alive or the engine is closed.  Fresh
        synchronisation state matters: a SIGKILLed child can die holding a
        stale ``done`` token that would corrupt the next request's
        handshake.
        """
        if self._closed or self.alive:
            return False
        self._work = self._ctx.Semaphore(0)
        self._done = self._ctx.Semaphore(0)
        err_r, err_w = self._ctx.Pipe(duplex=False)
        self._ctrl[:] = 0
        self._proc = self._ctx.Process(
            target=_engine_child_main,
            args=(self._predict, self._inp, self._out, self._ctrl,
                  self._work, self._done, err_w, os.getpid()),
            name=f"{self.name}-proc",
            daemon=True,
        )
        self._proc.start()
        err_w.close()
        if self._err_r is not None:
            self._err_r.close()
        self._err_r = err_r
        return True

    # ------------------------------------------------------------------ #
    def predict(self, batch: np.ndarray) -> np.ndarray:
        proc = self._proc
        if proc is None or not proc.is_alive():
            raise WorkerDiedError(
                f"{self.name}: inference process is not running "
                f"(killed or never respawned)")
        batch = np.ascontiguousarray(batch, dtype=np.float32)
        n = batch.shape[0]
        if n > self.max_rows:
            raise ValueError(
                f"{self.name}: batch of {n} rows exceeds the engine's "
                f"{self.max_rows}-row shm slab")
        if tuple(batch.shape[1:]) != self.input_shape:
            raise ValueError(
                f"{self.name}: batch sample shape {tuple(batch.shape[1:])} "
                f"!= engine input shape {self.input_shape}")
        self._inp[:n] = batch
        self._ctrl[0] = n
        self._ctrl[1] = 0
        self._work.release()
        while not self._done.acquire(timeout=_POLL_S):
            if not proc.is_alive():
                raise WorkerDiedError(
                    f"{self.name}: inference process pid {proc.pid} died "
                    f"mid-request (exitcode {proc.exitcode})")
        if int(self._ctrl[1]) != 0:
            message = "inference failed in worker (no traceback received)"
            try:
                if self._err_r is not None and self._err_r.poll(1.0):
                    message = self._err_r.recv()
            except (EOFError, OSError):
                pass
            raise RuntimeError(f"{self.name}: {message}")
        return self._out[:n].copy()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the child (politely, then by force) and unlink the slabs."""
        self._closed = True
        proc = self._proc
        if proc is not None:
            if proc.is_alive():
                self._ctrl[0] = _STOP
                self._work.release()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover — stuck child
                    proc.terminate()
                    proc.join(timeout=5.0)
            self._proc = None
        if self._err_r is not None:
            self._err_r.close()
            self._err_r = None
        self._arena.close()


class SharedModelWeights:
    """Rebind a model's parameters and buffers onto one read-only shm segment.

    Construct in the parent *before* forking process engines: every
    ``Parameter.data`` / ``Buffer.data`` array is copied into an aligned
    view of a single segment and the tensor is rebound to that view, so all
    forked children address the same physical pages — the artifact's weights
    are mapped once per host, not copied once per worker.  :meth:`restore`
    puts the original heap arrays back and unlinks the segment (safe while
    children still hold the mapping: the name disappears now, the pages when
    the last process unmaps).
    """

    def __init__(self, model):
        tensors = list(model.parameters())
        tensors += [buf for _, buf in model.named_buffers()]
        specs = [(t.data.shape, t.data.dtype) for t in tensors]
        self._arena = ShmArena(arena_bytes_for(specs))
        self._originals = []
        self.nbytes = 0
        for tensor in tensors:
            original = tensor.data
            view = self._arena.put(original)
            tensor.data = view
            self._originals.append((tensor, original))
            self.nbytes += original.nbytes
        self._restored = False

    @property
    def segment_name(self) -> str:
        return self._arena.segment.name

    def restore(self) -> None:
        """Rebind the original arrays and unlink the segment (idempotent)."""
        if self._restored:
            return
        self._restored = True
        for tensor, original in self._originals:
            tensor.data = original
        self._originals = []
        self._arena.close()


def probe_output_shape(predict_fn: Callable[[np.ndarray], np.ndarray],
                       input_shape: Sequence[int],
                       rows: int = 4) -> Tuple[int, ...]:
    """Per-sample output shape of ``predict_fn``, measured with one forward.

    Process engines must size their output slab before forking; the probe
    also warms any lazily-built inference plan in the parent so children
    inherit it pre-deserialized (copy-on-write) instead of each paying the
    build cost.
    """
    out = predict_fn(np.zeros((rows, *input_shape), dtype=np.float32))
    out = np.asarray(out)
    if out.ndim < 1 or out.shape[0] != rows:
        raise ValueError(
            f"predictor returned shape {out.shape} for a {rows}-row probe "
            f"batch; expected a leading batch axis")
    return tuple(out.shape[1:])


__all__ = [
    "InlineEngine",
    "ProcessEngine",
    "SharedModelWeights",
    "WorkerDiedError",
    "probe_output_shape",
]
