"""SLO controller: tune the batching policy live against a p99 target.

The batching policy trades tail latency for throughput — bigger batches and
longer coalescing waits raise both.  Instead of hand-picking
``max_batch_size`` / ``max_wait_ms`` per deployment, the controller closes
the loop: it watches the measured end-to-end p99 over short windows and
walks the two knobs with an AIMD-style rule.

* **p99 above target** → back off multiplicatively: halve ``max_wait_ms``
  and cut ``max_batch_size`` by a quarter.  Overload must be escaped fast —
  queueing delay compounds while the controller deliberates.
* **p99 below ``headroom`` × target** → probe additively: +2 samples of
  batch, +0.25 ms of wait, up to configured ceilings.  Throughput is
  recovered slowly so the system doesn't oscillate across the target.
* **in the deadband between** → leave the knobs alone.

The knobs are mutated *in place* on the live :class:`~repro.serve.batcher.
BatchingPolicy`; pool workers read the policy every coalescing cycle, so a
decision takes effect on the very next batch.  Because batch
canonicalization makes predictions independent of batch composition
(DESIGN.md §9), the controller can resize batches freely without perturbing
a single output bit — it moves latency, never answers.

Decisions are pure in :meth:`SLOController.step` (unit-testable with a fed
tracker, no threads); :meth:`start` runs them on a daemon thread every
``interval_s``.  Current knob values and the last measured p99 are exported
as gauges so operators can watch the control loop act.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.profiling.latency import LatencyTracker
from repro.telemetry import MetricsRegistry


@dataclass
class SLOPolicy:
    """Target and bounds for the serving-latency control loop.

    ``target_p99_ms``  — the SLO: measured p99 request latency must stay at
                         or under this.
    ``headroom``       — relax only when p99 < headroom × target, leaving a
                         deadband that prevents limit cycles.
    ``min_samples``    — smallest window worth a decision (p99 of a handful
                         of requests is noise).
    ``max_batch_size`` / ``max_wait_ms`` — ceilings for the relax direction;
                         default to 4× the initial policy values.
    """

    target_p99_ms: float
    interval_s: float = 0.5
    min_samples: int = 32
    headroom: float = 0.7
    min_batch_size: int = 1
    max_batch_size: Optional[int] = None
    min_wait_ms: float = 0.0
    max_wait_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be > 0, got {self.target_p99_ms}")
        if not 0.0 < self.headroom < 1.0:
            raise ValueError(f"headroom must be in (0, 1), got {self.headroom}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")


class SLOController:
    """AIMD control of ``max_batch_size`` / ``max_wait_ms`` toward a p99 target."""

    def __init__(
        self,
        batching_policy,
        slo: SLOPolicy,
        registry: Optional[MetricsRegistry] = None,
        name: str = "slo",
    ):
        self.policy = batching_policy
        self.slo = slo
        self.name = name
        if slo.max_batch_size is None:
            slo.max_batch_size = max(batching_policy.max_batch_size * 4, 4)
        if slo.max_wait_ms is None:
            slo.max_wait_ms = max(batching_policy.max_wait_ms * 4, 1.0)
        self.tracker = LatencyTracker(window=4096)
        registry = registry or MetricsRegistry("serve")
        self._g_p99 = registry.gauge("slo_last_p99_ms")
        self._g_batch = registry.gauge("slo_max_batch_size")
        self._g_wait = registry.gauge("slo_max_wait_ms")
        self._adjustments = registry.counter("slo_adjustments_total")
        self._g_batch.set(batching_policy.max_batch_size)
        self._g_wait.set(batching_policy.max_wait_ms)
        self.last_p99_ms: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    def observe(self, seconds: float) -> None:
        """Feed one request's end-to-end latency (called by pool workers)."""
        self.tracker.observe(seconds)

    def step(self) -> Optional[str]:
        """One control decision; returns ``"tighten"``/``"relax"`` or ``None``.

        Each decision consumes the current window: the tracker resets so the
        next step judges only traffic that ran under the new knobs.
        """
        if self.tracker.count < self.slo.min_samples:
            return None
        p99 = self.tracker.percentile(99.0) * 1e3
        self.tracker.reset()
        self.last_p99_ms = p99
        self._g_p99.set(p99)
        policy, slo = self.policy, self.slo
        if p99 > slo.target_p99_ms:
            new_wait = max(slo.min_wait_ms, policy.max_wait_ms * 0.5)
            new_batch = max(slo.min_batch_size, (policy.max_batch_size * 3) // 4)
            direction = "tighten"
        elif p99 < slo.headroom * slo.target_p99_ms:
            new_wait = min(slo.max_wait_ms, policy.max_wait_ms * 1.25 + 0.05)
            new_batch = min(slo.max_batch_size, policy.max_batch_size + 2)
            direction = "relax"
        else:
            return None
        if new_wait == policy.max_wait_ms and new_batch == policy.max_batch_size:
            return None
        policy.max_wait_ms = new_wait
        policy.max_batch_size = new_batch
        self._g_wait.set(new_wait)
        self._g_batch.set(new_batch)
        self._adjustments.inc()
        return direction

    # ------------------------------------------------------------------ #
    def start(self) -> "SLOController":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name=f"{self.name}-controller", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.slo.interval_s):
            self.step()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ #
    @property
    def adjustments_total(self) -> int:
        return self._adjustments.value

    def stats(self) -> Dict[str, Any]:
        return {
            "target_p99_ms": self.slo.target_p99_ms,
            "last_p99_ms": self.last_p99_ms,
            "max_batch_size": self.policy.max_batch_size,
            "max_wait_ms": self.policy.max_wait_ms,
            "adjustments_total": self.adjustments_total,
        }


__all__ = ["SLOController", "SLOPolicy"]
