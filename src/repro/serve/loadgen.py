"""Closed-loop load generation against the serving stack.

``run_closed_loop`` drives N concurrent clients, each repeating
send-one-sample → wait-for-the-answer for a fixed duration; throughput is the
completed-request rate and the latency distribution comes straight from the
client-side clock.  Two transports share the harness:

* **engine** — clients call :meth:`DynamicBatcher.submit` directly.  This
  isolates the batching policy from HTTP transport cost (which on a
  single-core host adds the same constant to every request regardless of
  policy) and is the configuration the headline batched-vs-batch-1 speedup
  is measured in.
* **http** — clients go through :class:`~repro.serve.client.ServeClient`
  and the full ``ThreadingHTTPServer`` path, measuring what a network
  client actually observes.

Closed-loop means offered load adapts to service rate, so the comparison
between policies is fair: every configuration is driven to saturation.

The client fleet itself is the shared :func:`repro.utils.concurrency.
run_worker_threads` fan-out — the same primitive the pipeline benchmark
drives its producers with.

Open-loop load (:func:`run_open_loop`) is the complement: requests fire on
a fixed **arrival schedule** regardless of how fast the server answers, so
queueing delay shows up in the latency numbers instead of silently throttling
the offered rate (the coordinated-omission trap).  Schedules come from
:func:`arrival_times` over a :class:`TrafficShape` — constant, diurnal,
burst, or heavy-tail — generated with the counter-based RNG in
:mod:`repro.utils.seed`, so a load pattern is a pure function of its shape
parameters and seed: bit-reproducible across runs, hosts and processes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.profiling.latency import LatencyTracker
from repro.serve.batcher import DynamicBatcher, QueueFullError
from repro.serve.client import ServeClient, ServeClientError
from repro.utils.concurrency import run_worker_threads
from repro.utils.seed import counter_uniforms


@dataclass
class LoadgenResult:
    """Aggregate view of one closed- or open-loop run."""

    transport: str
    concurrency: int
    duration_s: float
    requests: int
    errors: int
    throughput_rps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)
    offered_rps: float = 0.0          # open-loop only: the scheduled rate

    def as_dict(self) -> Dict[str, Any]:
        return {
            "transport": self.transport,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
            "offered_rps": self.offered_rps,
        }


def run_closed_loop(
    send: Callable[[np.ndarray], Any],
    samples: np.ndarray,
    concurrency: int,
    duration_s: float,
    transport: str = "custom",
    warmup_s: float = 0.0,
) -> LoadgenResult:
    """Drive ``send`` from ``concurrency`` threads for ``duration_s`` seconds.

    ``send`` receives one sample (no batch axis) and must block until the
    answer is available.  ``samples`` is a pool the clients cycle through.
    Transient overload errors (queue full / HTTP 503) count as errors and the
    client retries after a short backoff — closed-loop clients must not die
    on backpressure.
    """
    latency = LatencyTracker(window=1 << 16)
    counters = {"requests": 0, "errors": 0}
    lock = threading.Lock()
    stop_at = time.perf_counter() + warmup_s + duration_s
    measure_from = time.perf_counter() + warmup_s

    def client(worker_id: int) -> None:
        index = worker_id
        while True:
            now = time.perf_counter()
            if now >= stop_at:
                return
            sample = samples[index % len(samples)]
            index += concurrency
            started = time.perf_counter()
            try:
                send(sample)
            except (QueueFullError, ServeClientError):
                if started >= measure_from:
                    with lock:
                        counters["errors"] += 1
                time.sleep(0.002)
                continue
            finished = time.perf_counter()
            if started >= measure_from:
                latency.observe(finished - started)
                with lock:
                    counters["requests"] += 1

    started_wall = time.perf_counter()
    run_worker_threads(client, concurrency, name=f"loadgen-{transport}")
    elapsed = max(time.perf_counter() - max(started_wall, measure_from - warmup_s) - warmup_s,
                  1e-9)
    with lock:
        requests, errors = counters["requests"], counters["errors"]
    return LoadgenResult(
        transport=transport,
        concurrency=concurrency,
        duration_s=elapsed,
        requests=requests,
        errors=errors,
        throughput_rps=requests / elapsed,
        latency_ms=latency.summary(unit="ms"),
    )


_SHAPE_KINDS = ("constant", "diurnal", "burst", "heavy_tail")
#: Salt so arrival-time uniforms never collide with other counter_uniforms
#: users sharing a seed (each kind also gets a distinct stream id).
_ARRIVAL_SALT = 0x41525256  # "ARRV"


@dataclass(frozen=True)
class TrafficShape:
    """A bit-reproducible open-loop arrival pattern.

    The schedule is a pure function of the fields below — no global RNG, no
    wall clock — so two hosts running the same shape offer byte-identical
    load.  Kinds:

    * ``constant`` — Poisson arrivals at ``mean_rps``.
    * ``diurnal`` — sinusoidal rate ``mean_rps * (1 + amplitude*sin(2*pi*t/period_s))``,
      a compressed day/night cycle.
    * ``burst`` — square wave: ``burst_factor * mean_rps`` for the first
      ``burst_duty`` fraction of each ``period_s``, and whatever lower rate
      keeps the long-run mean at ``mean_rps`` for the rest.  This is the
      shape the SLO controller is graded against.
    * ``heavy_tail`` — Lomax (Pareto-II) inter-arrival gaps with tail index
      ``pareto_alpha``: long silences punctuated by arrival clumps, mean
      rate still ``mean_rps`` (requires ``pareto_alpha > 1``).
    """

    kind: str = "constant"
    mean_rps: float = 100.0
    duration_s: float = 10.0
    seed: int = 0
    period_s: float = 4.0
    amplitude: float = 0.8
    burst_factor: float = 4.0
    burst_duty: float = 0.2
    pareto_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in _SHAPE_KINDS:
            raise ValueError(f"unknown traffic shape {self.kind!r}; "
                             f"choose from {_SHAPE_KINDS}")
        if self.mean_rps <= 0:
            raise ValueError(f"mean_rps must be > 0, got {self.mean_rps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if not 0.0 < self.burst_duty < 1.0:
            raise ValueError(f"burst_duty must be in (0, 1), got {self.burst_duty}")
        if self.burst_duty * self.burst_factor > 1.0:
            raise ValueError(
                f"burst_duty * burst_factor must be <= 1 so the off-burst "
                f"rate stays non-negative, got "
                f"{self.burst_duty} * {self.burst_factor}")
        if self.kind == "heavy_tail" and self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto_alpha must be > 1 for a finite mean rate, "
                f"got {self.pareto_alpha}")


def _shape_uniforms(shape: TrafficShape, stream: int, start: int,
                    count: int) -> np.ndarray:
    """``count`` deterministic U[0,1) draws from counter ``start`` onward."""
    kind_id = _SHAPE_KINDS.index(shape.kind)
    key = (_ARRIVAL_SALT, int(shape.seed), kind_id, int(stream))
    counters = np.arange(start, start + count, dtype=np.uint64)
    return counter_uniforms(key, counters, draws=1)[:, 0]


def _rate_at(shape: TrafficShape, t: np.ndarray) -> np.ndarray:
    """Instantaneous arrival rate lambda(t) for time-varying shapes."""
    if shape.kind == "diurnal":
        return shape.mean_rps * (
            1.0 + shape.amplitude * np.sin(2.0 * np.pi * t / shape.period_s))
    if shape.kind == "burst":
        high = shape.burst_factor * shape.mean_rps
        low = (shape.mean_rps * (1.0 - shape.burst_duty * shape.burst_factor)
               / (1.0 - shape.burst_duty))
        phase = np.mod(t, shape.period_s) / shape.period_s
        return np.where(phase < shape.burst_duty, high, low)
    raise ValueError(f"{shape.kind!r} has no time-varying rate")  # pragma: no cover


def arrival_times(shape: TrafficShape) -> np.ndarray:
    """Absolute arrival offsets (seconds, ascending) covering ``duration_s``.

    ``constant`` and ``heavy_tail`` draw inter-arrival gaps directly
    (exponential and Lomax respectively, by inverse-CDF of counter-based
    uniforms); the time-varying shapes use **Poisson thinning**: candidate
    arrivals are generated at the peak rate and each is kept with
    probability ``rate(t) / peak``.  Everything indexes the counter RNG by
    candidate ordinal, so the schedule is a pure function of the shape.
    """
    block = max(256, int(np.ceil(shape.mean_rps * shape.duration_s * 2)) + 64)

    if shape.kind in ("constant", "heavy_tail"):
        gaps_done: list = []
        total = 0.0
        start = 0
        while total < shape.duration_s:
            u = _shape_uniforms(shape, stream=0, start=start, count=block)
            start += block
            if shape.kind == "constant":
                gaps = -np.log1p(-u) / shape.mean_rps
            else:
                alpha = shape.pareto_alpha
                scale = (alpha - 1.0) / shape.mean_rps   # Lomax mean = scale/(alpha-1)
                gaps = scale * ((1.0 - u) ** (-1.0 / alpha) - 1.0)
            gaps_done.append(gaps)
            total += float(gaps.sum())
        times = np.concatenate(gaps_done).cumsum()
        return times[times < shape.duration_s]

    # Time-varying: thin a homogeneous Poisson process at the peak rate.
    if shape.kind == "diurnal":
        peak = shape.mean_rps * (1.0 + shape.amplitude)
    else:  # burst
        peak = shape.mean_rps * shape.burst_factor
    kept: list = []
    t = 0.0
    start = 0
    while t < shape.duration_s:
        u_gap = _shape_uniforms(shape, stream=0, start=start, count=block)
        u_keep = _shape_uniforms(shape, stream=1, start=start, count=block)
        start += block
        candidates = t + (-np.log1p(-u_gap) / peak).cumsum()
        accept = u_keep * peak < _rate_at(shape, candidates)
        kept.append(candidates[accept])
        t = float(candidates[-1])
    times = np.concatenate(kept)
    return times[times < shape.duration_s]


def run_open_loop(
    send: Callable[[np.ndarray], Any],
    samples: np.ndarray,
    arrivals: np.ndarray,
    max_inflight: int = 64,
    transport: str = "custom",
) -> LoadgenResult:
    """Fire ``send`` on the fixed schedule ``arrivals`` (seconds from start).

    Open-loop semantics: the schedule does not slow down when the server
    does.  Latency for request *i* is measured from its **scheduled**
    arrival time, so time spent queued behind a slow server counts — the
    standard fix for coordinated omission.  ``max_inflight`` worker threads
    bound memory, and when all are busy past a request's slot the wait shows
    up in that request's latency rather than being silently dropped.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.ndim != 1 or len(arrivals) == 0:
        raise ValueError("arrivals must be a non-empty 1-D array of offsets")
    latency = LatencyTracker(window=1 << 16)
    counters = {"requests": 0, "errors": 0, "next": 0}
    lock = threading.Lock()
    epoch = time.perf_counter()

    def worker(worker_id: int) -> None:
        while True:
            with lock:
                index = counters["next"]
                if index >= len(arrivals):
                    return
                counters["next"] = index + 1
            scheduled = epoch + arrivals[index]
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            sample = samples[index % len(samples)]
            try:
                send(sample)
            except (QueueFullError, ServeClientError):
                with lock:
                    counters["errors"] += 1
                continue
            latency.observe(time.perf_counter() - scheduled)
            with lock:
                counters["requests"] += 1

    workers = max(1, min(int(max_inflight), len(arrivals)))
    run_worker_threads(worker, workers, name=f"openloop-{transport}")
    elapsed = max(time.perf_counter() - epoch, 1e-9)
    span = max(float(arrivals[-1]), 1e-9)
    with lock:
        requests, errors = counters["requests"], counters["errors"]
    return LoadgenResult(
        transport=transport,
        concurrency=workers,
        duration_s=elapsed,
        requests=requests,
        errors=errors,
        throughput_rps=requests / elapsed,
        latency_ms=latency.summary(unit="ms"),
        offered_rps=len(arrivals) / span,
    )


def bench_engine(
    batcher: DynamicBatcher,
    samples: np.ndarray,
    concurrency: int = 32,
    duration_s: float = 5.0,
    warmup_s: float = 0.5,
) -> LoadgenResult:
    """Closed-loop load directly against the micro-batching engine."""

    def send(sample: np.ndarray) -> None:
        batcher.submit(sample, timeout=None).result(timeout=60.0)

    return run_closed_loop(send, samples, concurrency, duration_s,
                           transport="engine", warmup_s=warmup_s)


def bench_http(
    url: str,
    samples: np.ndarray,
    concurrency: int = 16,
    duration_s: float = 5.0,
    warmup_s: float = 0.5,
    timeout: float = 60.0,
) -> LoadgenResult:
    """Closed-loop load through the HTTP front end (one client per thread)."""
    local = threading.local()

    def send(sample: np.ndarray) -> None:
        client: Optional[ServeClient] = getattr(local, "client", None)
        if client is None:
            client = ServeClient(url, timeout=timeout)
            local.client = client
        client.predict_one(sample)

    return run_closed_loop(send, samples, concurrency, duration_s,
                           transport="http", warmup_s=warmup_s)


def bench_artifact(
    artifact_path: str,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    duration_s: float = 3.0,
    concurrency: int = 32,
    transports: Sequence[str] = ("engine", "http"),
    backend: Optional[str] = None,
    warmup_s: float = 0.5,
    rng_seed: int = 0,
    workers: int = 1,
    mode: str = "thread",
) -> Dict[str, Any]:
    """Benchmark one artifact: dynamic micro-batching vs batch-size-1 serving.

    For every transport the same closed-loop load (single-sample requests,
    ``concurrency`` clients) is driven against two policies — the batching
    policy under test and a ``max_batch_size=1`` baseline — and the
    throughput ratio is reported as ``speedup``.  Both policies run the same
    predictor (same canonicalization, same backend), so the ratio isolates
    exactly what request coalescing buys.  ``workers``/``mode`` size the
    predictor pool behind the *batched* policy (the batch-1 baseline always
    runs a single inline worker, so the ratio folds in pool scaling too).
    """
    from repro.serve.artifact import load_artifact
    from repro.serve.batcher import BatchingPolicy
    from repro.serve.server import ModelServer

    predictor = load_artifact(artifact_path, backend=backend)
    shape = predictor.input_shape
    if shape is None:
        raise ValueError(f"artifact {artifact_path!r} records no input_shape; "
                         f"re-export with input_shape=... to benchmark it")
    rng = np.random.default_rng(rng_seed)
    samples = rng.standard_normal((max(64, 2 * concurrency),) + shape).astype(np.float32)

    policies = {
        "batched": BatchingPolicy(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms),
        "batch1": BatchingPolicy(max_batch_size=1, max_wait_ms=0.0),
    }
    results: Dict[str, Any] = {
        "artifact": artifact_path,
        "model": (predictor.manifest.get("model") or {}).get("name"),
        "batch_invariant": predictor.manifest.get("batch_invariant"),
        "policy": {"max_batch_size": max_batch_size, "max_wait_ms": max_wait_ms},
        "concurrency": concurrency,
        "duration_s": duration_s,
        "pool": {"workers": workers, "mode": mode},
        "transports": {},
    }
    for transport in transports:
        per_policy: Dict[str, Any] = {}
        for label, policy in policies.items():
            pool_kwargs: Dict[str, Any] = (
                {"workers": workers, "mode": mode} if label == "batched" else {})
            if transport == "engine":
                batcher = DynamicBatcher(predictor, policy=policy,
                                         name=f"bench-{label}", **pool_kwargs)
                try:
                    run = bench_engine(batcher, samples, concurrency=concurrency,
                                       duration_s=duration_s, warmup_s=warmup_s)
                finally:
                    batcher.close(drain=True)
            elif transport == "http":
                server = ModelServer(predictor, policy=policy, port=0, **pool_kwargs)
                server.start()
                try:
                    run = bench_http(server.url, samples, concurrency=concurrency,
                                     duration_s=duration_s, warmup_s=warmup_s)
                finally:
                    server.stop()
            else:
                raise ValueError(f"unknown transport {transport!r}; use 'engine' or 'http'")
            per_policy[label] = run.as_dict()
        batched = per_policy["batched"]["throughput_rps"]
        baseline = per_policy["batch1"]["throughput_rps"]
        per_policy["speedup"] = batched / baseline if baseline > 0 else float("inf")
        results["transports"][transport] = per_policy
    return results


__all__ = [
    "LoadgenResult",
    "TrafficShape",
    "arrival_times",
    "bench_artifact",
    "bench_engine",
    "bench_http",
    "run_closed_loop",
    "run_open_loop",
]
