"""Closed-loop load generation against the serving stack.

``run_closed_loop`` drives N concurrent clients, each repeating
send-one-sample → wait-for-the-answer for a fixed duration; throughput is the
completed-request rate and the latency distribution comes straight from the
client-side clock.  Two transports share the harness:

* **engine** — clients call :meth:`DynamicBatcher.submit` directly.  This
  isolates the batching policy from HTTP transport cost (which on a
  single-core host adds the same constant to every request regardless of
  policy) and is the configuration the headline batched-vs-batch-1 speedup
  is measured in.
* **http** — clients go through :class:`~repro.serve.client.ServeClient`
  and the full ``ThreadingHTTPServer`` path, measuring what a network
  client actually observes.

Closed-loop means offered load adapts to service rate, so the comparison
between policies is fair: every configuration is driven to saturation.

The client fleet itself is the shared :func:`repro.utils.concurrency.
run_worker_threads` fan-out — the same primitive the pipeline benchmark
drives its producers with.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.profiling.latency import LatencyTracker
from repro.serve.batcher import DynamicBatcher, QueueFullError
from repro.serve.client import ServeClient, ServeClientError
from repro.utils.concurrency import run_worker_threads


@dataclass
class LoadgenResult:
    """Aggregate view of one closed-loop run."""

    transport: str
    concurrency: int
    duration_s: float
    requests: int
    errors: int
    throughput_rps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "transport": self.transport,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
        }


def run_closed_loop(
    send: Callable[[np.ndarray], Any],
    samples: np.ndarray,
    concurrency: int,
    duration_s: float,
    transport: str = "custom",
    warmup_s: float = 0.0,
) -> LoadgenResult:
    """Drive ``send`` from ``concurrency`` threads for ``duration_s`` seconds.

    ``send`` receives one sample (no batch axis) and must block until the
    answer is available.  ``samples`` is a pool the clients cycle through.
    Transient overload errors (queue full / HTTP 503) count as errors and the
    client retries after a short backoff — closed-loop clients must not die
    on backpressure.
    """
    latency = LatencyTracker(window=1 << 16)
    counters = {"requests": 0, "errors": 0}
    lock = threading.Lock()
    stop_at = time.perf_counter() + warmup_s + duration_s
    measure_from = time.perf_counter() + warmup_s

    def client(worker_id: int) -> None:
        index = worker_id
        while True:
            now = time.perf_counter()
            if now >= stop_at:
                return
            sample = samples[index % len(samples)]
            index += concurrency
            started = time.perf_counter()
            try:
                send(sample)
            except (QueueFullError, ServeClientError):
                if started >= measure_from:
                    with lock:
                        counters["errors"] += 1
                time.sleep(0.002)
                continue
            finished = time.perf_counter()
            if started >= measure_from:
                latency.observe(finished - started)
                with lock:
                    counters["requests"] += 1

    started_wall = time.perf_counter()
    run_worker_threads(client, concurrency, name=f"loadgen-{transport}")
    elapsed = max(time.perf_counter() - max(started_wall, measure_from - warmup_s) - warmup_s,
                  1e-9)
    with lock:
        requests, errors = counters["requests"], counters["errors"]
    return LoadgenResult(
        transport=transport,
        concurrency=concurrency,
        duration_s=elapsed,
        requests=requests,
        errors=errors,
        throughput_rps=requests / elapsed,
        latency_ms=latency.summary(unit="ms"),
    )


def bench_engine(
    batcher: DynamicBatcher,
    samples: np.ndarray,
    concurrency: int = 32,
    duration_s: float = 5.0,
    warmup_s: float = 0.5,
) -> LoadgenResult:
    """Closed-loop load directly against the micro-batching engine."""

    def send(sample: np.ndarray) -> None:
        batcher.submit(sample, timeout=None).result(timeout=60.0)

    return run_closed_loop(send, samples, concurrency, duration_s,
                           transport="engine", warmup_s=warmup_s)


def bench_http(
    url: str,
    samples: np.ndarray,
    concurrency: int = 16,
    duration_s: float = 5.0,
    warmup_s: float = 0.5,
    timeout: float = 60.0,
) -> LoadgenResult:
    """Closed-loop load through the HTTP front end (one client per thread)."""
    local = threading.local()

    def send(sample: np.ndarray) -> None:
        client: Optional[ServeClient] = getattr(local, "client", None)
        if client is None:
            client = ServeClient(url, timeout=timeout)
            local.client = client
        client.predict_one(sample)

    return run_closed_loop(send, samples, concurrency, duration_s,
                           transport="http", warmup_s=warmup_s)


def bench_artifact(
    artifact_path: str,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    duration_s: float = 3.0,
    concurrency: int = 32,
    transports: Sequence[str] = ("engine", "http"),
    backend: Optional[str] = None,
    warmup_s: float = 0.5,
    rng_seed: int = 0,
) -> Dict[str, Any]:
    """Benchmark one artifact: dynamic micro-batching vs batch-size-1 serving.

    For every transport the same closed-loop load (single-sample requests,
    ``concurrency`` clients) is driven against two policies — the batching
    policy under test and a ``max_batch_size=1`` baseline — and the
    throughput ratio is reported as ``speedup``.  Both policies run the same
    predictor (same canonicalization, same backend), so the ratio isolates
    exactly what request coalescing buys.
    """
    from repro.serve.artifact import load_artifact
    from repro.serve.batcher import BatchingPolicy
    from repro.serve.server import ModelServer

    predictor = load_artifact(artifact_path, backend=backend)
    shape = predictor.input_shape
    if shape is None:
        raise ValueError(f"artifact {artifact_path!r} records no input_shape; "
                         f"re-export with input_shape=... to benchmark it")
    rng = np.random.default_rng(rng_seed)
    samples = rng.standard_normal((max(64, 2 * concurrency),) + shape).astype(np.float32)

    policies = {
        "batched": BatchingPolicy(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms),
        "batch1": BatchingPolicy(max_batch_size=1, max_wait_ms=0.0),
    }
    results: Dict[str, Any] = {
        "artifact": artifact_path,
        "model": (predictor.manifest.get("model") or {}).get("name"),
        "batch_invariant": predictor.manifest.get("batch_invariant"),
        "policy": {"max_batch_size": max_batch_size, "max_wait_ms": max_wait_ms},
        "concurrency": concurrency,
        "duration_s": duration_s,
        "transports": {},
    }
    for transport in transports:
        per_policy: Dict[str, Any] = {}
        for label, policy in policies.items():
            if transport == "engine":
                batcher = DynamicBatcher(predictor, policy=policy, name=f"bench-{label}")
                try:
                    run = bench_engine(batcher, samples, concurrency=concurrency,
                                       duration_s=duration_s, warmup_s=warmup_s)
                finally:
                    batcher.close(drain=True)
            elif transport == "http":
                server = ModelServer(predictor, policy=policy, port=0)
                server.start()
                try:
                    run = bench_http(server.url, samples, concurrency=concurrency,
                                     duration_s=duration_s, warmup_s=warmup_s)
                finally:
                    server.stop()
            else:
                raise ValueError(f"unknown transport {transport!r}; use 'engine' or 'http'")
            per_policy[label] = run.as_dict()
        batched = per_policy["batched"]["throughput_rps"]
        baseline = per_policy["batch1"]["throughput_rps"]
        per_policy["speedup"] = batched / baseline if baseline > 0 else float("inf")
        results["transports"][transport] = per_policy
    return results


__all__ = ["LoadgenResult", "run_closed_loop", "bench_engine", "bench_http", "bench_artifact"]
