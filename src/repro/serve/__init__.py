"""Model serving: artifact export/load, dynamic micro-batching, HTTP frontend.

The deployment path for trained (and factorized) models:

1. :func:`export_artifact` writes a versioned, self-describing ``.npz``
   artifact — low-rank factors stay factorized for the compressed FLOP path.
2. :func:`load_artifact` rebuilds the model without the training stack and
   returns a :class:`Predictor` (graph-free ``no_grad`` inference).
3. :class:`DynamicBatcher` coalesces single-sample requests into micro
   batches under a max-batch-size / max-wait-ms policy with backpressure.
4. :class:`ModelServer` exposes ``/predict``, ``/healthz`` and ``/metrics``
   over a stdlib ``ThreadingHTTPServer``; :class:`ServeClient` talks to it.
5. :mod:`repro.serve.loadgen` drives closed-loop load for benchmarking.

See DESIGN.md §9 for the artifact format, the batching policy, and the
determinism guarantee (predictions independent of batch composition).
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    Predictor,
    artifact_size_bytes,
    check_batch_invariance,
    export_artifact,
    load_artifact,
    read_manifest,
)
from repro.serve.batcher import (
    BatcherClosedError,
    BatchingPolicy,
    DynamicBatcher,
    QueueFullError,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.loadgen import (
    LoadgenResult,
    bench_artifact,
    bench_engine,
    bench_http,
    run_closed_loop,
)
from repro.serve.server import ModelServer

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "Predictor",
    "artifact_size_bytes",
    "check_batch_invariance",
    "export_artifact",
    "load_artifact",
    "read_manifest",
    "BatcherClosedError",
    "BatchingPolicy",
    "DynamicBatcher",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "LoadgenResult",
    "bench_artifact",
    "bench_engine",
    "bench_http",
    "run_closed_loop",
    "ModelServer",
]
