"""Model serving: artifact export/load, predictor pool, HTTP frontend.

The deployment path for trained (and factorized) models:

1. :func:`export_artifact` writes a versioned, self-describing ``.npz``
   artifact — low-rank factors stay factorized for the compressed FLOP path.
2. :func:`load_artifact` rebuilds the model without the training stack and
   returns a :class:`Predictor` (graph-free ``no_grad`` inference).
3. :class:`DynamicBatcher` coalesces single-sample requests into micro
   batches under a max-batch-size / max-wait-ms policy and feeds them to a
   replicated predictor pool: N workers, each owning an execution engine
   (same-thread :class:`InlineEngine` or forked :class:`ProcessEngine` with
   shared-memory weights).  Admission control (:class:`AdmissionPolicy`),
   a response cache, and an SLO controller (:class:`SLOPolicy`) layer on
   top.
4. :class:`ModelServer` exposes ``/predict``, ``/healthz``, ``/metrics``
   and ``/respawn`` over a stdlib ``ThreadingHTTPServer``;
   :class:`ServeClient` talks to it with jittered-backoff retries.
5. :mod:`repro.serve.loadgen` drives closed-loop load for benchmarking and
   open-loop load (:class:`TrafficShape` / :func:`run_open_loop`) for
   SLO-attainment studies.

See DESIGN.md §9 for the artifact format and the determinism guarantee
(predictions independent of batch composition), and §16 for the pool
architecture, admission policy, and SLO control loop.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    LoadShedError,
    QueueFullError,
)
from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    Predictor,
    artifact_size_bytes,
    check_batch_invariance,
    export_artifact,
    load_artifact,
    read_manifest,
)
from repro.serve.batcher import (
    BatcherClosedError,
    BatchingPolicy,
    DynamicBatcher,
)
from repro.serve.cache import ResponseCache, batch_cache_key
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.engine import (
    InlineEngine,
    ProcessEngine,
    SharedModelWeights,
    WorkerDiedError,
)
from repro.serve.loadgen import (
    LoadgenResult,
    TrafficShape,
    arrival_times,
    bench_artifact,
    bench_engine,
    bench_http,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.pool import PredictorPool
from repro.serve.server import ModelServer
from repro.serve.slo import SLOController, SLOPolicy

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "AdmissionController",
    "AdmissionPolicy",
    "ArtifactError",
    "Predictor",
    "artifact_size_bytes",
    "check_batch_invariance",
    "export_artifact",
    "load_artifact",
    "read_manifest",
    "BatcherClosedError",
    "BatchingPolicy",
    "DynamicBatcher",
    "InlineEngine",
    "LoadShedError",
    "ProcessEngine",
    "PredictorPool",
    "QueueFullError",
    "ResponseCache",
    "SLOController",
    "SLOPolicy",
    "ServeClient",
    "ServeClientError",
    "SharedModelWeights",
    "WorkerDiedError",
    "batch_cache_key",
    "LoadgenResult",
    "TrafficShape",
    "arrival_times",
    "bench_artifact",
    "bench_engine",
    "bench_http",
    "run_closed_loop",
    "run_open_loop",
    "ModelServer",
]
