"""Admission control: the policy layer in front of the request queue.

PR 3's backpressure was one hardcoded behaviour — ``put_nowait`` and raise
:class:`QueueFullError` when the bounded queue is at capacity.  This module
turns that into a policy object with three kinds:

* ``reject``   — the classic behaviour (and the default): fail fast when the
  queue is full so callers shed load at the edge.  Bit-for-bit compatible
  with the pre-pool engine.
* ``block``    — producers wait for queue space instead of failing; useful
  for offline batch scoring where throughput matters and latency does not.
* ``priority`` — requests carry an integer ``priority`` (higher = more
  important, default 0).  Above the ``shed_watermark`` fill fraction the
  controller sheds requests whose priority is below
  ``shed_below_priority`` *before* they ever occupy a queue slot, keeping
  capacity for important traffic during overload.  Shed requests fail with
  :class:`LoadShedError` — a :class:`QueueFullError` subclass, so every
  existing retry/503 path treats shedding exactly like a full queue.

The controller owns no threads and takes one lock-free decision per request;
its counters (admitted / rejected / shed) land in the shared serve metrics
registry and surface through ``/metrics``.
"""

from __future__ import annotations

import queue as _queue
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.telemetry import MetricsRegistry
from repro.utils.concurrency import ClosableQueue

_KINDS = ("reject", "block", "priority")


class QueueFullError(RuntimeError):
    """The request queue is at capacity; the caller should retry or shed load."""


class LoadShedError(QueueFullError):
    """The request was shed by the admission policy (overload + low priority)."""


@dataclass
class AdmissionPolicy:
    """How requests are admitted to the batching queue.

    ``kind``                — ``reject`` | ``block`` | ``priority``.
    ``shed_watermark``      — queue fill fraction (of ``max_queue``) above
                              which the ``priority`` kind starts shedding.
    ``shed_below_priority`` — requests with ``priority`` strictly below this
                              are sheddable; the default (1) sheds only the
                              default-priority (0) traffic and admits
                              anything a caller bothered to mark important.
    """

    kind: str = "reject"
    shed_watermark: float = 0.75
    shed_below_priority: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"admission kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise ValueError(
                f"shed_watermark must be in (0, 1], got {self.shed_watermark}")


class AdmissionController:
    """Apply an :class:`AdmissionPolicy` to every enqueue."""

    def __init__(
        self,
        queue: ClosableQueue,
        max_queue: int,
        policy: Optional[AdmissionPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        name: str = "batcher",
    ):
        self.queue = queue
        self.max_queue = int(max_queue)
        self.policy = policy or AdmissionPolicy()
        self.name = name
        registry = registry or MetricsRegistry("serve")
        self._admitted = registry.counter("admission_admitted_total")
        self._rejected = registry.counter("admission_rejected_total")
        self._shed = registry.counter("admission_shed_total")
        self._watermark_depth = max(
            1, int(self.max_queue * self.policy.shed_watermark))

    # ------------------------------------------------------------------ #
    def admit(self, request: Any, timeout: Optional[float]) -> None:
        """Enqueue ``request`` or raise.

        ``timeout`` keeps the pre-pool submit semantics for the ``reject``
        and ``priority`` kinds: ``0`` fails immediately when full, ``None``
        blocks.  The ``block`` kind always waits for space.
        """
        policy = self.policy
        if (policy.kind == "priority"
                and getattr(request, "priority", 0) < policy.shed_below_priority
                and self.queue.qsize() >= self._watermark_depth):
            self._shed.inc()
            raise LoadShedError(
                f"{self.name}: shed priority<{policy.shed_below_priority} request "
                f"at queue depth >= {self._watermark_depth}/{self.max_queue}")
        if policy.kind == "block":
            timeout = None
        try:
            if timeout == 0.0:
                self.queue.put_nowait(request)
            else:
                self.queue.put(request, timeout=timeout)
        except _queue.Full:
            self._rejected.inc()
            raise QueueFullError(
                f"{self.name}: request queue is full "
                f"({self.max_queue} pending requests)"
            ) from None
        self._admitted.inc()

    # ------------------------------------------------------------------ #
    @property
    def admitted_total(self) -> int:
        return self._admitted.value

    @property
    def rejected_total(self) -> int:
        return self._rejected.value

    @property
    def shed_total(self) -> int:
        return self._shed.value

    def stats(self) -> Dict[str, Any]:
        return {
            "kind": self.policy.kind,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "shed_total": self.shed_total,
            "shed_watermark_depth": self._watermark_depth,
        }


__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "LoadShedError",
    "QueueFullError",
]
