"""Response cache keyed on canonicalized input batches.

Batch canonicalization (DESIGN.md §9) makes predictions a *pure function of
the request's samples* — the whole point of the padding rule is that the
answer does not depend on which other requests shared the forward pass.
That purity is exactly the precondition for caching: two byte-identical
requests are guaranteed byte-identical answers, so serving the second one
from memory is indistinguishable from recomputing it.  The cache therefore
cannot change any output bit — it only removes forwards.

Keys are ``(shape, dtype, sha1(bytes))`` of the request's sample array —
content-addressed, so callers hit regardless of how they built the array.
Values are defensive copies both ways (the cache never aliases caller or
worker memory).  Eviction is plain LRU under one lock; the default capacity
is 0 (disabled) so the hot path pays nothing unless a deployment opts in.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.telemetry import MetricsRegistry


def batch_cache_key(samples: np.ndarray) -> Tuple:
    """Content hash of one request's sample array."""
    array = np.ascontiguousarray(samples, dtype=np.float32)
    return (array.shape, hashlib.sha1(array.tobytes()).hexdigest())


class ResponseCache:
    """Thread-safe LRU of request-samples → predictions."""

    def __init__(self, capacity: int,
                 registry: Optional[MetricsRegistry] = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        registry = registry or MetricsRegistry("serve")
        self._hits = registry.counter("cache_hits_total")
        self._misses = registry.counter("cache_misses_total")

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, samples: np.ndarray) -> Optional[np.ndarray]:
        if not self.enabled:
            return None
        key = batch_cache_key(samples)
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return value.copy()

    def put(self, samples: np.ndarray, outputs: np.ndarray) -> None:
        if not self.enabled:
            return
        key = batch_cache_key(samples)
        value = np.array(outputs, dtype=np.float32, copy=True)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits_total(self) -> int:
        return self._hits.value

    @property
    def misses_total(self) -> int:
        return self._misses.value

    def stats(self) -> Dict[str, Any]:
        total = self.hits_total + self.misses_total
        return {
            "capacity": self.capacity,
            "entries": len(self),
            "hits_total": self.hits_total,
            "misses_total": self.misses_total,
            "hit_rate": self.hits_total / total if total else 0.0,
        }


__all__ = ["ResponseCache", "batch_cache_key"]
