"""Stdlib-only HTTP frontend for the micro-batching inference engine.

``ModelServer`` wires an exported artifact (or an in-memory model) to a
:class:`~repro.serve.batcher.DynamicBatcher` and exposes three endpoints on a
``ThreadingHTTPServer``:

* ``POST /predict``  — body ``{"inputs": [<sample>, ...]}`` (or a single
  ``"input"``); each sample must match the artifact's input shape.  Handler
  threads only parse JSON and wait on the batcher future; every forward pass
  happens on the single engine worker.  Responses carry the model outputs
  plus the argmax per sample.
* ``GET /healthz``   — liveness: model name, uptime, request counter, plus
  the load-shedding signals (batcher queue depth, inference-worker
  liveness); a dead worker reports ``status: "degraded"``.
* ``GET /metrics``   — JSON counters: request count, error count, end-to-end
  latency p50/p95/p99 (ms), the executed batch-size histogram and queue
  statistics, plus the unified versioned telemetry snapshot
  (:mod:`repro.telemetry`).  ``GET /metrics?format=prometheus`` returns the
  Prometheus text exposition instead.

Overload (full request queue) returns ``503`` so closed-loop clients back
off; malformed bodies return ``400``; unknown routes ``404``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro import nn
from repro.serve.admission import AdmissionPolicy
from repro.serve.artifact import Predictor, load_artifact
from repro.serve.batcher import BatcherClosedError, BatchingPolicy, DynamicBatcher, QueueFullError
from repro.serve.engine import WorkerDiedError
from repro.serve.slo import SLOPolicy
from repro.telemetry import MetricsRegistry
from repro.telemetry import tracing as _tracing
from repro.utils import get_logger

logger = get_logger("serve.server")

_PREDICT_TIMEOUT_S = 60.0


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Closed-loop load with connection-per-request clients churns through
    # sockets quickly; the http.server default backlog of 5 drops connections
    # (RST) under even modest concurrency.
    request_queue_size = 128


class ModelServer:
    """An HTTP inference server around one model and one batching engine."""

    def __init__(
        self,
        model: Union[str, nn.Module, Predictor],
        policy: Optional[BatchingPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        backend: Optional[str] = None,
        name: Optional[str] = None,
        *,
        workers: int = 1,
        mode: str = "thread",
        admission: Optional[AdmissionPolicy] = None,
        cache_size: int = 0,
        slo: Optional[Union[SLOPolicy, float]] = None,
    ):
        if isinstance(model, str):
            predictor = load_artifact(model, backend=backend)
            name = name or str((predictor.manifest.get("model") or {}).get("name", model))
        elif isinstance(model, Predictor):
            predictor = model
            if backend is not None:
                predictor.backend = backend
        else:
            predictor = Predictor(model, backend=backend)
        self.predictor = predictor
        self.model_name = name or type(predictor.model).__name__
        # One registry for the whole serving stack: the batcher creates its
        # instruments in it and the HTTP layer adds its own alongside.
        self.metrics = MetricsRegistry("serve")
        self.batcher = DynamicBatcher(predictor, policy=policy,
                                      name=f"{self.model_name}-engine",
                                      registry=self.metrics,
                                      workers=workers, mode=mode,
                                      admission=admission,
                                      cache_size=cache_size, slo=slo)
        self.e2e_latency = self.metrics.latency("e2e_latency")
        self.started_at = time.time()
        self._http_requests = self.metrics.counter("http_requests_total")
        self._http_errors = self.metrics.counter("http_errors_total")

        handler = _make_handler(self)
        self._http = _HTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name=f"{self.model_name}-http", daemon=True,
        )
        self._thread.start()
        logger.info("serving %s on %s", self.model_name, self.url)
        return self

    def serve_forever(self) -> None:
        """Blocking variant used by the CLI ``serve`` verb."""
        logger.info("serving %s on %s", self.model_name, self.url)
        self._serving = True
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            self.stop()

    def stop(self, drain: bool = True) -> None:
        """Shut down: stop the HTTP listener, then drain the engine.

        Safe to call whether or not the server ever started serving —
        ``shutdown()`` must only run against a live ``serve_forever`` loop
        (it otherwise blocks forever on socketserver's handshake event).
        """
        if self._serving:
            self._http.shutdown()
            self._serving = False
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.batcher.close(drain=drain)

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Endpoint bodies (transport-independent, unit-testable)
    # ------------------------------------------------------------------ #
    @property
    def http_requests_total(self) -> int:
        return self._http_requests.value

    @property
    def http_errors_total(self) -> int:
        return self._http_errors.value

    def handle_predict(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        started = time.perf_counter()
        if "inputs" in payload:
            raw, single = payload["inputs"], False
        elif "input" in payload:
            raw, single = [payload["input"]], True
        else:
            return 400, {"error": "body must contain 'inputs' (a list of samples) or 'input'"}
        try:
            batch = np.asarray(raw, dtype=np.float32)
        except (TypeError, ValueError) as error:
            return 400, {"error": f"inputs are not a numeric array: {error}"}
        if batch.ndim < 1 or batch.shape[0] < 1:
            return 400, {"error": "inputs must contain at least one sample"}
        expected = self.predictor.input_shape
        if expected is not None and tuple(batch.shape[1:]) != expected:
            return 400, {"error": f"each sample must have shape {list(expected)}, "
                                  f"got {list(batch.shape[1:])}"}
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "priority must be an integer"}
        try:
            future = self.batcher.submit_batch(batch, priority=priority)
            outputs = future.result(timeout=_PREDICT_TIMEOUT_S)
        except QueueFullError as error:
            # Covers load shedding too (LoadShedError subclasses it): both
            # are transient overload, so the client may retry with backoff.
            return 503, {"error": str(error), "retry": True}
        except WorkerDiedError as error:
            # Degraded pool: retryable once an operator (or the CI smoke)
            # respawns the dead workers.
            return 503, {"error": str(error), "retry": True}
        except BatcherClosedError as error:
            return 503, {"error": str(error), "retry": False}
        except Exception as error:  # noqa: BLE001 — surface inference errors as 500
            logger.error("inference failed: %s", error)
            return 500, {"error": f"inference failed: {error}"}
        finished = time.perf_counter()
        self.e2e_latency.observe(finished - started)
        if _tracing.enabled():
            # Request lifecycle on the handler thread's lane; the engine
            # worker records batch_assembly/inference/respond on its own.
            _tracing.record_span("request", started, finished, cat="serve",
                                 samples=int(batch.shape[0]))
        result: Dict[str, Any] = {
            "outputs": outputs[0].tolist() if single else outputs.tolist(),
            "argmax": (int(np.argmax(outputs[0])) if single
                       else [int(i) for i in np.argmax(outputs, axis=-1)]),
            "batched_samples": int(batch.shape[0]),
        }
        return 200, result

    def handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        worker_alive = self.batcher.worker_alive
        return 200, {
            # Any dead inference worker degrades the replica: at zero alive
            # workers every /predict fails, below full strength throughput
            # is reduced — either way load balancers should back off until
            # /respawn (or an operator) restores the pool.
            "status": "ok" if worker_alive else "degraded",
            "model": self.model_name,
            "uptime_s": time.time() - self.started_at,
            "requests_served": self.batcher.batch_sizes.samples,
            "format_version": self.predictor.manifest.get("format_version"),
            "queue_depth": self.batcher.queue_depth,
            "worker_alive": worker_alive,
            "workers": self.batcher.workers,
            "workers_alive": self.batcher.alive_workers,
        }

    def handle_respawn(self) -> Tuple[int, Dict[str, Any]]:
        """Replace dead pool workers; the recovery half of the kill smoke."""
        respawned = self.batcher.respawn_workers()
        return 200, {
            "respawned": respawned,
            "workers": self.batcher.workers,
            "workers_alive": self.batcher.alive_workers,
        }

    def handle_metrics(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "model": self.model_name,
            "http": {"requests_total": self.http_requests_total,
                     "errors_total": self.http_errors_total},
            "e2e_latency_ms": self.e2e_latency.summary(unit="ms"),
            "engine": self.batcher.stats(),
            "telemetry": self.metrics.snapshot(),
        }

    def handle_metrics_prometheus(self) -> Tuple[int, str]:
        return 200, self.metrics.render_prometheus()

    def _count(self, status: int) -> None:
        self._http_requests.inc()
        if status >= 400:
            self._http_errors.inc()


def _make_handler(server: ModelServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _respond(self, status: int, body: Dict[str, Any]) -> None:
            encoded = json.dumps(body).encode("utf-8")
            server._count(status)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def _respond_text(self, status: int, body: str) -> None:
            encoded = body.encode("utf-8")
            server._count(status)
            self.send_response(status)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parts = urlsplit(self.path)
            query = parse_qs(parts.query)
            if parts.path == "/healthz":
                self._respond(*server.handle_healthz())
            elif parts.path == "/metrics":
                if query.get("format", [""])[0] == "prometheus":
                    self._respond_text(*server.handle_metrics_prometheus())
                else:
                    self._respond(*server.handle_metrics())
            else:
                self._respond(404, {"error": f"unknown path {self.path!r}; "
                                             f"endpoints: /predict /healthz /metrics"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/respawn":
                # Drain the (ignored) body so a keep-alive connection stays
                # framed correctly for its next request.
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                self._respond(*server.handle_respawn())
                return
            if self.path != "/predict":
                self._respond(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(payload, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                self._respond(400, {"error": f"invalid JSON body: {error}"})
                return
            self._respond(*server.handle_predict(payload))

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            logger.debug("http: " + format, *args)

    return Handler


__all__ = ["ModelServer"]
