"""Dynamic micro-batching: coalesce single-sample requests into batches.

The engine is a bounded request queue plus one inference worker thread:

* Producers (HTTP handler threads, benchmark clients) call
  :meth:`DynamicBatcher.submit` and receive a ``concurrent.futures.Future``.
  When the queue is full the submit fails fast with :class:`QueueFullError`
  — backpressure instead of unbounded memory growth.
* The worker blocks for the first request, then keeps draining the queue
  until either ``max_batch_size`` samples are collected or ``max_wait_ms``
  has elapsed since the *first* request of the batch arrived (so the wait
  bound is a latency bound, not a rate bound).  The coalesced batch runs
  through the model once, graph-free, and each future receives its slice.
* Requests may carry several samples; one carrying more than
  ``max_batch_size`` is executed alone, chunked into max-batch-size pieces.
* :meth:`close` stops intake, optionally drains queued work, and fails any
  futures that remain after a non-draining shutdown.

Only the worker thread ever runs the model, so the engine needs no locking
around model state and is safe with backends that keep global scratch (the
``numpy-fast`` arena).  Determinism under batching comes from the
:class:`~repro.serve.artifact.Predictor` padding rule — results are
bit-identical no matter how requests happen to be grouped (DESIGN.md §9).

The bounded queue, shutdown sentinel and pending-request sweep are the
shared :mod:`repro.utils.concurrency` primitives — the same machinery the
data pipeline's prefetcher runs on — and the worker keeps a stall-vs-compute
split (:class:`~repro.profiling.pipeline.PipelineStats`) that ``/metrics``
surfaces as engine utilization.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro import nn
from repro.profiling.pipeline import PipelineStats
from repro.serve.artifact import Predictor
from repro.telemetry import MetricsRegistry
from repro.telemetry import tracing as _tracing
from repro.utils.concurrency import CLOSED, ClosableQueue


class QueueFullError(RuntimeError):
    """The request queue is at capacity; the caller should retry or shed load."""


class BatcherClosedError(RuntimeError):
    """The batcher no longer accepts requests."""


@dataclass
class BatchingPolicy:
    """Knobs of the coalescing loop.

    ``max_batch_size``  — largest number of samples fused into one forward.
    ``max_wait_ms``     — longest a request may sit waiting for companions,
                          measured from its enqueue time.
    ``max_queue``       — bound on queued requests (backpressure).
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class _Request:
    __slots__ = ("samples", "n", "future", "enqueued_at")

    def __init__(self, samples: np.ndarray):
        self.samples = samples                   # always (n, *sample_shape)
        self.n = samples.shape[0]
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class DynamicBatcher:
    """Thread-safe request coalescing in front of a single-threaded predictor."""

    def __init__(
        self,
        predictor: Union[Predictor, nn.Module, Callable[[np.ndarray], np.ndarray]],
        policy: Optional[BatchingPolicy] = None,
        name: str = "batcher",
        registry: Optional[MetricsRegistry] = None,
    ):
        if isinstance(predictor, nn.Module):
            predictor = Predictor(predictor)
        self.predict = predictor
        self.policy = policy or BatchingPolicy()
        self.name = name
        self._queue = ClosableQueue(maxsize=self.policy.max_queue)
        self._closed = False
        self._lock = threading.Lock()

        # Observability (exposed via the server's /metrics endpoint).  All
        # instruments are created through the unified registry — pass one in
        # (the server shares its own) or let the batcher own a private one.
        self.metrics = registry if registry is not None else MetricsRegistry("serve")
        self.queue_latency = self.metrics.latency("queue_wait")        # enqueue → batch start
        self.compute_latency = self.metrics.latency("compute")         # forward pass per batch
        self.request_latency = self.metrics.latency("request_latency")  # enqueue → future resolved
        self.batch_sizes = self.metrics.histogram(
            "batch_sizes", max_batch_size=self.policy.max_batch_size)
        self.worker_stats = PipelineStats()       # worker stall vs inference time
        self._requests = self.metrics.counter("requests_total")
        self._errors = self.metrics.counter("errors_total")
        self.metrics.register_collector("batcher_worker", self._worker_snapshot)

        self._worker = threading.Thread(target=self._run, name=f"{name}-worker", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Liveness / load signals (consumed by /healthz and load shedding)
    # ------------------------------------------------------------------ #
    @property
    def requests_total(self) -> int:
        return self._requests.value

    @property
    def errors_total(self) -> int:
        return self._errors.value

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def worker_alive(self) -> bool:
        return self._worker.is_alive()

    def _worker_snapshot(self) -> Dict[str, Any]:
        return {
            **self.worker_stats.as_dict(),
            "utilization": 1.0 - self.worker_stats.stall_fraction,
            "queue_depth": self.queue_depth,
            "alive": self.worker_alive,
        }

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray, timeout: Optional[float] = 0.0) -> Future:
        """Enqueue one sample (shape ``sample_shape``); returns its future.

        ``timeout`` bounds how long to wait for queue space: ``0`` fails
        immediately when full (the server's behaviour — shed load), ``None``
        blocks until space frees up.
        """
        array = np.asarray(sample, dtype=np.float32)
        return self._enqueue(array[None, ...], timeout)

    def submit_batch(self, samples: np.ndarray, timeout: Optional[float] = 0.0) -> Future:
        """Enqueue a multi-sample request of shape ``(n, *sample_shape)``.

        The whole request resolves through one future; requests wider than
        ``max_batch_size`` are executed alone, in max-batch-size chunks.
        """
        array = np.asarray(samples, dtype=np.float32)
        if array.ndim < 1 or array.shape[0] < 1:
            raise ValueError("submit_batch expects at least one sample")
        return self._enqueue(array, timeout)

    def _enqueue(self, samples: np.ndarray, timeout: Optional[float]) -> Future:
        with self._lock:
            if self._closed:
                raise BatcherClosedError(f"{self.name} is shut down")
        self._requests.inc()
        request = _Request(samples)
        try:
            if timeout == 0.0:
                self._queue.put_nowait(request)
            else:
                self._queue.put(request, timeout=timeout)
        except queue.Full:
            self._errors.inc()
            raise QueueFullError(
                f"{self.name}: request queue is full "
                f"({self.policy.max_queue} pending requests)"
            ) from None
        # close() may have raced us between the _closed check and the put: if
        # the worker is already gone, nothing will ever drain this request —
        # sweep the queue so the future fails instead of hanging its caller.
        if self._closed and not self._worker.is_alive():
            self._fail_pending(BatcherClosedError(f"{self.name} is shut down"))
        return request.future

    def __call__(self, samples: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        future = self.submit_batch(samples, timeout=None)
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _collect(self, first: _Request) -> List[_Request]:
        """Coalesce up to ``max_batch_size`` samples, bounded by max_wait_ms."""
        batch = [first]
        total = first.n
        deadline = first.enqueued_at + self.policy.max_wait_ms / 1e3
        while total < self.policy.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                item = self._queue.get_nowait() if remaining <= 0 else \
                    self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is CLOSED:
                # Hand the sentinel to the outer loop via the carry slot —
                # re-queueing could block on a full bounded queue.
                self._carry = item
                break
            if total + item.n > self.policy.max_batch_size:
                # Would overflow the batch: run it in the next cycle.  Re-queueing
                # would reorder requests, so handle it immediately after this
                # batch via the carry slot.
                self._carry = item
                break
            batch.append(item)
            total += item.n
        return batch

    def _run(self) -> None:
        self._carry: Optional[Any] = None
        while True:
            waited_from = time.perf_counter()
            if self._carry is not None:
                item, self._carry = self._carry, None
            else:
                item = self._queue.get()
            if item is CLOSED:
                break
            first = item
            if first.n >= self.policy.max_batch_size:
                batch = [first]
            else:
                batch = self._collect(first)
            # Idle-plus-coalescing wait is "stall", the forward pass is
            # "compute" — the serving twin of the trainer's data-stall split.
            executing_from = time.perf_counter()
            self.worker_stats.observe_stall(executing_from - waited_from)
            if _tracing.enabled():
                _tracing.record_span("batch_assembly", waited_from,
                                     executing_from, cat="serve",
                                     requests=len(batch))
            self._execute(batch)
            self.worker_stats.observe_compute(time.perf_counter() - executing_from,
                                              samples=sum(r.n for r in batch))
        self._fail_pending(BatcherClosedError(f"{self.name} shut down before execution"))

    def _execute(self, batch: List[_Request]) -> None:
        started = time.perf_counter()
        for request in batch:
            self.queue_latency.observe(started - request.enqueued_at)
        total = sum(request.n for request in batch)
        self.batch_sizes.observe(total)
        try:
            stacked = batch[0].samples if len(batch) == 1 else \
                np.concatenate([request.samples for request in batch], axis=0)
            if total > self.policy.max_batch_size:
                # A single oversized request: chunk it so memory stays bounded.
                step = self.policy.max_batch_size
                outputs = np.concatenate(
                    [self.predict(stacked[i:i + step]) for i in range(0, total, step)],
                    axis=0,
                )
            else:
                outputs = self.predict(stacked)
        except Exception as error:  # noqa: BLE001 — forwarded to the callers
            self._errors.inc(len(batch))
            for request in batch:
                if not request.future.set_running_or_notify_cancel():
                    continue
                request.future.set_exception(error)
            return
        compute_end = time.perf_counter()
        self.compute_latency.observe(compute_end - started)
        offset = 0
        done = compute_end
        for request in batch:
            slice_ = outputs[offset:offset + request.n]
            offset += request.n
            self.request_latency.observe(done - request.enqueued_at)
            if request.future.set_running_or_notify_cancel():
                request.future.set_result(slice_)
        if _tracing.enabled():
            _tracing.record_span("inference", started, compute_end,
                                 cat="serve", samples=total)
            _tracing.record_span("respond", compute_end, time.perf_counter(),
                                 cat="serve")

    def _fail_pending(self, error: Exception) -> None:
        def fail(item) -> None:
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(error)

        self._queue.drain(fail)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting requests and shut the worker down.

        ``drain=True`` lets every queued request finish first; ``False``
        fails queued-but-unstarted requests with :class:`BatcherClosedError`.
        Safe to call more than once.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            self._fail_pending(BatcherClosedError(f"{self.name} closed without draining"))
        self._queue.close()
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            raise RuntimeError(f"{self.name}: worker did not stop within {timeout}s")
        # Final sweep: fail anything a racing submit slipped in after the
        # worker drained past the sentinel (see _enqueue).
        self._fail_pending(BatcherClosedError(f"{self.name} is shut down"))

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Snapshot of the engine counters (feeds the /metrics endpoint)."""
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "queue_depth": self.queue_depth,
            "batches_total": self.batch_sizes.batches,
            "samples_total": self.batch_sizes.samples,
            "mean_batch_size": self.batch_sizes.mean_batch_size(),
            "batch_size_histogram": self.batch_sizes.as_dict(),
            "queue_wait_ms": self.queue_latency.summary(unit="ms"),
            "compute_ms": self.compute_latency.summary(unit="ms"),
            "request_latency_ms": self.request_latency.summary(unit="ms"),
            "worker": {
                **self.worker_stats.as_dict(),
                "utilization": 1.0 - self.worker_stats.stall_fraction,
            },
        }

    def snapshot(self) -> Dict[str, Any]:
        """The unified versioned snapshot (see :mod:`repro.telemetry`)."""
        return self.metrics.snapshot()


__all__ = ["BatchingPolicy", "DynamicBatcher", "QueueFullError", "BatcherClosedError"]
