"""Dynamic micro-batching over a replicated predictor pool.

``DynamicBatcher`` is the serving engine's facade.  PR 3 fused queueing,
batching policy, execution and lifecycle into one class with one hardcoded
worker thread; those concerns are now separate layers that this class only
wires together:

* **admission** (:mod:`repro.serve.admission`) — a policy object in front
  of the bounded queue: fail-fast reject (the default, bit-compatible with
  the original backpressure), blocking, or priority-aware load shedding.
* **batching** — the coalescing loop itself lives in
  :class:`repro.serve.pool.PoolWorker`: block for the first request, drain
  companions until ``max_batch_size`` samples or ``max_wait_ms`` since the
  *first* request (a latency bound, not a rate bound), run the batch once,
  give each future its slice.
* **execution** (:mod:`repro.serve.engine`) — where the forward runs: on
  the worker thread (``mode="thread"``) or in a forked child over shared
  memory (``mode="process"``), with artifact weights mapped once into a
  pool-wide read-only segment.
* **replication** (:mod:`repro.serve.pool`) — ``workers=N`` such loops
  share the queue.  Pool size 1 in thread mode is byte-for-byte the
  pre-pool engine; outputs are bit-invariant across pool sizes because the
  :class:`~repro.serve.artifact.Predictor` padding rule makes predictions a
  pure function of each request's samples (DESIGN.md §9, §16).
* **adaptation** (:mod:`repro.serve.slo`) — an optional controller tunes
  ``max_batch_size``/``max_wait_ms`` live against a p99 target; an optional
  :class:`~repro.serve.cache.ResponseCache` answers byte-identical repeat
  requests without a forward.

Requests may carry several samples; one carrying more than
``max_batch_size`` is executed alone, chunked into max-batch-size pieces.
:meth:`close` stops intake, optionally drains queued work, and fails any
futures that remain.  A worker that dies (killed child process, escaping
non-``Exception``) fails its in-flight futures loudly, degrades
``/healthz`` and can be replaced with :meth:`respawn_workers`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    LoadShedError,
    QueueFullError,
)
from repro.serve.artifact import Predictor
from repro.serve.cache import ResponseCache
from repro.serve.engine import (
    InlineEngine,
    ProcessEngine,
    SharedModelWeights,
    WorkerDiedError,
    probe_output_shape,
)
from repro.serve.pool import PredictorPool, WorkerContext
from repro.serve.slo import SLOController, SLOPolicy
from repro.telemetry import MetricsRegistry
from repro.utils.concurrency import ClosableQueue

_MODES = ("thread", "process")


class BatcherClosedError(RuntimeError):
    """The batcher no longer accepts requests."""


@dataclass
class BatchingPolicy:
    """Knobs of the coalescing loop.

    ``max_batch_size``  — largest number of samples fused into one forward.
    ``max_wait_ms``     — longest a request may sit waiting for companions,
                          measured from its enqueue time.
    ``max_queue``       — bound on queued requests (backpressure).

    ``max_batch_size`` and ``max_wait_ms`` may be mutated on a live policy
    (the SLO controller does); workers read them every coalescing cycle.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class _Request:
    __slots__ = ("samples", "n", "priority", "future", "enqueued_at")

    def __init__(self, samples: np.ndarray, priority: int = 0):
        self.samples = samples                   # always (n, *sample_shape)
        self.n = samples.shape[0]
        self.priority = int(priority)
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class DynamicBatcher:
    """Thread-safe request coalescing in front of a predictor pool."""

    def __init__(
        self,
        predictor: Union[Predictor, nn.Module, Callable[[np.ndarray], np.ndarray]],
        policy: Optional[BatchingPolicy] = None,
        name: str = "batcher",
        registry: Optional[MetricsRegistry] = None,
        *,
        workers: int = 1,
        mode: str = "thread",
        admission: Optional[AdmissionPolicy] = None,
        cache_size: int = 0,
        slo: Optional[Union[SLOPolicy, float]] = None,
        input_shape: Optional[Sequence[int]] = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isinstance(predictor, nn.Module):
            predictor = Predictor(predictor)
        self.predict = predictor
        self.policy = policy or BatchingPolicy()
        self.name = name
        self.mode = mode
        self.workers = int(workers)
        self._queue = ClosableQueue(maxsize=self.policy.max_queue)
        self._closed = False
        self._lock = threading.Lock()

        # Observability (exposed via the server's /metrics endpoint).  All
        # instruments are created through the unified registry — pass one in
        # (the server shares its own) or let the batcher own a private one.
        self.metrics = registry if registry is not None else MetricsRegistry("serve")
        self.queue_latency = self.metrics.latency("queue_wait")        # enqueue → batch start
        self.compute_latency = self.metrics.latency("compute")         # forward pass per batch
        self.request_latency = self.metrics.latency("request_latency")  # enqueue → future resolved
        self._requests = self.metrics.counter("requests_total")
        self._errors = self.metrics.counter("errors_total")
        self.metrics.register_collector("batcher_worker", self._worker_snapshot)

        # Optional adaptation layer.  The controller resolves its knob
        # ceilings before the pool sizes any shared-memory slabs.
        if isinstance(slo, (int, float)):
            slo = SLOPolicy(target_p99_ms=float(slo))
        self.slo = SLOController(self.policy, slo, registry=self.metrics,
                                 name=name) if slo is not None else None
        batch_ceiling = self.slo.slo.max_batch_size if self.slo is not None \
            else self.policy.max_batch_size
        self.batch_sizes = self.metrics.histogram(
            "batch_sizes", max_batch_size=batch_ceiling)

        self.admission = AdmissionController(
            self._queue, self.policy.max_queue, admission,
            registry=self.metrics, name=name)
        self.cache = ResponseCache(cache_size, registry=self.metrics) \
            if cache_size > 0 else None

        self._shared_weights: Optional[SharedModelWeights] = None
        engine_factory = self._build_engine_factory(input_shape, batch_ceiling)
        context = WorkerContext(
            name=name,
            queue=self._queue,
            policy=self.policy,
            queue_latency=self.queue_latency,
            compute_latency=self.compute_latency,
            request_latency=self.request_latency,
            batch_sizes=self.batch_sizes,
            errors=self._errors,
            cache=self.cache,
            slo=self.slo,
        )
        self.pool = PredictorPool(engine_factory, self.workers, context,
                                  registry=self.metrics)
        self.pool.start()
        if self.slo is not None:
            self.slo.start()

    # ------------------------------------------------------------------ #
    def _build_engine_factory(self, input_shape, batch_ceiling: int):
        if self.mode == "thread":
            def thread_factory(index: int) -> InlineEngine:
                # Worker 0 runs the caller's predictor untouched (pool size 1
                # must be byte-identical to the single-worker engine);
                # siblings get clones so the lazily-built inference plan —
                # single-threaded replay state — is never shared.
                if index == 0 or not isinstance(self.predict, Predictor):
                    return InlineEngine(self.predict)
                return InlineEngine(self.predict.clone())

            return thread_factory

        from repro.distributed.process import fork_available

        if not fork_available():  # pragma: no cover — all target platforms fork
            raise ValueError(
                f"{self.name}: mode='process' requires the fork start method; "
                f"use mode='thread' on this platform")
        shape = tuple(input_shape) if input_shape is not None else (
            self.predict.input_shape if isinstance(self.predict, Predictor)
            else None)
        if shape is None:
            raise ValueError(
                f"{self.name}: mode='process' needs the per-sample input shape "
                f"to size its shared-memory slabs — serve an artifact exported "
                f"with input_shape=..., or pass input_shape= explicitly")
        if isinstance(self.predict, Predictor):
            # Map the weights into one read-only segment *before* forking so
            # every child addresses the same physical pages, then drop any
            # already-built plan: the probe below rebuilds it against the
            # shared views, and children inherit it pre-built via fork.
            self._shared_weights = SharedModelWeights(self.predict.model)
            self.predict._plan = None
            self.predict._plan_failed = False
        output_shape = probe_output_shape(self.predict, shape)

        def process_factory(index: int) -> ProcessEngine:
            return ProcessEngine(self.predict, shape, output_shape,
                                 max_rows=batch_ceiling,
                                 name=f"{self.name}-engine{index}")

        return process_factory

    # ------------------------------------------------------------------ #
    # Liveness / load signals (consumed by /healthz and load shedding)
    # ------------------------------------------------------------------ #
    @property
    def requests_total(self) -> int:
        return self._requests.value

    @property
    def errors_total(self) -> int:
        return self._errors.value

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def worker_alive(self) -> bool:
        """``True`` iff the pool is at full strength (every worker alive)."""
        return self.pool.alive_workers == self.workers

    @property
    def alive_workers(self) -> int:
        return self.pool.alive_workers

    def worker_pids(self) -> List[Optional[int]]:
        """Child PIDs per pool worker (``None`` in thread mode)."""
        return self.pool.worker_pids()

    def _worker_snapshot(self) -> Dict[str, Any]:
        aggregate = self.pool.aggregate_stats()
        return {
            **aggregate.as_dict(),
            "utilization": 1.0 - aggregate.stall_fraction,
            "queue_depth": self.queue_depth,
            "alive": self.worker_alive,
        }

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray, timeout: Optional[float] = 0.0,
               priority: int = 0) -> Future:
        """Enqueue one sample (shape ``sample_shape``); returns its future.

        ``timeout`` bounds how long to wait for queue space: ``0`` fails
        immediately when full (the server's behaviour — shed load), ``None``
        blocks until space frees up.  ``priority`` feeds the admission
        policy (higher = more important; only the ``priority`` kind uses it).
        """
        array = np.asarray(sample, dtype=np.float32)
        return self._enqueue(array[None, ...], timeout, priority)

    def submit_batch(self, samples: np.ndarray, timeout: Optional[float] = 0.0,
                     priority: int = 0) -> Future:
        """Enqueue a multi-sample request of shape ``(n, *sample_shape)``.

        The whole request resolves through one future; requests wider than
        ``max_batch_size`` are executed alone, in max-batch-size chunks.
        """
        array = np.asarray(samples, dtype=np.float32)
        if array.ndim < 1 or array.shape[0] < 1:
            raise ValueError("submit_batch expects at least one sample")
        return self._enqueue(array, timeout, priority)

    def _enqueue(self, samples: np.ndarray, timeout: Optional[float],
                 priority: int = 0) -> Future:
        with self._lock:
            if self._closed:
                raise BatcherClosedError(f"{self.name} is shut down")
        self._requests.inc()
        request = _Request(samples, priority)
        if self.cache is not None:
            hit = self.cache.get(samples)
            if hit is not None:
                self.request_latency.observe(
                    time.perf_counter() - request.enqueued_at)
                request.future.set_result(hit)
                return request.future
        try:
            self.admission.admit(request, timeout)
        except QueueFullError:
            self._errors.inc()
            raise
        # close() — or the death of the last worker — may have raced us
        # between the _closed check and the put: if no worker remains,
        # nothing will ever drain this request — sweep the queue so the
        # future fails instead of hanging its caller.
        if self.pool.alive_workers == 0:
            if self._closed:
                self._fail_pending(BatcherClosedError(f"{self.name} is shut down"))
            elif self.pool.any_failed:
                self._fail_pending(WorkerDiedError(
                    f"{self.name}: all {self.workers} inference workers are "
                    f"dead; call respawn_workers() to recover"))
        return request.future

    def __call__(self, samples: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        future = self.submit_batch(samples, timeout=None)
        return future.result(timeout=timeout)

    def _fail_pending(self, error: Exception) -> None:
        def fail(item) -> None:
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(error)

        self._queue.drain(fail)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def respawn_workers(self) -> int:
        """Replace dead pool workers (re-forking process engines); returns
        how many were respawned.  No-op on a closed batcher."""
        with self._lock:
            if self._closed:
                return 0
        return self.pool.respawn_dead()

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting requests and shut the pool down.

        ``drain=True`` lets every queued request finish first; ``False``
        fails queued-but-unstarted requests with :class:`BatcherClosedError`.
        Safe to call more than once.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.slo is not None:
            self.slo.stop()
        if not drain:
            self._fail_pending(BatcherClosedError(f"{self.name} closed without draining"))
        self.pool.request_stop()
        if not self.pool.join(timeout=timeout):
            raise RuntimeError(f"{self.name}: worker did not stop within {timeout}s")
        # Final sweep: fail anything a racing submit slipped in after the
        # workers drained past their sentinels (see _enqueue).
        self._fail_pending(BatcherClosedError(f"{self.name} is shut down"))
        if self._shared_weights is not None:
            self._shared_weights.restore()
            self._shared_weights = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Snapshot of the engine counters (feeds the /metrics endpoint)."""
        aggregate = self.pool.aggregate_stats()
        stats: Dict[str, Any] = {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "queue_depth": self.queue_depth,
            "batches_total": self.batch_sizes.batches,
            "samples_total": self.batch_sizes.samples,
            "mean_batch_size": self.batch_sizes.mean_batch_size(),
            "batch_size_histogram": self.batch_sizes.as_dict(),
            "queue_wait_ms": self.queue_latency.summary(unit="ms"),
            "compute_ms": self.compute_latency.summary(unit="ms"),
            "request_latency_ms": self.request_latency.summary(unit="ms"),
            "worker": {
                **aggregate.as_dict(),
                "utilization": 1.0 - aggregate.stall_fraction,
            },
            "pool": {
                "size": self.workers,
                "mode": self.mode,
                "alive": self.pool.alive_workers,
                "respawns_total": self.pool.respawns_total,
            },
            "workers": [worker.snapshot() for worker in self.pool.workers],
            "admission": self.admission.stats(),
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        if self.slo is not None:
            stats["slo"] = self.slo.stats()
        return stats

    def snapshot(self) -> Dict[str, Any]:
        """The unified versioned snapshot (see :mod:`repro.telemetry`)."""
        return self.metrics.snapshot()


__all__ = [
    "AdmissionPolicy",
    "BatcherClosedError",
    "BatchingPolicy",
    "DynamicBatcher",
    "LoadShedError",
    "QueueFullError",
    "SLOPolicy",
    "WorkerDiedError",
]
